// The iotax command-line tool: the paper's workflow as shell commands.
//
//   iotax simulate --preset theta --out DIR        generate logs + dataset
//   iotax parse    --archive FILE [--binary] [--lenient]
//   iotax bound    --dataset FILE                  litmus 1 (app bound)
//   iotax noise    --dataset FILE [--window SECS]  litmus 4/5 (I/O bands)
//   iotax taxonomy --dataset FILE [--no-uq] [--report OUT.csv]
//   iotax importance --dataset FILE                what the model relies on
//
// Datasets are the CSV files written by `simulate` (or by
// data::write_dataset_csv); archives are the text/binary job-log formats.
#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include <atomic>
#include <chrono>
#include <csignal>
#include <map>
#include <memory>
#include <numeric>
#include <thread>

#include <unistd.h>

#include "src/cli/args.hpp"
#include "src/data/ooc.hpp"
#include "src/data/split.hpp"
#include "src/data/store.hpp"
#include "src/serve/client.hpp"
#include "src/serve/fleet.hpp"
#include "src/serve/server.hpp"
#include "src/util/str.hpp"
#include "src/faults/chaos.hpp"
#include "src/faults/injector.hpp"
#include "src/faults/plan.hpp"
#include "src/data/table_io.hpp"
#include "src/ml/kernels/dispatch.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/registry.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/ml/classifier.hpp"
#include "src/sim/burst.hpp"
#include "src/sim/dataset_builder.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/stream_ingest.hpp"
#include "src/stats/classification.hpp"
#include "src/taxonomy/transfer.hpp"
#include "src/taxonomy/drift.hpp"
#include "src/taxonomy/online.hpp"
#include "src/taxonomy/interpret.hpp"
#include "src/taxonomy/litmus.hpp"
#include "src/taxonomy/pipeline.hpp"
#include "src/taxonomy/report_io.hpp"
#include "src/telemetry/binary_log.hpp"
#include "src/telemetry/darshan_log.hpp"
#include "src/util/json.hpp"

namespace {

using namespace iotax;

int usage() {
  std::fprintf(stderr, R"(usage: iotax <command> [options]

commands:
  simulate   --preset theta|cori|tiny|bb|flash [--seed N] --out DIR
             [--shards N]
             [--no-dataset]
             run the system simulator; writes jobs.darshan.txt,
             jobs.darshan.bin and dataset.csv into DIR; --shards N
             splits the records over jobs.darshan.<i>.bin archives
             (contiguous slices, for sharded ingest); --no-dataset
             skips the CSV (pack the logs instead)
  parse      --archive FILE [--binary] [--lenient]
             parse a job-log archive and report record/corruption counts
  pack       (--dataset CSV | --logs A[,B,...] [--binary]
             [--mode strict|lenient|repair] [--system NAME]) --out DIR
             write an mmap-backed column store: one f64 file per column
             plus a checksummed manifest; --logs streams the archives
             through the sharded quarantine/repair ingest, so N
             archives pack with per-wave memory;
             pack --check --store DIR verifies manifest + column
             checksums (exit 0 intact, 1 any defect)
  bound      (--dataset FILE | --store DIR)
             litmus 1: the application-modeling error lower bound
  noise      (--dataset FILE | --store DIR) [--window SECS]
             litmus 4/5: concurrent duplicates, Student-t fit, I/O bands
  taxonomy   (--dataset FILE | --store DIR) [--no-uq] [--report OUT.csv]
             the full five-step framework (Fig. 7 of the paper);
             --store runs it out-of-core over the mapped columns with
             bit-identical reports
             --transfer A:B [--seed N] [--check] [--report OUT.json]
             cross-cluster transfer litmus instead: simulate presets A
             and B over a shared application catalog, train on A, score
             B, and attribute the transfer gap to taxonomy classes
             against sim ground truth; --check exits nonzero unless the
             OoD estimate agrees with the oracle
  burst      --preset NAME [--seed N] [--window-hours H]
             [--threshold-frac F] [--train-frac F] [--params JSON]
             [--out MODEL] [--out-data CSV] [--pred-out CSV]
             burst-prediction workload: window the simulated cluster's
             LMT telemetry, label windows whose successor runs over F of
             peak bandwidth (sim ground truth), train a classifier and
             report held-out accuracy/F1/AUC; --out-data saves the
             windowed dataset for serve/query replay
  burst      --predict --model-file MODEL --dataset CSV [--out CSV]
             load a saved classifier and score a burst dataset offline;
             --out writes probabilities byte-identical to a served
             `query --features burst --out` run over the same files
  importance (--dataset FILE | --store DIR)
             train a GBT and report which counters it relies on
  drift      (--dataset FILE | --store DIR) [--train-frac F]
             [--window DAYS]
             train on the first F of the timeline, monitor the rest
  train      (--dataset FILE | --store DIR) --model NAME [--params JSON]
             --out MODEL [--time-split]
             fit any model family (mean|linear|gbt|mlp|ensemble) and
             save it; params is a JSON object of hyperparameters;
             --time-split trains on the earliest --train-frac of the
             timeline instead of a random split (deployment-style)
  predict    (--dataset FILE | --store DIR) --model-file MODEL
             [--out CSV]
             load a saved model and predict the dataset
  inject     --in FILE [--binary] [--plan FILE | --plan-json STR]
             [--seed N] --out FILE [--report FILE]
             deterministically corrupt a clean archive per a fault plan;
             --report saves the injection ground truth as JSON
  audit      (--archive FILE [--binary] | --store DIR)
             [--mode strict|lenient|repair] [--expect REPORT.json]
             [--quarantine-out FILE]
             parse + ingest an (possibly corrupted) archive; strict mode
             exits nonzero on any corruption; --expect checks quarantine
             counts against an inject ground-truth report; --store
             verifies a column store's manifest and checksums instead
  serve      --models A[,B,...] (--socket PATH | --port N)
             [--batch-size N] [--batch-wait-us N] [--max-inflight N]
             [--ready-file FILE] [--shadow FILE] [--shadow-slot N]
             long-lived inference daemon: loads the checkpoints into a
             generation-counted model registry and answers framed
             predict requests with micro-batching; --shadow serves a
             candidate checkpoint beside production with bit-exact
             divergence accounting; drains gracefully on SIGTERM/SIGINT
  fleet      --models A[,B,...] (--socket PATH | --port N)
             --shard-dir DIR [--groups N] [--replicas N]
             [--shard-ports P0,P1,...] [--batch-size N]
             [--batch-wait-us N] [--max-inflight N] [--restart-budget N]
             [--health-interval-ms N] [--health-timeout-ms N]
             [--deadline-ms N] [--try-timeout-ms N]
             [--chaos-plan FILE | --chaos-json STR] [--ready-file FILE]
             [--iotax-bin PATH] [--spawn-timeout-ms N] [--seed N]
             fault-tolerant serving fleet: supervises groups x replicas
             shard daemons (each an `iotax serve` child), consistent-
             hashes requests across groups, retries/fails over inside a
             group, and restarts crashed or hung shards with exponential
             backoff; a mid-load kill -9 of any shard is invisible to
             clients and answers stay bit-identical to offline predict
  query      (--socket PATH | --host H --port N)
             [--ping | --dataset FILE | --store DIR]
             [--model IDX] [--dist] [--shadow] [--pipeline N] [--repeat N]
             [--wait-secs S] [--deadline-ms N] [--fleet]
             [--features darshan|burst] [--out CSV] [--shadow-out CSV]
             client driver: sends every dataset row to a serve daemon
             (responses are bit-identical to offline `predict`) or
             health-checks it with --ping; --shadow also collects the
             daemon's shadow-candidate predictions; --deadline-ms bounds
             how long a silent daemon can stall the client (default
             30000, 0 waits forever); --fleet reconnects and resends
             outstanding requests when the connection drops
  monitor    (--archive FILE | --store DIR) --model-file MODEL
             [--follow] [--poll-ms N]
             [--idle-secs S] [--window-jobs N] [--reference-windows N]
             [--trigger RATIO] [--min-jobs N] [--extra-rounds N]
             [--candidate-out FILE] [--seed N]
             online litmus monitor: tail a growing job-log archive,
             attribute windowed serving error to taxonomy classes
             (ood / noise / drift), and on a drift trigger warm-start
             the model (fit_continue) into a candidate checkpoint;
             exits 3 when a trigger fired
  promote    (--socket PATH | --host H --port N) [--model IDX]
             [--min-shadow N] [--rollback | --status] [--wait-secs S]
             control verbs against a serve daemon: promote the shadow
             candidate into the registry (refused until it has scored
             --min-shadow requests), roll a slot back, or report status
  checkjson  FILE...
             validate that each file parses as JSON (exit 1 otherwise)
  --version  print the build version, the selected kernel tier
             (IOTAX_KERNELS=scalar|avx2|auto picks; auto is the default),
             the column-store format version (store=v1) and the
             checkpoint magics this build can load

out-of-core (any --store command; also honoured with --dataset):
  IOTAX_OOC=0|1            force the in-RAM / out-of-core data path
                           (--store turns it on unless IOTAX_OOC=0)
  IOTAX_OOC_CHUNK_ROWS=N   rows per streaming chunk (default 65536)
  IOTAX_OOC_SPILL_BYTES=N  spill bin-code planes to an unlinked mmap
                           scratch file above this size (default 32MiB;
                           0 spills always)
  IOTAX_OOC_DIR=DIR        where spill files live (default TMPDIR)

observability (any command):
  --metrics-out FILE   write counters/gauges/histograms as JSON
  --trace-out FILE     write spans as Chrome trace JSON (chrome://tracing)
  both force IOTAX_OBS-style instrumentation on for the run
)");
  return 2;
}

sim::SimConfig preset_by_name(const std::string& name, std::uint64_t seed) {
  if (name == "theta") return sim::theta_like(seed);
  if (name == "cori") return sim::cori_like(seed);
  if (name == "tiny") return sim::tiny_system(seed);
  if (name == "bb") return sim::bb_like(seed);
  if (name == "flash") return sim::flash_like(seed);
  throw std::invalid_argument("unknown preset '" + name +
                              "' (theta|cori|tiny|bb|flash)");
}

/// Where a command's dataset comes from: an in-RAM CSV (`--dataset`) or
/// an mmap-backed column store (`--store`). The source must stay alive
/// for as long as the dataset is used — a store-backed Dataset's feature
/// table references the store's mappings (see src/data/store.hpp).
struct DatasetSource {
  data::Dataset owned;                       // CSV path: rows on the heap
  std::unique_ptr<data::ColumnStore> store;  // store path: holds the maps
  const data::Dataset& ds() const {
    return store ? store->dataset() : owned;
  }
};

DatasetSource load_dataset(const cli::Args& args) {
  DatasetSource src;
  if (args.has("store")) {
    if (args.has("dataset")) {
      throw std::invalid_argument(
          "--dataset and --store are mutually exclusive");
    }
    // Out-of-core mode follows the data: a store-backed run streams the
    // binning sweep and spills code planes unless IOTAX_OOC=0 forces the
    // in-RAM path (results are bit-identical either way).
    data::ooc::enable_for_store();
    auto outcome = data::ColumnStore::open(args.get("store"));
    if (!outcome.ok()) {
      throw std::runtime_error("cannot open store " + args.get("store") +
                               ": " + outcome.first_error());
    }
    src.store = std::move(outcome.store);
  } else {
    src.owned = data::read_dataset_csv(args.get("dataset"), "dataset");
  }
  return src;
}

/// Every command also accepts the observability output options.
std::set<std::string> with_obs(std::set<std::string> allowed) {
  allowed.insert("metrics-out");
  allowed.insert("trace-out");
  return allowed;
}

int cmd_simulate(const cli::Args& args) {
  args.check_allowed(with_obs({"preset", "seed", "out", "shards",
                               "no-dataset"}));
  const auto cfg = preset_by_name(
      args.get_or("preset", "tiny"),
      static_cast<std::uint64_t>(args.get_int_or("seed", 7)));
  const std::filesystem::path dir = args.get("out");
  std::filesystem::create_directories(dir);
  std::printf("simulating %s (seed %llu)...\n", cfg.name.c_str(),
              static_cast<unsigned long long>(cfg.seed));
  const auto res = sim::simulate(cfg);
  const auto n_shards =
      static_cast<std::size_t>(std::max<long long>(0,
                                                   args.get_int_or("shards",
                                                                   0)));
  if (n_shards > 1) {
    // Contiguous record slices: shard 0 + shard 1 + ... replayed in
    // order is exactly the single-archive record stream, so a sharded
    // ingest of these files is bit-identical to the sequential one.
    const std::size_t n = res.records.size();
    for (std::size_t s = 0; s < n_shards; ++s) {
      const std::size_t lo = s * n / n_shards;
      const std::size_t hi = (s + 1) * n / n_shards;
      const std::vector<telemetry::JobLogRecord> slice(
          res.records.begin() + static_cast<long>(lo),
          res.records.begin() + static_cast<long>(hi));
      const auto path =
          dir / ("jobs.darshan." + std::to_string(s) + ".bin");
      telemetry::write_binary_archive_file(path.string(), slice);
    }
    std::printf("%zu jobs -> %s/jobs.darshan.{0..%zu}.bin\n",
                res.records.size(), dir.string().c_str(), n_shards - 1);
  } else {
    telemetry::write_archive((dir / "jobs.darshan.txt").string(),
                             res.records);
    telemetry::write_binary_archive_file((dir / "jobs.darshan.bin").string(),
                                         res.records);
    std::printf("%zu jobs -> %s/{jobs.darshan.txt,jobs.darshan.bin}\n",
                res.records.size(), dir.string().c_str());
  }
  if (!args.has("no-dataset")) {
    data::write_dataset_csv((dir / "dataset.csv").string(), res.dataset);
    std::printf("%zu dataset row(s) -> %s/dataset.csv\n",
                res.dataset.size(), dir.string().c_str());
  }
  return 0;
}

int cmd_parse(const cli::Args& args) {
  args.check_allowed(with_obs({"archive", "binary", "lenient"}));
  const bool strict = !args.has("lenient");
  telemetry::ParseStats stats;
  std::vector<telemetry::JobLogRecord> records;
  if (args.has("binary")) {
    records = telemetry::read_binary_archive_file(args.get("archive"),
                                                  strict, &stats);
  } else {
    records =
        telemetry::parse_archive_file(args.get("archive"), strict, &stats);
  }
  std::printf("parsed %zu records, skipped %zu corrupt\n", stats.parsed,
              stats.skipped);
  if (!records.empty()) {
    std::printf("first job: id=%llu nprocs=%u perf=%.1f MiB/s\n",
                static_cast<unsigned long long>(records.front().job_id),
                records.front().n_procs, records.front().agg_perf_mib);
  }
  return stats.skipped == 0 ? 0 : 1;
}

int cmd_bound(const cli::Args& args) {
  args.check_allowed(with_obs({"dataset", "store"}));
  const auto src = load_dataset(args);
  const auto& ds = src.ds();
  const auto bound = taxonomy::litmus_application_bound(ds);
  std::printf("jobs: %zu, duplicates: %zu (%.1f%%) in %zu sets "
              "(largest %zu)\n",
              ds.size(), bound.stats.n_duplicate_jobs,
              bound.stats.duplicate_fraction * 100.0, bound.stats.n_sets,
              bound.stats.largest_set);
  std::printf("application-modeling bound: %.2f%% median |log10| error "
              "(mean %.2f%%)\n",
              ml::log_error_to_percent(bound.median_abs_error),
              ml::log_error_to_percent(bound.mean_abs_error));
  return 0;
}

int cmd_noise(const cli::Args& args) {
  args.check_allowed(with_obs({"dataset", "store", "window"}));
  const auto src = load_dataset(args);
  const auto& ds = src.ds();
  const auto noise = taxonomy::litmus_noise_bound(
      ds, args.get_double_or("window", 1.0));
  std::printf("concurrent duplicate sets: %zu (%zu jobs); pairs %.0f%%, "
              "<=6 members %.0f%%\n",
              noise.n_sets, noise.n_jobs, noise.frac_sets_of_two * 100.0,
              noise.frac_sets_leq_six * 100.0);
  std::printf("Student-t df=%.1f (t preferred over Normal by %.4f "
              "nats/sample)\n",
              noise.t_fit.df, noise.t_preference);
  std::printf("irreducible error floor: %.2f%% median\n",
              ml::log_error_to_percent(noise.median_abs_error));
  std::printf("expect throughput within +-%.2f%% (68%%) / +-%.2f%% (95%%) "
              "of prediction\n",
              noise.band68_pct, noise.band95_pct);
  return 0;
}

/// `taxonomy --transfer A:B`: the cross-cluster litmus. Simulates both
/// presets over a shared application catalog (so app ids are
/// comparable), trains on A, scores B, and prints the ground-truth
/// attribution of the transfer gap. --check turns the smoke-test
/// assertions into exit codes so CI never parses the report text.
int cmd_transfer(const cli::Args& args) {
  const auto spec = args.get("transfer");
  const auto colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw std::invalid_argument(
        "--transfer wants TRAIN:TEST presets, e.g. theta:cori");
  }
  const auto seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 7));
  const auto [a_cfg, b_cfg] = sim::make_transfer_pair(
      preset_by_name(spec.substr(0, colon), seed),
      preset_by_name(spec.substr(colon + 1), seed), seed);
  std::printf("simulating %s and %s over a shared catalog (seed %llu)...\n",
              a_cfg.name.c_str(), b_cfg.name.c_str(),
              static_cast<unsigned long long>(seed));
  const auto a = sim::simulate(a_cfg);
  const auto b = sim::simulate(b_cfg);
  const auto report = taxonomy::run_transfer_litmus(a.dataset, b.dataset);
  std::fputs(taxonomy::render_transfer_report(report).c_str(), stdout);

  if (args.has("report")) {
    std::ofstream out(args.get("report"));
    if (!out) throw std::runtime_error("cannot open " + args.get("report"));
    out.precision(17);
    out << "{\n"
        << "  \"train_system\": \"" << report.train_system << "\",\n"
        << "  \"test_system\": \"" << report.test_system << "\",\n"
        << "  \"n_train\": " << report.n_train << ",\n"
        << "  \"n_holdout\": " << report.n_holdout << ",\n"
        << "  \"n_test\": " << report.n_test << ",\n"
        << "  \"in_cluster_error\": " << report.in_cluster_error << ",\n"
        << "  \"transfer_error\": " << report.transfer_error << ",\n"
        << "  \"gap\": " << report.gap << ",\n"
        << "  \"shares\": {\"application\": " << report.oracle.application
        << ", \"system\": " << report.oracle.system
        << ", \"contention\": " << report.oracle.contention
        << ", \"noise\": " << report.oracle.noise << "},\n"
        << "  \"ood_fraction_truth\": " << report.ood_fraction_truth << ",\n"
        << "  \"ood_fraction_est\": " << report.ood_fraction_est << ",\n"
        << "  \"ood_auc\": " << report.ood_auc << "\n"
        << "}\n";
    std::printf("report written to %s\n", args.get("report").c_str());
  }

  if (args.has("check")) {
    // Floors calibrated on the tiny-scale presets (IOTAX_SCALE=0.1):
    // every preset pair clears them with wide margin, so a miss means
    // the litmus broke, not that the simulation got unlucky.
    int rc = 0;
    const auto fail = [&rc](const char* what) {
      std::fprintf(stderr, "transfer check FAILED: %s\n", what);
      rc = 4;
    };
    if (!(report.gap > 0.0)) fail("transfer gap not positive");
    if (!(report.oracle.application > 0.5)) {
      fail("application share does not dominate the transfer error");
    }
    const double share_sum = report.oracle.application +
                             report.oracle.system +
                             report.oracle.contention + report.oracle.noise;
    if (share_sum < 0.99 || share_sum > 1.01) {
      fail("oracle shares do not sum to 1");
    }
    if (!(report.ood_auc > 0.75)) {
      fail("OoD estimator does not rank ground-truth OoD rows");
    }
    if (std::abs(report.ood_fraction_est - report.ood_fraction_truth) >
        0.03 + 0.5 * report.ood_fraction_truth) {
      fail("estimated OoD fraction disagrees with the oracle");
    }
    std::printf("transfer check: %s\n", rc == 0 ? "ok" : "FAILED");
    return rc;
  }
  return 0;
}

int cmd_taxonomy(const cli::Args& args) {
  args.check_allowed(with_obs(
      {"dataset", "store", "no-uq", "report", "transfer", "seed", "check"}));
  if (args.has("transfer")) return cmd_transfer(args);
  const auto src = load_dataset(args);
  const auto& ds = src.ds();
  taxonomy::PipelineConfig pc;
  pc.run_uq = !args.has("no-uq");
  const auto report = taxonomy::run_taxonomy(ds, pc);
  std::cout << taxonomy::render_report(report);
  if (args.has("report")) {
    taxonomy::write_report_csv(args.get("report"), report);
    std::printf("report written to %s\n", args.get("report").c_str());
  }
  return 0;
}

int cmd_importance(const cli::Args& args) {
  args.check_allowed(with_obs({"dataset", "store"}));
  const auto src = load_dataset(args);
  const auto& ds = src.ds();
  util::Rng rng(3);
  const auto split = data::random_split(ds.size(), 0.8, 0.0, rng);
  std::vector<taxonomy::FeatureSet> feats = {taxonomy::FeatureSet::kPosix,
                                             taxonomy::FeatureSet::kMpiio};
  if (ds.features.has_column("LMT_OSS_CPU_MEAN")) {
    feats.push_back(taxonomy::FeatureSet::kLmt);
  }
  ml::GbtParams params;
  params.n_estimators = 96;
  params.max_depth = 8;
  ml::GradientBoostedTrees model(params);
  std::vector<std::size_t> fit_cols, fit_rows, ev_cols, ev_rows;
  model.fit(taxonomy::feature_view(ds, feats, &fit_cols, &fit_rows,
                                   split.train),
            taxonomy::targets(ds, split.train));
  const double err = ml::median_abs_log_error(
      taxonomy::targets(ds, split.test),
      model.predict(taxonomy::feature_view(ds, feats, &ev_cols, &ev_rows,
                                           split.test)));
  std::printf("model: %s, held-out error %.2f%%\n\n", model.name().c_str(),
              ml::log_error_to_percent(err));
  const auto ranked = taxonomy::ranked_importances(
      model, taxonomy::feature_columns(ds, feats));
  std::cout << taxonomy::render_importance_report(ranked);
  return 0;
}

int cmd_drift(const cli::Args& args) {
  args.check_allowed(with_obs({"dataset", "store", "train-frac", "window"}));
  const auto src = load_dataset(args);
  const auto& ds = src.ds();
  const double train_frac = args.get_double_or("train-frac", 0.5);
  if (train_frac <= 0.0 || train_frac >= 1.0) {
    throw std::invalid_argument("--train-frac must be in (0,1)");
  }
  double t_min = 1e300;
  double t_max = -1e300;
  for (const auto& m : ds.meta) {
    t_min = std::min(t_min, m.start_time);
    t_max = std::max(t_max, m.start_time);
  }
  const double cutoff = t_min + (t_max - t_min) * train_frac;
  const auto train_rows = ds.rows_in_window(t_min, cutoff);
  const auto stream_rows = ds.rows_in_window(cutoff, 1e300);
  if (train_rows.size() < 100 || stream_rows.size() < 100) {
    throw std::invalid_argument("drift: too few jobs on one side of the cut");
  }
  // Hold out the last fifth of the training period as the reference.
  const auto n_fit = train_rows.size() * 4 / 5;
  const std::vector<std::size_t> fit_rows(train_rows.begin(),
                                          train_rows.begin() +
                                              static_cast<long>(n_fit));
  std::vector<std::size_t> watch_rows(train_rows.begin() +
                                          static_cast<long>(n_fit),
                                      train_rows.end());
  watch_rows.insert(watch_rows.end(), stream_rows.begin(),
                    stream_rows.end());

  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  ml::GradientBoostedTrees model({.n_estimators = 96, .max_depth = 8});
  std::vector<std::size_t> fc, fr, wc, wr;
  model.fit(taxonomy::feature_view(ds, feats, &fc, &fr, fit_rows),
            taxonomy::targets(ds, fit_rows));
  const auto pred =
      model.predict(taxonomy::feature_view(ds, feats, &wc, &wr, watch_rows));
  const auto y = taxonomy::targets(ds, watch_rows);
  std::vector<double> times(watch_rows.size());
  std::vector<double> errors(watch_rows.size());
  for (std::size_t i = 0; i < watch_rows.size(); ++i) {
    times[i] = ds.meta[watch_rows[i]].start_time;
    errors[i] = pred[i] - y[i];
  }
  taxonomy::DriftParams params;
  params.window_seconds = 86400.0 * args.get_double_or("window", 7.0);
  const auto report = taxonomy::monitor_drift(times, errors, params);
  std::cout << taxonomy::render_drift_report(report);
  return report.n_alarms == 0 ? 0 : 3;  // exit code flags drift for scripts
}

int cmd_train(const cli::Args& args) {
  args.check_allowed(with_obs({"dataset", "store", "model", "params", "out",
                               "train-frac", "seed", "time-split"}));
  const auto src = load_dataset(args);
  const auto& ds = src.ds();
  auto model = ml::make_regressor(args.get("model"),
                                  args.get_or("params", "{}"));
  const double train_frac = args.get_double_or("train-frac", 0.8);
  if (train_frac <= 0.0 || train_frac > 1.0) {
    throw std::invalid_argument("--train-frac must be in (0,1]");
  }
  data::Split split;
  if (args.has("time-split")) {
    // Deployment-style split: train on the earliest fraction of the
    // timeline, hold out the rest — what a site retraining a production
    // model actually does, and what the online-loop smoke test needs so
    // the production model has never seen the post-shift regime.
    std::vector<std::size_t> order(ds.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return ds.meta[a].start_time < ds.meta[b].start_time;
                     });
    const auto n_train = static_cast<std::size_t>(
        static_cast<double>(order.size()) * train_frac);
    split.train.assign(order.begin(),
                       order.begin() + static_cast<long>(n_train));
    split.test.assign(order.begin() + static_cast<long>(n_train),
                      order.end());
  } else {
    util::Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 3)));
    split = data::random_split(ds.size(), train_frac, 0.0, rng);
  }
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  // Feature views instead of materialized matrices: on a store-backed
  // run the model reads straight from the mapped columns, so training a
  // million-job dataset materializes targets + binning chunks only.
  std::vector<std::size_t> fit_cols, fit_rows, ev_cols, ev_rows;
  model->fit(taxonomy::feature_view(ds, feats, &fit_cols, &fit_rows,
                                    split.train),
             taxonomy::targets(ds, split.train));
  std::printf("trained %s on %zu jobs\n", model->name().c_str(),
              split.train.size());
  if (!split.test.empty()) {
    const double err = ml::median_abs_log_error(
        taxonomy::targets(ds, split.test),
        model->predict(taxonomy::feature_view(ds, feats, &ev_cols, &ev_rows,
                                              split.test)));
    std::printf("held-out error: %.2f%% median |log10|\n",
                ml::log_error_to_percent(err));
  }
  if (args.has("out")) {
    std::ofstream out(args.get("out"));
    if (!out) throw std::runtime_error("cannot open " + args.get("out"));
    model->save(out);
    std::printf("model saved to %s\n", args.get("out").c_str());
  }
  return 0;
}

int cmd_predict(const cli::Args& args) {
  args.check_allowed(with_obs({"dataset", "store", "model-file", "out"}));
  // Load the checkpoint first: a bad model file fails fast with the
  // path / offending-token / known-magics diagnostic before the
  // (possibly large) dataset is read.
  const auto model = ml::load_regressor_file(args.get("model-file"));
  const auto src = load_dataset(args);
  const auto& ds = src.ds();
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  std::vector<std::size_t> view_cols, view_rows;
  const auto pred = model->predict(
      taxonomy::feature_view(ds, feats, &view_cols, &view_rows));
  const double err =
      ml::median_abs_log_error(taxonomy::targets(ds), pred);
  std::printf("%s predicted %zu jobs, error %.2f%% median |log10|\n",
              model->name().c_str(), pred.size(),
              ml::log_error_to_percent(err));
  if (args.has("out")) {
    std::ofstream out(args.get("out"));
    if (!out) throw std::runtime_error("cannot open " + args.get("out"));
    out << "job_id,log10_pred\n";
    out.precision(17);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      out << ds.meta[i].job_id << ',' << pred[i] << '\n';
    }
    std::printf("predictions written to %s\n", args.get("out").c_str());
  }
  return 0;
}

/// Write probabilities in the exact format `predict --out` and
/// `query --out` use, so burst answers are byte-comparable across the
/// offline and served paths.
void write_prediction_csv(const std::string& path, const data::Dataset& ds,
                          std::span<const double> pred) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "job_id,log10_pred\n";
  out.precision(17);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    out << ds.meta[i].job_id << ',' << pred[i] << '\n';
  }
}

/// Held-out classification quality; prints a dash row when the slice
/// holds a single class (AUC undefined).
void print_classification_metrics(const char* tag,
                                  std::span<const double> y,
                                  std::span<const double> labels,
                                  std::span<const double> prob) {
  const auto counts = stats::confusion_counts(y, labels);
  if (counts.tp + counts.fn == 0 || counts.fp + counts.tn == 0) {
    std::printf("%s: accuracy %.3f (single-class slice, F1/AUC undefined)\n",
                tag, stats::accuracy(counts));
    return;
  }
  std::printf("%s: accuracy %.3f precision %.3f recall %.3f f1 %.3f "
              "auc %.3f\n",
              tag, stats::accuracy(counts), stats::precision(counts),
              stats::recall(counts), stats::f1_score(counts),
              stats::roc_auc(y, prob));
}

int cmd_burst(const cli::Args& args) {
  args.check_allowed(with_obs({"preset", "seed", "window-hours",
                               "threshold-frac", "train-frac", "params",
                               "out", "out-data", "pred-out", "predict",
                               "model-file", "dataset", "store"}));
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kBurst};

  if (args.has("predict")) {
    // Offline scoring of a saved classifier over a burst dataset — the
    // byte-identity reference for the served path.
    const auto model = ml::load_regressor_file(args.get("model-file"));
    const auto src = load_dataset(args);
    const auto& ds = src.ds();
    std::vector<std::size_t> view_cols, view_rows;
    const auto x = taxonomy::feature_view(ds, feats, &view_cols, &view_rows);
    const auto prob = model->predict(x);
    std::printf("%s scored %zu window(s)\n", model->name().c_str(),
                prob.size());
    if (const auto* clf = dynamic_cast<const ml::BurstClassifier*>(
            model.get())) {
      print_classification_metrics("burst", taxonomy::targets(ds),
                                   clf->predict_labels(x), prob);
    }
    if (args.has("out")) {
      write_prediction_csv(args.get("out"), ds, prob);
      std::printf("probabilities written to %s\n", args.get("out").c_str());
    }
    return 0;
  }

  // Train mode: simulate, window the telemetry, fit, report held out.
  auto cfg = preset_by_name(
      args.get_or("preset", "tiny"),
      static_cast<std::uint64_t>(args.get_int_or("seed", 7)));
  // The workload is storage-side by construction; presets without LMT
  // (theta) get it switched on rather than erroring out.
  cfg.platform.lmt_enabled = true;
  sim::BurstParams bp;
  bp.window_seconds = args.get_double_or("window-hours", 6.0) * 3600.0;
  bp.threshold_frac = args.get_double_or("threshold-frac", 0.35);
  bp.validate();
  std::printf("simulating %s (seed %llu)...\n", cfg.name.c_str(),
              static_cast<unsigned long long>(cfg.seed));
  const auto res = sim::simulate(cfg);
  const auto burst = sim::build_burst_dataset(res, bp);
  const auto& ds = burst.dataset;
  std::printf("%zu window(s), %zu burst(s) (%.1f%%), threshold %.0f MiB/s\n",
              burst.n_windows, burst.n_bursts,
              100.0 * static_cast<double>(burst.n_bursts) /
                  static_cast<double>(burst.n_windows),
              burst.threshold_mib);

  const double train_frac = args.get_double_or("train-frac", 0.75);
  if (train_frac <= 0.0 || train_frac >= 1.0) {
    throw std::invalid_argument("--train-frac must be in (0,1)");
  }
  // Rows are already in window (time) order; split on the timeline.
  const auto n_train = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(ds.size()) *
                                  train_frac));
  if (n_train >= ds.size()) {
    throw std::invalid_argument("burst: no held-out windows at this "
                                "--train-frac");
  }
  std::vector<std::size_t> train_rows(n_train), test_rows(ds.size() - n_train);
  std::iota(train_rows.begin(), train_rows.end(), std::size_t{0});
  std::iota(test_rows.begin(), test_rows.end(), n_train);

  auto model = ml::make_regressor("classifier", args.get_or("params", "{}"));
  auto* clf = dynamic_cast<ml::BurstClassifier*>(model.get());
  std::vector<std::size_t> fit_cols, fit_rows, ev_cols, ev_rows;
  model->fit(taxonomy::feature_view(ds, feats, &fit_cols, &fit_rows,
                                    train_rows),
             taxonomy::targets(ds, train_rows));
  std::printf("trained %s on %zu window(s)\n", model->name().c_str(),
              train_rows.size());
  const auto x_test = taxonomy::feature_view(ds, feats, &ev_cols, &ev_rows,
                                             test_rows);
  print_classification_metrics("held-out", taxonomy::targets(ds, test_rows),
                               clf->predict_labels(x_test),
                               clf->predict(x_test));

  if (args.has("out")) {
    std::ofstream out(args.get("out"));
    if (!out) throw std::runtime_error("cannot open " + args.get("out"));
    model->save(out);
    std::printf("model saved to %s\n", args.get("out").c_str());
  }
  if (args.has("out-data")) {
    data::write_dataset_csv(args.get("out-data"), ds);
    std::printf("%zu window row(s) -> %s\n", ds.size(),
                args.get("out-data").c_str());
  }
  if (args.has("pred-out")) {
    std::vector<std::size_t> all_cols, all_rows;
    write_prediction_csv(
        args.get("pred-out"), ds,
        model->predict(taxonomy::feature_view(ds, feats, &all_cols,
                                              &all_rows)));
    std::printf("probabilities written to %s\n", args.get("pred-out").c_str());
  }
  return 0;
}

int cmd_inject(const cli::Args& args) {
  args.check_allowed(
      with_obs({"in", "binary", "plan", "plan-json", "seed", "out",
                "report"}));
  if (args.has("plan") && args.has("plan-json")) {
    throw std::invalid_argument(
        "inject: --plan and --plan-json are mutually exclusive");
  }
  faults::FaultPlan plan;
  if (args.has("plan")) {
    plan = faults::FaultPlan::from_file(args.get("plan"));
  } else if (args.has("plan-json")) {
    plan = faults::FaultPlan::from_json(
        util::Json::parse(args.get("plan-json")));
  }
  if (args.has("seed")) {
    plan.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 0));
  }
  const auto report = faults::inject_archive(args.get("in"), args.get("out"),
                                             args.has("binary"), plan);
  std::printf("injected %zu fault(s) into %zu record(s) -> %s "
              "(%zu written, %zu tail bytes cut)\n",
              report.injected_total(), report.input_records,
              args.get("out").c_str(), report.written_records,
              report.truncated_bytes);
  std::printf("expected quarantine downstream: %zu record(s)\n",
              report.expected_total());
  if (args.has("report")) {
    std::ofstream out(args.get("report"));
    if (!out) throw std::runtime_error("cannot open " + args.get("report"));
    out << report.to_json().dump(2) << '\n';
    std::printf("ground truth written to %s\n", args.get("report").c_str());
  }
  return 0;
}

sim::IngestMode parse_ingest_mode(const std::string& command,
                                  const cli::Args& args) {
  const auto mode_name = args.get_or("mode", "lenient");
  if (mode_name == "strict") return sim::IngestMode::kStrict;
  if (mode_name == "lenient") return sim::IngestMode::kLenient;
  if (mode_name == "repair") return sim::IngestMode::kRepair;
  throw std::invalid_argument(command +
                              ": --mode must be strict, lenient or repair");
}

int cmd_pack(const cli::Args& args) {
  args.check_allowed(with_obs({"logs", "binary", "dataset", "out", "store",
                               "mode", "system", "check"}));
  if (args.has("check")) {
    // `pack --check --store DIR`: structural + checksum verification with
    // strict exit codes (0 intact, 1 any defect), mirroring
    // `audit --expect` for archives.
    const auto dir = args.has("store") ? args.get("store") : args.get("out");
    const auto outcome = data::ColumnStore::open(dir, true);
    if (!outcome.quarantine.empty()) {
      std::fputs(outcome.quarantine.render().c_str(), stdout);
    }
    if (!outcome.ok()) {
      std::fprintf(stderr, "pack: store %s FAILED verification: %s\n",
                   dir.c_str(), outcome.first_error().c_str());
      return 1;
    }
    std::printf("store %s: ok (v%d, %zu row(s), %zu column(s), "
                "%zu mapped byte(s), checksums verified)\n",
                dir.c_str(), data::kStoreFormatVersion,
                outcome.store->rows(), outcome.store->n_columns(),
                outcome.store->mapped_bytes());
    return 0;
  }

  const auto out = args.get("out");
  if (args.has("dataset") == args.has("logs")) {
    throw std::invalid_argument(
        "pack: need exactly one of --dataset or --logs");
  }
  if (args.has("dataset")) {
    // CSV -> store. The system name defaults to the one load_dataset()
    // stamps, so `taxonomy --store` over the packed copy is bit-identical
    // to `taxonomy --dataset` over the CSV.
    const auto ds = data::read_dataset_csv(args.get("dataset"),
                                           args.get_or("system", "dataset"));
    data::pack_dataset(out, ds);
    std::printf("packed %zu row(s), %zu feature column(s) -> %s\n",
                ds.size(), ds.features.n_cols(), out.c_str());
    return 0;
  }

  // Log archives -> store: sharded ingest streamed straight into the
  // store writer, one surviving chunk per shard, so peak memory is a
  // wave of shards regardless of how many jobs the archives hold.
  const auto mode = parse_ingest_mode("pack", args);
  std::vector<sim::IngestShard> shards;
  for (const auto& path : util::split(args.get("logs"), ',')) {
    const auto trimmed = util::trim(path);
    if (!trimmed.empty()) {
      sim::IngestShard shard;
      shard.path = std::string(trimmed);
      shard.binary = args.has("binary");
      shards.push_back(std::move(shard));
    }
  }
  if (shards.empty()) {
    throw std::invalid_argument("pack: --logs needs at least one archive");
  }
  const auto system = args.get_or("system", "ingest");
  std::unique_ptr<data::StoreWriter> writer;
  const auto summary = sim::ingest_shards(
      shards, nullptr, system, nullptr, mode,
      [&](data::Dataset&& chunk) {
        if (!writer) {
          writer = std::make_unique<data::StoreWriter>(
              out, chunk.features.names(), chunk.system_name);
        }
        writer->append(chunk);
      });
  if (!writer) {
    throw std::runtime_error("pack: no rows survived ingest; nothing to pack");
  }
  writer->finish();
  std::printf("packed %zu of %zu record(s) from %zu shard(s) -> %s "
              "(%zu quarantined, %zu repaired)\n",
              writer->rows_written(), summary.total_records, shards.size(),
              out.c_str(), summary.quarantine.total(), summary.repaired);
  if (!summary.quarantine.empty()) {
    std::fputs(summary.quarantine.render().c_str(), stdout);
  }
  return 0;
}

int cmd_audit(const cli::Args& args) {
  args.check_allowed(
      with_obs({"archive", "binary", "store", "mode", "expect",
                "quarantine-out"}));
  const auto mode = parse_ingest_mode("audit", args);

  if (args.has("store")) {
    // Auditing a store verifies its manifest and column checksums; the
    // defect report uses the same Reason vocabulary as archive audits.
    if (args.has("expect")) {
      throw std::invalid_argument(
          "audit: --expect applies to archives, not stores");
    }
    const auto outcome = data::ColumnStore::open(args.get("store"), true);
    if (!outcome.quarantine.empty()) {
      std::fputs(outcome.quarantine.render().c_str(), stdout);
    }
    if (args.has("quarantine-out")) {
      std::ofstream qout(args.get("quarantine-out"));
      if (!qout) {
        throw std::runtime_error("cannot open " + args.get("quarantine-out"));
      }
      qout << outcome.quarantine.to_json().dump(2) << '\n';
    }
    if (!outcome.ok()) {
      std::fprintf(stderr, "audit: store %s FAILED verification: %s\n",
                   args.get("store").c_str(), outcome.first_error().c_str());
      return 1;
    }
    std::printf("store %s: ok (%zu row(s), %zu column(s), "
                "checksums verified)\n",
                args.get("store").c_str(), outcome.store->rows(),
                outcome.store->n_columns());
    return 0;
  }

  const auto outcome =
      args.has("binary")
          ? telemetry::read_binary_archive_file_outcome(
                args.get("archive"), telemetry::ParseMode::kLenient)
          : telemetry::parse_archive_file_outcome(
                args.get("archive"), telemetry::ParseMode::kLenient);
  if (!outcome.ok) {
    std::fprintf(stderr, "audit: unreadable archive: %s\n",
                 outcome.error.c_str());
    return 1;
  }
  // Strict mode still ingests leniently so the report covers every
  // defect (not just the first); its exit code is what is strict.
  const auto ingest = sim::build_dataset_ingest(
      outcome.records, nullptr, "audit", nullptr,
      mode == sim::IngestMode::kStrict ? sim::IngestMode::kLenient : mode);
  util::QuarantineReport combined = outcome.quarantine;
  combined.merge(ingest.quarantine);
  std::printf("parsed %zu record(s), built %zu dataset row(s)\n",
              outcome.records.size(), ingest.dataset.size());
  if (!combined.empty()) std::fputs(combined.render().c_str(), stdout);

  int rc = 0;
  if (args.has("expect")) {
    std::ifstream in(args.get("expect"));
    if (!in) throw std::runtime_error("cannot open " + args.get("expect"));
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto truth =
        faults::InjectionReport::from_json(util::Json::parse(buf.str()));
    bool mismatch = false;
    for (std::size_t i = 0; i < util::kReasonCount; ++i) {
      const auto reason = static_cast<util::Reason>(i);
      if (combined.count(reason) != truth.expected(reason)) {
        std::fprintf(stderr,
                     "audit: reason %s: expected %zu quarantined, got %zu\n",
                     util::reason_name(reason), truth.expected(reason),
                     combined.count(reason));
        mismatch = true;
      }
    }
    if (mismatch) {
      rc = 1;
    } else {
      std::printf("quarantine matches injection ground truth "
                  "(%zu record(s))\n",
                  truth.expected_total());
    }
  }
  if (args.has("quarantine-out")) {
    std::ofstream out(args.get("quarantine-out"));
    if (!out) {
      throw std::runtime_error("cannot open " + args.get("quarantine-out"));
    }
    out << combined.to_json().dump(2) << '\n';
  }
  if (mode == sim::IngestMode::kStrict && combined.total() != 0) {
    std::string reasons;
    for (std::size_t i = 0; i < util::kReasonCount; ++i) {
      if (combined.count(static_cast<util::Reason>(i)) == 0) continue;
      if (!reasons.empty()) reasons += ", ";
      reasons += util::reason_name(static_cast<util::Reason>(i));
    }
    std::fprintf(stderr, "audit: strict mode: %zu corrupt record(s) [%s]\n",
                 combined.total(), reasons.c_str());
    rc = 1;
  }
  return rc;
}

std::atomic<int> g_serve_signal{0};

void serve_signal_handler(int sig) { g_serve_signal.store(sig); }

int cmd_serve(const cli::Args& args) {
  args.check_allowed(with_obs({"models", "socket", "port", "batch-size",
                               "batch-wait-us", "max-inflight",
                               "ready-file", "shadow", "shadow-slot"}));
  serve::ServeConfig cfg;
  for (const auto& path : util::split(args.get("models"), ',')) {
    const auto trimmed = util::trim(path);
    if (!trimmed.empty()) cfg.model_files.emplace_back(trimmed);
  }
  if (cfg.model_files.empty()) {
    throw std::invalid_argument("serve: --models needs at least one file");
  }
  cfg.unix_socket = args.get_or("socket", "");
  cfg.tcp_port = static_cast<int>(args.get_int_or("port", -1));
  cfg.batch_size =
      static_cast<std::size_t>(args.get_int_or("batch-size", 32));
  cfg.batch_wait_us =
      static_cast<std::uint64_t>(args.get_int_or("batch-wait-us", 200));
  cfg.max_inflight =
      static_cast<std::size_t>(args.get_int_or("max-inflight", 256));
  cfg.shadow_file = args.get_or("shadow", "");
  cfg.shadow_slot =
      static_cast<std::size_t>(args.get_int_or("shadow-slot", 0));

  serve::Server server(cfg);
  server.start();
  for (std::size_t i = 0; i < server.registry().size(); ++i) {
    const auto entry = server.registry().entry(i);
    std::printf("serve: model %zu: %s (%s, %zu features, generation %llu, "
                "params hash %s)\n",
                i, server.registry().path(i).c_str(),
                entry->model->name().c_str(), entry->model->n_features(),
                static_cast<unsigned long long>(entry->generation),
                ml::format_params_hash(entry->params_hash).c_str());
  }
  if (const auto shadow = server.shadow()) {
    std::printf("serve: shadow candidate for slot %zu: %s (%s, "
                "params hash %s)\n",
                cfg.shadow_slot, shadow->source.c_str(),
                shadow->model->name().c_str(),
                ml::format_params_hash(shadow->params_hash).c_str());
  }
  if (!cfg.unix_socket.empty()) {
    std::printf("serve: listening on unix socket %s\n",
                cfg.unix_socket.c_str());
  }
  if (cfg.tcp_port >= 0) {
    std::printf("serve: listening on 127.0.0.1:%d\n", server.tcp_port());
  }
  std::printf("serve: batch-size %zu, batch-wait %llu us, max-inflight %zu\n",
              cfg.batch_size,
              static_cast<unsigned long long>(cfg.batch_wait_us),
              cfg.max_inflight);
  std::fflush(stdout);
  if (args.has("ready-file")) {
    // Written only once the listeners accept: scripts poll for this
    // file instead of racing the daemon startup.
    std::ofstream ready(args.get("ready-file"));
    if (!ready) {
      throw std::runtime_error("cannot open " + args.get("ready-file"));
    }
    ready << "port " << server.tcp_port() << '\n';
  }

  struct sigaction sa{};
  sa.sa_handler = serve_signal_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  while (g_serve_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("serve: signal %d, draining...\n", g_serve_signal.load());
  std::fflush(stdout);
  server.stop();

  const auto stats = server.stats();
  std::printf("serve: drained; %llu request(s) in %llu batch(es), "
              "%llu response(s), %llu shed, %llu error(s), "
              "%llu quarantined\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.responses),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.quarantined));
  if (stats.shadow_requests > 0 || stats.promotions > 0 ||
      stats.rollbacks > 0) {
    std::printf("serve: shadow scored %llu request(s), %llu diverged "
                "(max |delta| %.17g); %llu promotion(s), %llu rollback(s)\n",
                static_cast<unsigned long long>(stats.shadow_requests),
                static_cast<unsigned long long>(stats.shadow_diverged),
                stats.max_abs_divergence,
                static_cast<unsigned long long>(stats.promotions),
                static_cast<unsigned long long>(stats.rollbacks));
  }
  if (obs::enabled()) {
    auto& hist = obs::MetricsRegistry::global().histogram(
        "serve.request_ms", obs::latency_ms_edges());
    if (hist.count() > 0) {
      std::printf("serve: latency p50 %.3f ms, p99 %.3f ms\n",
                  hist.quantile(0.5), hist.quantile(0.99));
    }
  }
  const auto quarantined = server.quarantine();
  if (!quarantined.empty()) std::fputs(quarantined.render().c_str(), stdout);
  return 0;
}

/// The running binary's own path: the default `iotax` the fleet
/// supervisor execs its shard daemons from.
std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "iotax";
  buf[n] = '\0';
  return std::string(buf);
}

int cmd_fleet(const cli::Args& args) {
  args.check_allowed(with_obs(
      {"models", "socket", "port", "shard-dir", "groups", "replicas",
       "shard-ports", "batch-size", "batch-wait-us", "max-inflight",
       "restart-budget", "health-interval-ms", "health-timeout-ms",
       "deadline-ms", "try-timeout-ms", "chaos-plan", "chaos-json",
       "ready-file", "iotax-bin", "spawn-timeout-ms", "seed"}));
  const long long groups = args.get_int_or("groups", 1);
  const long long replicas = args.get_int_or("replicas", 2);
  if (groups < 1) {
    throw std::invalid_argument("fleet: --groups must be >= 1");
  }
  if (replicas < 1) {
    throw std::invalid_argument("fleet: --replicas must be >= 1");
  }

  serve::SupervisorConfig sup;
  for (const auto& path : util::split(args.get("models"), ',')) {
    const auto trimmed = util::trim(path);
    if (!trimmed.empty()) sup.model_files.emplace_back(trimmed);
  }
  sup.iotax_bin = args.get_or("iotax-bin", self_exe_path());
  sup.shard_dir = args.get("shard-dir");
  sup.n_groups = static_cast<std::size_t>(groups);
  sup.n_replicas = static_cast<std::size_t>(replicas);
  for (const auto& tok : util::split(args.get_or("shard-ports", ""), ',')) {
    const auto trimmed = util::trim(tok);
    if (!trimmed.empty()) {
      sup.shard_ports.push_back(std::stoi(std::string(trimmed)));
    }
  }
  sup.batch_size =
      static_cast<std::size_t>(args.get_int_or("batch-size", 32));
  sup.batch_wait_us =
      static_cast<std::uint64_t>(args.get_int_or("batch-wait-us", 200));
  sup.max_inflight =
      static_cast<std::size_t>(args.get_int_or("max-inflight", 256));
  sup.health_interval_ms =
      static_cast<std::uint64_t>(args.get_int_or("health-interval-ms", 100));
  sup.health_timeout_ms =
      static_cast<std::uint64_t>(args.get_int_or("health-timeout-ms", 1000));
  sup.restart_budget =
      static_cast<std::size_t>(args.get_int_or("restart-budget", 8));
  sup.spawn_timeout_ms =
      static_cast<std::uint64_t>(args.get_int_or("spawn-timeout-ms", 30000));
  sup.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 0xf1ee7));

  serve::RouterConfig rc;
  rc.unix_socket = args.get_or("socket", "");
  rc.tcp_port = static_cast<int>(args.get_int_or("port", -1));
  rc.deadline_ms =
      static_cast<std::uint64_t>(args.get_int_or("deadline-ms", 5000));
  rc.try_timeout_ms =
      static_cast<std::uint64_t>(args.get_int_or("try-timeout-ms", 250));
  rc.seed = sup.seed;
  if (args.has("chaos-plan")) {
    rc.chaos = faults::ChaosPlan::from_file(args.get("chaos-plan"));
  } else if (args.has("chaos-json")) {
    rc.chaos = faults::ChaosPlan::from_json(
        util::Json::parse(args.get("chaos-json")));
  }

  serve::Supervisor supervisor(sup);
  supervisor.start();
  rc.supervisor = &supervisor;
  serve::Router router(rc);
  try {
    router.start();
  } catch (...) {
    supervisor.stop();
    throw;
  }

  std::printf("fleet: %zu group(s) x %zu replica(s) = %zu shard(s) of %s, "
              "restart budget %zu\n",
              sup.n_groups, sup.n_replicas, sup.n_groups * sup.n_replicas,
              sup.iotax_bin.c_str(), sup.restart_budget);
  if (!rc.unix_socket.empty()) {
    std::printf("fleet: routing on unix socket %s\n", rc.unix_socket.c_str());
  }
  if (rc.tcp_port >= 0) {
    std::printf("fleet: routing on 127.0.0.1:%d\n", router.tcp_port());
  }
  if (!rc.chaos.empty()) {
    std::printf("fleet: chaos plan armed: %zu event(s), "
                "%zu expected restart(s)\n",
                rc.chaos.events.size(), rc.chaos.expected_restarts());
  }
  std::fflush(stdout);
  if (args.has("ready-file")) {
    std::ofstream ready(args.get("ready-file"));
    if (!ready) {
      throw std::runtime_error("cannot open " + args.get("ready-file"));
    }
    ready << "port " << router.tcp_port() << '\n';
  }

  struct sigaction sa{};
  sa.sa_handler = serve_signal_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  while (g_serve_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("fleet: signal %d, draining...\n", g_serve_signal.load());
  std::fflush(stdout);
  router.stop();
  supervisor.stop();

  const auto fs = router.stats();
  const auto ss = supervisor.stats();
  std::printf("fleet: drained; %llu request(s), %llu response(s), "
              "%llu error(s), %llu degraded\n",
              static_cast<unsigned long long>(fs.requests),
              static_cast<unsigned long long>(fs.responses),
              static_cast<unsigned long long>(fs.errors),
              static_cast<unsigned long long>(fs.degraded));
  std::printf("fleet: backhaul retries %llu, failovers %llu, "
              "busy-retries %llu\n",
              static_cast<unsigned long long>(fs.retries),
              static_cast<unsigned long long>(fs.failovers),
              static_cast<unsigned long long>(fs.busy_retries));
  std::printf("fleet: supervisor spawned %llu, restarted %llu "
              "(%llu exit(s), %llu hang(s) detected, %llu gave up)\n",
              static_cast<unsigned long long>(ss.spawns),
              static_cast<unsigned long long>(ss.restarts),
              static_cast<unsigned long long>(ss.exits_detected),
              static_cast<unsigned long long>(ss.hangs_detected),
              static_cast<unsigned long long>(ss.gave_up));
  if (!rc.chaos.empty()) {
    std::printf("fleet: chaos fired %llu kill(s), %llu hang(s), "
                "%llu drop(s), %llu delay(s)\n",
                static_cast<unsigned long long>(fs.chaos_kills),
                static_cast<unsigned long long>(fs.chaos_hangs),
                static_cast<unsigned long long>(fs.chaos_drops),
                static_cast<unsigned long long>(fs.chaos_delays));
  }
  const auto quarantined = router.quarantine();
  if (!quarantined.empty()) std::fputs(quarantined.render().c_str(), stdout);
  return 0;
}

serve::Client connect_query_client(const cli::Args& args) {
  const double wait_secs = args.get_double_or("wait-secs", 0.0);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(wait_secs);
  while (true) {
    try {
      if (args.has("socket")) {
        return serve::Client::connect_unix(args.get("socket"));
      }
      if (args.has("port")) {
        return serve::Client::connect_tcp(
            args.get_or("host", "127.0.0.1"),
            static_cast<std::uint16_t>(args.get_int_or("port", 0)));
      }
      throw std::invalid_argument("query: need --socket or --port");
    } catch (const std::runtime_error&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

int cmd_query(const cli::Args& args) {
  args.check_allowed(with_obs({"socket", "host", "port", "dataset", "store",
                               "model", "dist", "out", "pipeline", "repeat",
                               "ping", "wait-secs", "shadow", "shadow-out",
                               "deadline-ms", "fleet", "features"}));
  // A daemon that hangs (rather than dies) must not stall the client
  // forever: recv goes silent past this and raises a typed timeout.
  const auto deadline_ms = static_cast<std::uint64_t>(
      std::max<long long>(0, args.get_int_or("deadline-ms", 30000)));
  const bool fleet_mode = args.has("fleet");
  auto client = connect_query_client(args);
  client.set_recv_timeout_ms(deadline_ms);
  if (args.has("ping")) {
    client.send_ping(1);
    serve::Client::Reply reply;
    if (!client.read_reply(&reply) ||
        reply.type != util::FrameType::kPong) {
      throw std::runtime_error("query: no pong from daemon");
    }
    std::printf("pong\n");
    return 0;
  }

  const auto src = load_dataset(args);
  const auto& ds = src.ds();
  // The served model decides what it eats; the client only needs to
  // assemble the matching columns (darshan counters by default, the
  // windowed telemetry for burst classifiers).
  const auto feat_name = args.get_or("features", "darshan");
  std::vector<taxonomy::FeatureSet> feats;
  if (feat_name == "darshan") {
    feats = {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  } else if (feat_name == "burst") {
    feats = {taxonomy::FeatureSet::kBurst};
  } else {
    throw std::invalid_argument("--features must be darshan or burst, got '" +
                                feat_name + "'");
  }
  std::vector<std::size_t> view_cols, view_rows;
  const auto x =
      taxonomy::feature_view(ds, feats, &view_cols, &view_rows);
  const auto model_index =
      static_cast<std::uint16_t>(args.get_int_or("model", 0));
  const bool want_dist = args.has("dist");
  const bool want_shadow = args.has("shadow") || args.has("shadow-out");
  const auto window = std::max<std::size_t>(
      1, static_cast<std::size_t>(args.get_int_or("pipeline", 32)));
  const auto repeats = std::max<long long>(1, args.get_int_or("repeat", 1));

  const std::size_t n = x.rows();
  std::vector<double> pred(n, 0.0);
  std::vector<double> shadow_pred;
  std::size_t n_shadowed = 0;
  if (want_shadow) shadow_pred.assign(n, 0.0);
  std::uint64_t busy_retries = 0;
  bool repeat_mismatch = false;
  std::vector<double> row_scratch;
  const auto send_row = [&](std::uint64_t id, std::size_t row) {
    serve::PredictRequest req;
    req.request_id = id;
    req.model_index = model_index;
    req.want_dist = want_dist;
    req.want_shadow = want_shadow;
    const auto src = x.row(row, row_scratch);
    req.features.assign(src.begin(), src.end());
    client.send_predict(req);
  };

  std::uint64_t reconnects = 0;
  for (long long rep = 0; rep < repeats; ++rep) {
    const std::uint64_t id_base =
        static_cast<std::uint64_t>(rep) * n + 1;
    std::map<std::uint64_t, std::size_t> inflight;  // id -> row
    std::size_t next = 0;
    std::size_t done = 0;
    std::size_t consecutive_failures = 0;
    // Fleet mode: the router may restart between loads; reconnect and
    // resend every outstanding request instead of giving up. Safe
    // because predictions are stateless and identified by request id.
    const auto reconnect_and_resend = [&](const std::string& why) {
      if (!fleet_mode) {
        throw std::runtime_error("query: " + why + " with " +
                                 std::to_string(n - done) +
                                 " response(s) outstanding");
      }
      if (++consecutive_failures > 8) {
        throw std::runtime_error(
            "query: giving up after 8 consecutive reconnect(s): " + why);
      }
      client.close();
      client = connect_query_client(args);
      client.set_recv_timeout_ms(deadline_ms);
      ++reconnects;
      for (const auto& [id, row] : inflight) send_row(id, row);
    };
    while (done < n) {
      while (next < n && inflight.size() < window) {
        send_row(id_base + next, next);
        inflight[id_base + next] = next;
        ++next;
      }
      serve::Client::Reply reply;
      bool have_reply = false;
      try {
        have_reply = client.read_reply(&reply);
      } catch (const serve::Client::Timeout&) {
        reconnect_and_resend("daemon silent past the deadline");
        continue;
      } catch (const std::runtime_error& e) {
        reconnect_and_resend(e.what());
        continue;
      }
      if (!have_reply) {
        reconnect_and_resend("daemon closed the connection");
        continue;
      }
      if (reply.type == util::FrameType::kPredictResponse) {
        consecutive_failures = 0;
        const auto it = inflight.find(reply.request_id);
        if (it == inflight.end()) {
          throw std::runtime_error("query: response for unknown request id " +
                                   std::to_string(reply.request_id));
        }
        if (reply.predict.values.empty()) {
          throw std::runtime_error("query: empty prediction payload");
        }
        const double value = reply.predict.values[0];
        if (want_shadow && rep == 0 && reply.predict.values.size() >= 2) {
          shadow_pred[it->second] = reply.predict.values[1];
          ++n_shadowed;
        }
        if (rep == 0) {
          pred[it->second] = value;
        } else if (pred[it->second] != value) {
          // The daemon is deterministic; any drift across repeats means
          // served state leaked between requests.
          repeat_mismatch = true;
        }
        inflight.erase(it);
        ++done;
      } else if (reply.type == util::FrameType::kErrorResponse &&
                 reply.error.status == serve::ServeStatus::kBusy) {
        const auto it = inflight.find(reply.request_id);
        if (it == inflight.end()) {
          throw std::runtime_error("query: BUSY for unknown request id");
        }
        ++busy_retries;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        send_row(it->first, it->second);
      } else if (reply.type == util::FrameType::kErrorResponse) {
        std::string what = std::string("query: daemon replied ") +
                           serve::serve_status_name(reply.error.status);
        if (reply.error.reason.has_value()) {
          what += std::string(" [") +
                  util::reason_name(*reply.error.reason) + "]";
        }
        if (!reply.error.detail.empty()) what += ": " + reply.error.detail;
        throw std::runtime_error(what);
      } else {
        throw std::runtime_error("query: unexpected reply frame");
      }
    }
  }

  const double err =
      ml::median_abs_log_error(taxonomy::targets(ds), pred);
  std::printf("served %zu prediction(s) over %lld pass(es) "
              "(%llu busy retried), error %.2f%% median |log10|\n",
              n, repeats, static_cast<unsigned long long>(busy_retries),
              ml::log_error_to_percent(err));
  if (fleet_mode) {
    std::printf("fleet client: %llu reconnect(s), 0 failed request(s)\n",
                static_cast<unsigned long long>(reconnects));
  }
  if (want_shadow) {
    std::printf("shadow answered %zu of %zu request(s)\n", n_shadowed, n);
  }
  if (repeat_mismatch) {
    std::fprintf(stderr,
                 "query: responses drifted across repeat passes "
                 "(daemon is not deterministic)\n");
    return 1;
  }
  if (args.has("out")) {
    std::ofstream out(args.get("out"));
    if (!out) throw std::runtime_error("cannot open " + args.get("out"));
    out << "job_id,log10_pred\n";
    out.precision(17);
    for (std::size_t i = 0; i < n; ++i) {
      out << ds.meta[i].job_id << ',' << pred[i] << '\n';
    }
    std::printf("predictions written to %s\n", args.get("out").c_str());
  }
  if (args.has("shadow-out")) {
    if (n_shadowed != n) {
      throw std::runtime_error(
          "query: --shadow-out needs a shadow answer for every row, got " +
          std::to_string(n_shadowed) + " of " + std::to_string(n) +
          " (is the daemon running with --shadow?)");
    }
    // Same format as offline `predict --out`, so a bit-exact shadow is
    // verifiable with a plain byte compare against the candidate's
    // offline predictions.
    std::ofstream out(args.get("shadow-out"));
    if (!out) throw std::runtime_error("cannot open " + args.get("shadow-out"));
    out << "job_id,log10_pred\n";
    out.precision(17);
    for (std::size_t i = 0; i < n; ++i) {
      out << ds.meta[i].job_id << ',' << shadow_pred[i] << '\n';
    }
    std::printf("shadow predictions written to %s\n",
                args.get("shadow-out").c_str());
  }
  return 0;
}

int cmd_monitor(const cli::Args& args) {
  args.check_allowed(with_obs({"archive", "store", "model-file", "follow",
                               "poll-ms", "idle-secs", "window-jobs",
                               "reference-windows", "trigger", "min-jobs",
                               "extra-rounds", "candidate-out", "seed"}));
  auto model = ml::load_regressor_file(args.get("model-file"));

  taxonomy::OnlineMonitorParams mp;
  mp.window_jobs =
      static_cast<std::size_t>(args.get_int_or("window-jobs", 64));
  mp.reference_windows =
      static_cast<std::size_t>(args.get_int_or("reference-windows", 2));
  mp.error_ratio_trigger = args.get_double_or("trigger", 1.5);
  mp.min_jobs = static_cast<std::size_t>(args.get_int_or(
      "min-jobs",
      static_cast<long long>(std::min<std::size_t>(32, mp.window_jobs))));
  mp.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 41));
  taxonomy::OnlineMonitor monitor(mp);

  const bool follow = args.has("follow");
  const auto poll_ms = std::max<long long>(1, args.get_int_or("poll-ms", 100));
  const double idle_secs = args.get_double_or("idle-secs", 5.0);
  const auto extra_rounds =
      static_cast<std::size_t>(args.get_int_or("extra-rounds", 16));

  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  const auto info = model->fit_continue_info();
  std::printf("monitor: %s from %s (%s warm-start, unit '%s'), "
              "window %zu job(s), trigger ratio %.2f\n",
              model->name().c_str(), args.get("model-file").c_str(),
              info.supported ? "supports" : "no", info.round_unit,
              mp.window_jobs, mp.error_ratio_trigger);
  std::fflush(stdout);

  // Rolling buffer of the most recent window_jobs observations: at
  // trigger time it holds exactly the triggering window's rows, which
  // is what the candidate warm-starts on (deterministic: same stream ->
  // same buffer -> same fit_continue RNG replay from the saved seed).
  std::deque<std::pair<std::vector<double>, double>> recent;
  util::QuarantineReport ingest_quarantine;
  bool retrained = false;
  std::size_t total_jobs = 0;
  auto last_data = std::chrono::steady_clock::now();

  const auto print_window = [](const taxonomy::WindowAttribution& w) {
    std::printf("monitor: window %zu [%s] n=%zu err=%.4f ratio=%.2f "
                "ood=%.2f noise=%.2f drift=%.2f\n",
                w.window_index, w.health.confidence.c_str(), w.n_jobs,
                w.median_abs_error, w.error_ratio, w.share_ood,
                w.share_noise, w.share_drift);
  };

  const auto handle_closed = [&](const taxonomy::WindowAttribution& w) {
    print_window(w);
    if (!w.triggered) return;
    std::printf("monitor: TRIGGER window %zu error ratio %.2f >= %.2f "
                "(drift share %.2f, ood share %.2f)\n",
                w.window_index, w.error_ratio, mp.error_ratio_trigger,
                w.share_drift, w.share_ood);
    std::fflush(stdout);
    if (retrained) return;  // one candidate per run
    if (!info.supported) {
      std::printf("monitor: %s does not support warm-start; no candidate\n",
                  model->name().c_str());
      return;
    }
    if (recent.size() < 2) return;
    data::Matrix rx(recent.size(), recent.front().first.size());
    std::vector<double> ry(recent.size());
    for (std::size_t r = 0; r < recent.size(); ++r) {
      auto row = rx.mutable_row(r);
      for (std::size_t c = 0; c < row.size(); ++c) {
        row[c] = recent[r].first[c];
      }
      ry[r] = recent[r].second;
    }
    model->fit_continue(rx, ry, extra_rounds);
    retrained = true;
    std::printf("monitor: warm-started %zu extra %s(s) on %zu job(s)\n",
                extra_rounds, info.round_unit, recent.size());
    if (args.has("candidate-out")) {
      std::ofstream out(args.get("candidate-out"));
      if (!out) {
        throw std::runtime_error("cannot open " + args.get("candidate-out"));
      }
      model->save(out);
      std::printf("monitor: candidate saved to %s\n",
                  args.get("candidate-out").c_str());
    }
    std::fflush(stdout);
  };

  util::QuarantineReport combined;
  if (args.has("store")) {
    // Replay the packed rows through the monitor in window-sized chunks
    // — same windows, same triggers as tailing the archive the store was
    // packed from, but reading mapped columns instead of re-parsing.
    auto outcome = data::ColumnStore::open(args.get("store"));
    if (!outcome.ok()) {
      throw std::runtime_error("cannot open store " + args.get("store") +
                               ": " + outcome.first_error());
    }
    const auto& sds = outcome.store->dataset();
    const std::size_t chunk = std::max<std::size_t>(1, mp.window_jobs);
    std::vector<double> scratch;
    for (std::size_t lo = 0; lo < sds.size(); lo += chunk) {
      const std::size_t hi = std::min(sds.size(), lo + chunk);
      std::vector<std::size_t> rows(hi - lo);
      for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = lo + i;
      std::vector<std::size_t> cs, rs;
      const auto x = taxonomy::feature_view(sds, feats, &cs, &rs, rows);
      const auto y = taxonomy::targets(sds, rows);
      const auto pred = model->predict(x);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto row = x.row(i, scratch);
        recent.emplace_back(std::vector<double>(row.begin(), row.end()),
                            y[i]);
        if (recent.size() > mp.window_jobs) recent.pop_front();
        ++total_jobs;
        const auto closed =
            monitor.observe(sds.meta[rows[i]].app_id, y[i], pred[i]);
        if (closed.has_value()) handle_closed(*closed);
      }
    }
  } else {
    sim::LogTailer tailer(args.get("archive"));
    while (true) {
      const auto records = tailer.poll();
      if (records.empty()) {
        if (!follow) break;
        const double idle = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - last_data)
                                .count();
        if (idle >= idle_secs) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
        continue;
      }
      last_data = std::chrono::steady_clock::now();
      auto step = sim::ingest_stream_records(records, nullptr, "monitor");
      ingest_quarantine.merge(step.quarantine);
      if (step.dataset.size() == 0) continue;
      const auto x = taxonomy::feature_matrix(step.dataset, feats);
      const auto y = taxonomy::targets(step.dataset);
      // Score with the *production* view of the model: after a retrain
      // the monitor keeps tracking what live serving would see until the
      // candidate is promoted, so windows stay comparable... except the
      // retrained model object IS the candidate. Score first, then
      // learn: predictions for this batch come from the pre-update
      // weights.
      const auto pred = model->predict(x);
      for (std::size_t i = 0; i < step.dataset.size(); ++i) {
        const auto row = x.row(i);
        recent.emplace_back(std::vector<double>(row.begin(), row.end()),
                            y[i]);
        if (recent.size() > mp.window_jobs) recent.pop_front();
        ++total_jobs;
        const auto closed =
            monitor.observe(step.dataset.meta[i].app_id, y[i], pred[i]);
        if (closed.has_value()) handle_closed(*closed);
      }
    }
    combined = tailer.quarantine();
  }
  if (const auto closed = monitor.flush()) handle_closed(*closed);

  combined.merge(ingest_quarantine);
  std::printf("monitor: %zu job(s) in %zu window(s), baseline %.4f, "
              "%s; %zu quarantined\n",
              total_jobs, monitor.windows().size(),
              monitor.baseline_error(),
              monitor.any_trigger() ? "TRIGGERED" : "no trigger",
              combined.total());
  if (!combined.empty()) std::fputs(combined.render().c_str(), stdout);
  return monitor.any_trigger() ? 3 : 0;
}

int cmd_promote(const cli::Args& args) {
  args.check_allowed(with_obs({"socket", "host", "port", "model",
                               "min-shadow", "rollback", "status",
                               "wait-secs"}));
  if (args.has("rollback") && args.has("status")) {
    throw std::invalid_argument(
        "promote: --rollback and --status are mutually exclusive");
  }
  auto client = connect_query_client(args);
  serve::ControlRequest req;
  req.request_id = 1;
  req.op = args.has("rollback") ? serve::ControlOp::kRollback
           : args.has("status") ? serve::ControlOp::kStatus
                                : serve::ControlOp::kPromote;
  req.model_index = static_cast<std::uint16_t>(args.get_int_or("model", 0));
  req.min_shadow_requests =
      static_cast<std::uint64_t>(args.get_int_or("min-shadow", 1));
  client.send_control(req);
  serve::Client::Reply reply;
  if (!client.read_reply(&reply) ||
      reply.type != util::FrameType::kControlResponse) {
    throw std::runtime_error("promote: no control response from daemon");
  }
  const auto& resp = reply.control;
  const char* verb = args.has("rollback") ? "rollback"
                     : args.has("status") ? "status"
                                          : "promote";
  std::printf("%s: %s; slot %u generation %llu: %s\n", verb,
              resp.ok ? "ok" : "refused", req.model_index,
              static_cast<unsigned long long>(resp.generation),
              resp.detail.c_str());
  std::printf("%s: shadow scored %llu request(s), %llu diverged "
              "(max |delta| %.17g)\n",
              verb, static_cast<unsigned long long>(resp.shadow_requests),
              static_cast<unsigned long long>(resp.shadow_diverged),
              resp.max_abs_divergence);
  return resp.ok ? 0 : 1;
}

int cmd_checkjson(const cli::Args& args) {
  args.check_allowed(with_obs({}));
  if (args.positional().empty()) {
    throw std::invalid_argument("checkjson: need at least one file");
  }
  int rc = 0;
  for (const auto& path : args.positional()) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "checkjson: cannot open %s\n", path.c_str());
      rc = 1;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      const auto doc = util::Json::parse(buf.str());
      std::string shape = "scalar";
      if (doc.is_object()) {
        shape = "object, " + std::to_string(doc.size()) + " keys";
      } else if (doc.is_array()) {
        shape = "array, " + std::to_string(doc.size()) + " items";
      }
      std::printf("%s: ok (%s)\n", path.c_str(), shape.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), e.what());
      rc = 1;
    }
  }
  return rc;
}

/// Write the run's metrics / trace files when requested.
void write_obs_outputs(const cli::Args& args) {
  if (args.has("metrics-out")) {
    std::ofstream out(args.get("metrics-out"));
    if (!out) throw std::runtime_error("cannot open " + args.get("metrics-out"));
    obs::MetricsRegistry::global().write_json(out);
    std::fprintf(stderr, "metrics written to %s\n",
                 args.get("metrics-out").c_str());
  }
  if (args.has("trace-out")) {
    std::ofstream out(args.get("trace-out"));
    if (!out) throw std::runtime_error("cannot open " + args.get("trace-out"));
    obs::TraceLog::global().write_chrome_json(out);
    std::fprintf(stderr, "trace written to %s\n",
                 args.get("trace-out").c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "version") {
    // Keep `kernels=` early in the line: the no-SIMD CI job greps it.
    std::string magics;
    for (const auto& m : ml::known_model_magics()) {
      if (!magics.empty()) magics += ',';
      magics += m;
    }
    std::printf("iotax 1 kernels=%s store=v%d models=%s\n",
                ml::kernels::describe().c_str(), data::kStoreFormatVersion,
                magics.c_str());
    return 0;
  }
  const cli::Args args(argc - 2, argv + 2);
  if (args.has("metrics-out") || args.has("trace-out")) {
    obs::set_enabled(true);
  }
  try {
    int rc = -1;
    if (command == "simulate") rc = cmd_simulate(args);
    else if (command == "parse") rc = cmd_parse(args);
    else if (command == "bound") rc = cmd_bound(args);
    else if (command == "noise") rc = cmd_noise(args);
    else if (command == "taxonomy") rc = cmd_taxonomy(args);
    else if (command == "importance") rc = cmd_importance(args);
    else if (command == "drift") rc = cmd_drift(args);
    else if (command == "train") rc = cmd_train(args);
    else if (command == "predict") rc = cmd_predict(args);
    else if (command == "burst") rc = cmd_burst(args);
    else if (command == "serve") rc = cmd_serve(args);
    else if (command == "fleet") rc = cmd_fleet(args);
    else if (command == "query") rc = cmd_query(args);
    else if (command == "monitor") rc = cmd_monitor(args);
    else if (command == "promote") rc = cmd_promote(args);
    else if (command == "pack") rc = cmd_pack(args);
    else if (command == "inject") rc = cmd_inject(args);
    else if (command == "audit") rc = cmd_audit(args);
    else if (command == "checkjson") rc = cmd_checkjson(args);
    if (rc < 0) {
      std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
      return usage();
    }
    write_obs_outputs(args);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iotax %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
