#!/usr/bin/env bash
# End-to-end burst-workload smoke: train the burst classifier on the
# tiny preset, demand bit-identical training at IOTAX_THREADS=1 and 4,
# verify the checkpoint round-trips byte-exactly through --predict, then
# stand up `iotax serve` and require the served probabilities to match
# the offline CSV byte-for-byte. Also pins the --version magic listing
# so a classifier checkpoint is diagnosable from the binary alone.
#
#   burst_smoke.sh <path-to-iotax> <work-dir>
set -euo pipefail

IOTAX="$1"
WORK="$2"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

echo "== version lists the classifier magic =="
"$IOTAX" --version | grep -q "iotax-classifier" \
  || { echo "FAIL: --version does not list iotax-classifier"; exit 1; }

echo "== train at IOTAX_THREADS=1 and 4 (must be bit-identical) =="
IOTAX_THREADS=1 "$IOTAX" burst --preset tiny --seed 7 \
  --out clf_t1.model --out-data burst.csv --pred-out offline.csv
IOTAX_THREADS=4 "$IOTAX" burst --preset tiny --seed 7 \
  --out clf_t4.model --out-data burst_t4.csv --pred-out offline_t4.csv
cmp clf_t1.model clf_t4.model \
  || { echo "FAIL: classifier checkpoints differ across thread counts"; exit 1; }
cmp burst.csv burst_t4.csv \
  || { echo "FAIL: burst datasets differ across thread counts"; exit 1; }
cmp offline.csv offline_t4.csv \
  || { echo "FAIL: probabilities differ across thread counts"; exit 1; }

echo "== checkpoint round-trip =="
"$IOTAX" burst --predict --model-file clf_t1.model --dataset burst.csv \
  --out reload.csv
cmp offline.csv reload.csv \
  || { echo "FAIL: reloaded classifier drifted from the trainer"; exit 1; }

N_ROWS=$(($(wc -l < offline.csv) - 1))
echo "rows=$N_ROWS"

run_daemon_pass() {
  local threads="$1"
  local sock="$WORK/burst_t${threads}.sock"
  local served="served_t${threads}.csv"

  echo "== daemon pass at IOTAX_THREADS=$threads =="
  rm -f ready.txt
  IOTAX_THREADS="$threads" "$IOTAX" serve --models clf_t1.model \
    --socket "$sock" --ready-file ready.txt \
    > "serve_t${threads}.log" 2>&1 &
  DAEMON_PID=$!

  for _ in $(seq 1 200); do
    [[ -f ready.txt ]] && break
    sleep 0.05
  done
  [[ -f ready.txt ]] || { echo "FAIL: daemon never became ready"; exit 1; }

  "$IOTAX" query --socket "$sock" --ping
  "$IOTAX" query --socket "$sock" --dataset burst.csv --features burst \
    --out "$served"

  kill -TERM "$DAEMON_PID"
  local rc=0
  wait "$DAEMON_PID" || rc=$?
  DAEMON_PID=""
  [[ $rc -eq 0 ]] || { echo "FAIL: daemon exit $rc after SIGTERM"; exit 1; }
  grep -q "drained;" "serve_t${threads}.log" \
    || { echo "FAIL: no drain summary in serve_t${threads}.log"; exit 1; }

  cmp offline.csv "$served" \
    || { echo "FAIL: served probabilities differ from offline at threads=$threads"; exit 1; }
  echo "ok: $N_ROWS served burst probabilities byte-identical" \
       "to offline (threads=$threads)"
}

run_daemon_pass 1
run_daemon_pass 4

echo "burst_smoke: PASS"
