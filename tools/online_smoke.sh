#!/usr/bin/env bash
# End-to-end online-loop smoke: a production model trained on one
# system watches a live log stream that shifts mid-stream to a different
# system. The monitor must attribute the windowed error, raise its
# deterministic drift trigger, warm-start a candidate, and exit 3; the
# candidate must then shadow-validate bit-exactly against its offline
# predictions inside a live daemon, survive a refused promotion, promote
# under concurrent query load without dropping an in-flight request, and
# actually recover the post-shift error.
#
#   online_smoke.sh <path-to-iotax> <work-dir>
set -euo pipefail

IOTAX="$1"
WORK="$2"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

DAEMON_PID=""
MONITOR_PID=""
cleanup() {
  for pid in "$DAEMON_PID" "$MONITOR_PID"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -KILL "$pid" 2>/dev/null || true
    fi
  done
}
trap cleanup EXIT

# First N whole records ("# end_of_record"-terminated) of an archive.
head_records() {
  awk -v n="$2" '{print} /^# end_of_record$/ {c++; if (c == n) exit}' "$1"
}

# The "error X.XX% median |log10|" figure from a predict/train log.
error_pct() {
  sed -n 's/.*error \([0-9.]*\)% median.*/\1/p' "$1" | head -1
}

echo "== two regimes: train on tiny (theta), shift to cori-like =="
"$IOTAX" simulate --preset tiny --seed 7 --out sim_a
"$IOTAX" simulate --preset cori --seed 9 --out sim_b

echo "== production model: time-split train on the pre-shift system =="
"$IOTAX" train --dataset sim_a/dataset.csv --model gbt \
  --params '{"n_estimators": 40, "max_depth": 5}' \
  --time-split --train-frac 0.8 --out model.gbt | tee train.log

echo "== live stream: baseline windows, then a mid-stream shift =="
: > stream.darshan.txt
"$IOTAX" monitor --archive stream.darshan.txt --model-file model.gbt \
  --follow --poll-ms 50 --idle-secs 4 \
  --window-jobs 64 --reference-windows 2 --trigger 1.5 \
  --extra-rounds 32 --candidate-out candidate.gbt \
  > monitor.log 2>&1 &
MONITOR_PID=$!

# 3 windows of in-distribution traffic (2 reference + 1 quiet), then 2
# windows from the other system, appended while the monitor is tailing.
head_records sim_a/jobs.darshan.txt 192 >> stream.darshan.txt
sleep 0.5
head_records sim_b/jobs.darshan.txt 128 >> stream.darshan.txt

MONITOR_RC=0
wait "$MONITOR_PID" || MONITOR_RC=$?
MONITOR_PID=""
cat monitor.log
[[ $MONITOR_RC -eq 3 ]] \
  || { echo "FAIL: monitor exit $MONITOR_RC (wanted 3 = triggered)"; exit 1; }
grep -q "monitor: TRIGGER" monitor.log \
  || { echo "FAIL: no drift trigger in monitor.log"; exit 1; }
grep -q "monitor: candidate saved to candidate.gbt" monitor.log \
  || { echo "FAIL: monitor produced no candidate"; exit 1; }

echo "== the candidate must beat production on the post-shift system =="
IOTAX_THREADS=1 "$IOTAX" predict --dataset sim_b/dataset.csv \
  --model-file model.gbt --out prod_offline_b.csv | tee prod_b.log
IOTAX_THREADS=1 "$IOTAX" predict --dataset sim_b/dataset.csv \
  --model-file candidate.gbt --out cand_offline_b.csv | tee cand_b.log
PROD_ERR=$(error_pct prod_b.log)
CAND_ERR=$(error_pct cand_b.log)
awk -v p="$PROD_ERR" -v c="$CAND_ERR" 'BEGIN {exit !(c < p)}' \
  || { echo "FAIL: candidate ($CAND_ERR%) not better than production" \
              "($PROD_ERR%) post-shift"; exit 1; }
echo "ok: post-shift error $PROD_ERR% -> $CAND_ERR%"

echo "== shadow deployment: candidate beside production =="
SOCK="$WORK/online.sock"
rm -f ready.txt
"$IOTAX" serve --models model.gbt --shadow candidate.gbt \
  --socket "$SOCK" --ready-file ready.txt > serve.log 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 200); do
  [[ -f ready.txt ]] && break
  sleep 0.05
done
[[ -f ready.txt ]] || { echo "FAIL: daemon never became ready"; exit 1; }

echo "== promotion gate: refused before the shadow has scored traffic =="
PROMOTE_RC=0
"$IOTAX" promote --socket "$SOCK" --min-shadow 1 \
  > promote_early.log 2>&1 || PROMOTE_RC=$?
[[ $PROMOTE_RC -eq 1 ]] \
  || { echo "FAIL: premature promote exit $PROMOTE_RC (wanted refusal)"; exit 1; }
grep -q "promote: refused" promote_early.log \
  || { echo "FAIL: no refusal in promote_early.log"; exit 1; }

echo "== shadow divergence accounting is bit-exact vs offline =="
"$IOTAX" query --socket "$SOCK" --dataset sim_b/dataset.csv \
  --out served_prod_b.csv --shadow-out served_shadow_b.csv
cmp served_prod_b.csv prod_offline_b.csv \
  || { echo "FAIL: served production CSV differs from offline"; exit 1; }
cmp served_shadow_b.csv cand_offline_b.csv \
  || { echo "FAIL: shadow CSV differs from candidate offline"; exit 1; }
N_SHADOW=$(($(wc -l < served_shadow_b.csv) - 1))
echo "ok: $N_SHADOW shadow answers byte-identical to the candidate offline"

echo "== promote under concurrent query load =="
# Each pass is a separate repeat=1 client: values legitimately change
# across the swap, but every request must still get a real answer.
LOAD_RC_FILE="$WORK/load.rc"
(
  rc=0
  for _ in $(seq 1 6); do
    "$IOTAX" query --socket "$SOCK" --dataset sim_a/dataset.csv \
      --repeat 1 >> load.log 2>&1 || { rc=1; break; }
  done
  echo "$rc" > "$LOAD_RC_FILE"
) &
LOAD_PID=$!
sleep 0.2
"$IOTAX" promote --socket "$SOCK" --min-shadow "$N_SHADOW" | tee promote.log
grep -q "promote: ok" promote.log \
  || { echo "FAIL: promotion refused in promote.log"; exit 1; }
wait "$LOAD_PID"
[[ "$(cat "$LOAD_RC_FILE")" == "0" ]] \
  || { echo "FAIL: a query pass failed during the hot swap"; exit 1; }

echo "== post-promotion traffic is served by the candidate =="
"$IOTAX" query --socket "$SOCK" --dataset sim_b/dataset.csv \
  --out served_post.csv
cmp served_post.csv cand_offline_b.csv \
  || { echo "FAIL: post-promotion serving differs from candidate"; exit 1; }

echo "== rollback restores production under a fresh generation =="
"$IOTAX" promote --socket "$SOCK" --rollback | tee rollback.log
grep -q "rollback: ok" rollback.log \
  || { echo "FAIL: rollback refused"; exit 1; }
"$IOTAX" query --socket "$SOCK" --dataset sim_b/dataset.csv \
  --out served_rolled.csv
cmp served_rolled.csv prod_offline_b.csv \
  || { echo "FAIL: post-rollback serving differs from production"; exit 1; }

echo "== graceful drain: every admitted request was answered =="
kill -TERM "$DAEMON_PID"
DRAIN_RC=0
wait "$DAEMON_PID" || DRAIN_RC=$?
DAEMON_PID=""
[[ $DRAIN_RC -eq 0 ]] \
  || { echo "FAIL: daemon exit $DRAIN_RC after SIGTERM"; exit 1; }
cat serve.log
DRAIN_REQ=$(sed -n 's/serve: drained; \([0-9]*\) request(s).*/\1/p' serve.log)
DRAIN_RESP=$(sed -n 's/.*batch(es), \([0-9]*\) response(s).*/\1/p' serve.log)
[[ -n "$DRAIN_REQ" && "$DRAIN_REQ" == "$DRAIN_RESP" ]] \
  || { echo "FAIL: drain invariant broken ($DRAIN_REQ requests," \
              "$DRAIN_RESP responses)"; exit 1; }
grep -q "serve: shadow scored" serve.log \
  || { echo "FAIL: no shadow accounting in the drain summary"; exit 1; }
grep -q "promotion(s), 1 rollback(s)" serve.log \
  || { echo "FAIL: drain summary missing promotion/rollback counts"; exit 1; }

echo "online_smoke: PASS"
