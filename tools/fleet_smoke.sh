#!/usr/bin/env bash
# End-to-end fleet smoke: simulate -> train -> offline predict, then
# stand up a 2 groups x 2 replicas supervised fleet behind the router
# and push >= 1000 pipelined requests through `iotax query --fleet`
# while a chaos plan kill -9s one shard in each group mid-load.
# Demands: zero failed requests, a served CSV byte-identical to offline,
# supervisor restart counters matching the plan's ground truth, and a
# clean SIGTERM drain.
#
#   fleet_smoke.sh <path-to-iotax> <work-dir>
set -euo pipefail

IOTAX="$1"
WORK="$2"

rm -rf "$WORK"
mkdir -p "$WORK/shards"
cd "$WORK"

FLEET_PID=""
cleanup() {
  if [[ -n "$FLEET_PID" ]] && kill -0 "$FLEET_PID" 2>/dev/null; then
    kill -KILL "$FLEET_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

echo "== dataset + model =="
"$IOTAX" simulate --preset tiny --seed 7 --out .
"$IOTAX" train --dataset dataset.csv --model gbt \
  --params '{"n_estimators": 20, "max_depth": 4}' --out model.gbt

echo "== offline golden predictions =="
IOTAX_THREADS=1 "$IOTAX" predict --dataset dataset.csv \
  --model-file model.gbt --out offline.csv

N_JOBS=$(($(wc -l < offline.csv) - 1))
REPEAT=$(((1000 + N_JOBS - 1) / N_JOBS + 1))
N_REQ=$((N_JOBS * REPEAT))
echo "jobs=$N_JOBS repeat=$REPEAT ($N_REQ requests)"

# One kill per group, mid-load: ground truth is exactly 2 restarts.
K1=$((N_REQ / 4))
K2=$((N_REQ / 2))
cat > chaos.json <<EOF
{"events": [
  {"at_request": $K1, "action": "kill", "group": 0, "replica": 0},
  {"at_request": $K2, "action": "kill", "group": 1, "replica": 1}]}
EOF

echo "== fleet up (2 groups x 2 replicas, chaos armed) =="
"$IOTAX" fleet --models model.gbt --socket "$WORK/router.sock" \
  --shard-dir "$WORK/shards" --groups 2 --replicas 2 \
  --chaos-plan chaos.json --ready-file ready.txt \
  > fleet.log 2>&1 &
FLEET_PID=$!

for _ in $(seq 1 600); do
  [[ -f ready.txt ]] && break
  kill -0 "$FLEET_PID" 2>/dev/null \
    || { echo "FAIL: fleet died during startup"; cat fleet.log; exit 1; }
  sleep 0.05
done
[[ -f ready.txt ]] || { echo "FAIL: fleet never became ready"; exit 1; }
grep -q "chaos plan armed: 2 event(s), 2 expected restart(s)" fleet.log \
  || { echo "FAIL: chaos plan not armed"; cat fleet.log; exit 1; }

"$IOTAX" query --socket "$WORK/router.sock" --ping

echo "== $N_REQ requests through the router while shards die =="
"$IOTAX" query --socket "$WORK/router.sock" --fleet --dataset dataset.csv \
  --repeat "$REPEAT" --out served.csv | tee query.log
grep -q "0 failed request(s)" query.log \
  || { echo "FAIL: query reported failed requests"; exit 1; }

cmp offline.csv served.csv \
  || { echo "FAIL: served CSV differs from offline under chaos"; exit 1; }
echo "ok: $N_REQ served predictions byte-identical to offline"

# Both killed shards must come back: each shard log gains a second
# startup banner once the supervisor's respawn is listening again.
echo "== waiting for the supervisor to restart both killed shards =="
for _ in $(seq 1 300); do
  A=$(grep -c "listening on" shards/g0r0.log || true)
  B=$(grep -c "listening on" shards/g1r1.log || true)
  [[ "$A" -ge 2 && "$B" -ge 2 ]] && break
  sleep 0.1
done
[[ "$A" -eq 2 && "$B" -eq 2 ]] \
  || { echo "FAIL: expected exactly 2 spawns per killed shard," \
            "got g0r0=$A g1r1=$B"; exit 1; }

echo "== SIGTERM drain =="
kill -TERM "$FLEET_PID"
rc=0
wait "$FLEET_PID" || rc=$?
FLEET_PID=""
[[ $rc -eq 0 ]] || { echo "FAIL: fleet exit $rc after SIGTERM"; cat fleet.log; exit 1; }

# Counter-exact ground truth from the chaos plan.
grep -q "fleet: drained;" fleet.log \
  || { echo "FAIL: no drain summary"; cat fleet.log; exit 1; }
grep "fleet: drained;" fleet.log | grep -q "0 error(s), 0 degraded" \
  || { echo "FAIL: drain summary shows client-visible failures"; \
       cat fleet.log; exit 1; }
grep -q "chaos fired 2 kill(s), 0 hang(s), 0 drop(s), 0 delay(s)" fleet.log \
  || { echo "FAIL: chaos kill count != plan"; cat fleet.log; exit 1; }
grep "supervisor spawned" fleet.log \
  | grep -q "spawned 6, restarted 2 (" \
  || { echo "FAIL: restart counters != plan ground truth"; \
       cat fleet.log; exit 1; }
grep "supervisor spawned" fleet.log | grep -q "0 gave up" \
  || { echo "FAIL: a shard exhausted its restart budget"; \
       cat fleet.log; exit 1; }

echo "fleet_smoke: PASS"
