# End-to-end corruption smoke (the `iotax inject | iotax audit` pair):
# simulate a tiny archive, corrupt it with a known fault plan, and check
# that the audit's quarantine counts match the injector's ground truth
# exactly, that strict mode refuses the corrupt archive but accepts the
# clean one, and that a zero-rate plan is a byte-identical passthrough.
# Invoked as
#   cmake -DIOTAX_CLI=<path> -DWORK_DIR=<scratch> -P corruption_smoke.cmake
# with IOTAX_SCALE=0.1 in the environment (set by the add_test wiring).
foreach(var IOTAX_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "corruption_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run label expect_rc)
  execute_process(
    COMMAND "${IOTAX_CLI}" ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(expect_rc STREQUAL "zero" AND NOT rc EQUAL 0)
    message(FATAL_ERROR "corruption_smoke: '${label}' failed (rc=${rc}): "
                        "${out}${err}")
  endif()
  if(expect_rc STREQUAL "nonzero" AND rc EQUAL 0)
    message(FATAL_ERROR "corruption_smoke: '${label}' exited 0, expected "
                        "failure")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
  set(last_err "${err}" PARENT_SCOPE)
  message(STATUS "corruption_smoke: ok '${label}' (rc=${rc})")
endfunction()

run("simulate" zero simulate --preset tiny --seed 7 --out "${WORK_DIR}")

set(plan "{\"seed\": 21, \"truncate\": 0.08, \"mangle\": 0.05,\
 \"drop\": 0.03, \"duplicate\": 0.05, \"bad_throughput\": 0.05,\
 \"clock_skew\": 0.1, \"reorder\": 0.1}")

foreach(format text binary)
  if(format STREQUAL "binary")
    set(archive "${WORK_DIR}/jobs.darshan.bin")
    set(fmt_flag "--binary")
  else()
    set(archive "${WORK_DIR}/jobs.darshan.txt")
    set(fmt_flag "")
  endif()

  # Corrupt per the plan, then audit against the saved ground truth.
  run("inject ${format}" zero inject --in "${archive}" ${fmt_flag}
      --plan-json "${plan}" --out "${WORK_DIR}/corrupt.${format}"
      --report "${WORK_DIR}/truth.${format}.json")
  run("audit ${format}" zero audit
      --archive "${WORK_DIR}/corrupt.${format}" ${fmt_flag}
      --expect "${WORK_DIR}/truth.${format}.json"
      --quarantine-out "${WORK_DIR}/quarantine.${format}.json")
  string(FIND "${last_out}" "matches injection ground truth" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "corruption_smoke: audit ${format} did not confirm "
                        "the ground truth: ${last_out}")
  endif()
  run("checkjson ${format}" zero checkjson
      "${WORK_DIR}/truth.${format}.json"
      "${WORK_DIR}/quarantine.${format}.json")

  # Strict mode: nonzero on the corrupt archive, zero on the clean one.
  run("strict corrupt ${format}" nonzero audit
      --archive "${WORK_DIR}/corrupt.${format}" ${fmt_flag} --mode strict)
  string(FIND "${last_err}" "strict mode" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "corruption_smoke: strict audit ${format} gave no "
                        "diagnostic: ${last_err}")
  endif()
  run("strict clean ${format}" zero audit --archive "${archive}" ${fmt_flag}
      --mode strict)

  # A zero-rate plan must reproduce the input byte for byte.
  run("passthrough ${format}" zero inject --in "${archive}" ${fmt_flag}
      --out "${WORK_DIR}/passthrough.${format}")
  file(READ "${archive}" clean_hex HEX)
  file(READ "${WORK_DIR}/passthrough.${format}" pass_hex HEX)
  if(NOT clean_hex STREQUAL pass_hex)
    message(FATAL_ERROR "corruption_smoke: zero-rate ${format} passthrough "
                        "is not byte-identical")
  endif()
  message(STATUS "corruption_smoke: ok 'passthrough bytes ${format}'")
endforeach()

message(STATUS "corruption_smoke: ok")
