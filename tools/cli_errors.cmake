# CLI error-path contract: every bad invocation must exit nonzero and
# print a one-line diagnostic to stderr, never crash or exit 0. Invoked as
#   cmake -DIOTAX_CLI=<path-to-iotax> -DWORK_DIR=<scratch> -P cli_errors.cmake
foreach(var IOTAX_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_errors: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# expect_fail(<label> <stderr-substring> <arg...>): the invocation must
# exit nonzero and say why on stderr.
function(expect_fail label needle)
  execute_process(
    COMMAND "${IOTAX_CLI}" ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "cli_errors: '${label}' exited 0, expected failure")
  endif()
  if(err STREQUAL "")
    message(FATAL_ERROR "cli_errors: '${label}' failed silently "
                        "(rc=${rc}, no stderr diagnostic)")
  endif()
  if(NOT needle STREQUAL "")
    string(FIND "${err}" "${needle}" at)
    if(at EQUAL -1)
      message(FATAL_ERROR "cli_errors: '${label}' stderr missing "
                          "'${needle}'; got: ${err}")
    endif()
  endif()
  message(STATUS "cli_errors: ok '${label}' (rc=${rc})")
endfunction()

# No command at all / unknown command.
expect_fail("no command" "usage:")
expect_fail("unknown command" "unknown command" frobnicate)

# Unknown flag (every command validates its flag set).
expect_fail("unknown flag" "" simulate --preset tiny
            --out "${WORK_DIR}" --bogus-flag 1)

# Bad parameter values.
expect_fail("bad preset" "unknown preset" simulate --preset nope
            --out "${WORK_DIR}")
expect_fail("bad audit mode" "--mode must be" audit
            --archive "${WORK_DIR}/missing.log" --mode bogus)

# Missing input files.
expect_fail("missing dataset" "" taxonomy
            --dataset "${WORK_DIR}/does_not_exist.csv")
expect_fail("missing archive" "" parse
            --archive "${WORK_DIR}/does_not_exist.log")
expect_fail("missing inject input" "" inject
            --in "${WORK_DIR}/does_not_exist.log"
            --out "${WORK_DIR}/out.log")

# Malformed fault plans.
expect_fail("conflicting plan flags" "mutually exclusive" inject
            --in "${WORK_DIR}/x.log" --out "${WORK_DIR}/y.log"
            --plan "${WORK_DIR}/p.json" --plan-json "{}")
expect_fail("plan rate out of range" "fault plan" inject
            --in "${WORK_DIR}/x.log" --out "${WORK_DIR}/y.log"
            --plan-json "{\"mangle\": 2.0}")
expect_fail("plan unknown key" "unknown key" inject
            --in "${WORK_DIR}/x.log" --out "${WORK_DIR}/y.log"
            --plan-json "{\"mange\": 0.1}")
expect_fail("plan not json" "" inject
            --in "${WORK_DIR}/x.log" --out "${WORK_DIR}/y.log"
            --plan-json "not json at all")

# Bad model checkpoints: the diagnostic must carry the file path, the
# offending token, and the set of valid magics (satellite of the serve
# work: operators see *what* was wrong, not just "load failed").
file(WRITE "${WORK_DIR}/garbage.model" "iotax-frobnicator 1\n")
expect_fail("predict garbage model path" "garbage.model" predict
            --dataset "${WORK_DIR}/missing.csv"
            --model-file "${WORK_DIR}/garbage.model")
expect_fail("predict garbage model token" "iotax-frobnicator" predict
            --dataset "${WORK_DIR}/missing.csv"
            --model-file "${WORK_DIR}/garbage.model")
expect_fail("predict garbage model magics" "known model magics" predict
            --dataset "${WORK_DIR}/missing.csv"
            --model-file "${WORK_DIR}/garbage.model")
expect_fail("predict missing model" "cannot open model file" predict
            --dataset "${WORK_DIR}/missing.csv"
            --model-file "${WORK_DIR}/no_such.model")

# Serve/query flag contracts.
expect_fail("serve without models" "--models" serve
            --socket "${WORK_DIR}/s.sock")
expect_fail("serve garbage model" "known model magics" serve
            --models "${WORK_DIR}/garbage.model"
            --socket "${WORK_DIR}/s.sock")
# A loadable checkpoint gets serve past the registry and onto the
# listener contract.
file(WRITE "${WORK_DIR}/mean.model" "iotax-mean 1\nmean 2.5\n")
expect_fail("serve without listener" "--socket" serve
            --models "${WORK_DIR}/mean.model")
expect_fail("query without target" "need --socket or --port" query --ping)
expect_fail("query dead socket" "cannot connect" query --ping
            --socket "${WORK_DIR}/nobody_home.sock")

# Fleet contracts: bad topology and unstartable shards must refuse with
# a diagnostic, never come up half-degraded.
file(MAKE_DIRECTORY "${WORK_DIR}/shards")
expect_fail("fleet zero replicas" "--replicas must be" fleet
            --models "${WORK_DIR}/mean.model"
            --socket "${WORK_DIR}/f.sock"
            --shard-dir "${WORK_DIR}/shards" --replicas 0)
expect_fail("fleet duplicate shard ports" "duplicate shard ports" fleet
            --models "${WORK_DIR}/mean.model"
            --socket "${WORK_DIR}/f.sock"
            --shard-dir "${WORK_DIR}/shards"
            --groups 1 --replicas 2 --shard-ports "7001,7001")
# Every shard exec fails on the unloadable checkpoint; startup is
# all-or-nothing, so zero healthy shards is a startup error.
expect_fail("fleet zero healthy shards" "exited during startup" fleet
            --models "${WORK_DIR}/garbage.model"
            --socket "${WORK_DIR}/f.sock"
            --shard-dir "${WORK_DIR}/shards"
            --groups 1 --replicas 2)

# Malformed expectation file for audit.
file(WRITE "${WORK_DIR}/empty.log" "")
file(WRITE "${WORK_DIR}/bad_truth.json" "{]")
expect_fail("malformed expect report" "" audit
            --archive "${WORK_DIR}/empty.log"
            --expect "${WORK_DIR}/bad_truth.json")

message(STATUS "cli_errors: ok")
