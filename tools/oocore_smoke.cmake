# End-to-end out-of-core smoke (the `iotax pack | --store` pair):
# simulate a tiny system, pack the dataset into a column store, and check
# that the taxonomy report over the store is byte-identical to the CSV
# path with the out-of-core knobs forced (tiny chunks, spill-everything)
# at IOTAX_THREADS=1 and 4; that sharded archives pack to byte-identical
# stores; and that `pack --check` / `audit --store` refuse a corrupted
# store with a nonzero exit. Invoked as
#   cmake -DIOTAX_CLI=<path> -DWORK_DIR=<scratch> -P oocore_smoke.cmake
# with IOTAX_SCALE=0.1 in the environment (set by the add_test wiring).
foreach(var IOTAX_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "oocore_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run label expect_rc)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(expect_rc STREQUAL "zero" AND NOT rc EQUAL 0)
    message(FATAL_ERROR "oocore_smoke: '${label}' failed (rc=${rc}): "
                        "${out}${err}")
  endif()
  if(expect_rc STREQUAL "nonzero" AND rc EQUAL 0)
    message(FATAL_ERROR "oocore_smoke: '${label}' exited 0, expected "
                        "failure")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
  message(STATUS "oocore_smoke: ok '${label}' (rc=${rc})")
endfunction()

function(expect_identical label a b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "oocore_smoke: '${label}': ${a} and ${b} differ — "
                        "the out-of-core path is not bit-identical")
  endif()
  message(STATUS "oocore_smoke: ok '${label}' (byte-identical)")
endfunction()

# Tiny chunks + spill-everything force every out-of-core code path even
# on a smoke-sized dataset.
set(ooc_env ${CMAKE_COMMAND} -E env IOTAX_OOC_CHUNK_ROWS=64
    IOTAX_OOC_SPILL_BYTES=0)

run("simulate" zero "${IOTAX_CLI}" simulate --preset tiny --seed 7
    --out "${WORK_DIR}")
run("simulate shards" zero "${IOTAX_CLI}" simulate --preset tiny --seed 7
    --out "${WORK_DIR}/sharded" --shards 3 --no-dataset)

# CSV -> store, verified.
run("pack dataset" zero "${IOTAX_CLI}" pack
    --dataset "${WORK_DIR}/dataset.csv" --out "${WORK_DIR}/store")
run("pack check" zero "${IOTAX_CLI}" pack --check
    --store "${WORK_DIR}/store")

# Taxonomy over the store must match the CSV path byte-for-byte at both
# thread counts, with the out-of-core knobs forced.
run("taxonomy csv" zero ${CMAKE_COMMAND} -E env IOTAX_THREADS=1
    "${IOTAX_CLI}" taxonomy --dataset "${WORK_DIR}/dataset.csv" --no-uq
    --report "${WORK_DIR}/report_csv.csv")
foreach(threads 1 4)
  run("taxonomy store t${threads}" zero ${ooc_env}
      IOTAX_THREADS=${threads} "${IOTAX_CLI}" taxonomy
      --store "${WORK_DIR}/store" --no-uq
      --report "${WORK_DIR}/report_store_t${threads}.csv")
  expect_identical("report t${threads}" "${WORK_DIR}/report_csv.csv"
                   "${WORK_DIR}/report_store_t${threads}.csv")
endforeach()

# Sharded archives pack to the same bytes as the single archive.
run("pack one" zero "${IOTAX_CLI}" pack
    --logs "${WORK_DIR}/jobs.darshan.bin" --binary
    --out "${WORK_DIR}/store_one")
run("pack shards" zero ${CMAKE_COMMAND} -E env IOTAX_THREADS=4
    "${IOTAX_CLI}" pack
    --logs "${WORK_DIR}/sharded/jobs.darshan.0.bin,${WORK_DIR}/sharded/jobs.darshan.1.bin,${WORK_DIR}/sharded/jobs.darshan.2.bin"
    --binary --out "${WORK_DIR}/store_shards")
expect_identical("sharded manifest" "${WORK_DIR}/store_one/manifest.json"
                 "${WORK_DIR}/store_shards/manifest.json")
expect_identical("sharded column" "${WORK_DIR}/store_one/c0.f64"
                 "${WORK_DIR}/store_shards/c0.f64")

# Corruption: a flipped byte must fail pack --check and audit --store
# with a nonzero exit, and a missing store must not crash anything.
file(READ "${WORK_DIR}/store/manifest.json" manifest)
string(REPLACE "iotax-store" "iotax-wrong" bad_manifest "${manifest}")
file(WRITE "${WORK_DIR}/store/manifest.json" "${bad_manifest}")
run("check bad format" nonzero "${IOTAX_CLI}" pack --check
    --store "${WORK_DIR}/store")
file(WRITE "${WORK_DIR}/store/manifest.json" "${manifest}")
run("check restored" zero "${IOTAX_CLI}" pack --check
    --store "${WORK_DIR}/store")

run("audit store ok" zero "${IOTAX_CLI}" audit --store "${WORK_DIR}/store")
file(WRITE "${WORK_DIR}/store/c1.f64" "short")
run("check truncated column" nonzero "${IOTAX_CLI}" pack --check
    --store "${WORK_DIR}/store")
run("audit truncated column" nonzero "${IOTAX_CLI}" audit
    --store "${WORK_DIR}/store"
    --quarantine-out "${WORK_DIR}/store_quarantine.json")
run("checkjson quarantine" zero "${IOTAX_CLI}" checkjson
    "${WORK_DIR}/store_quarantine.json")
run("open missing store" nonzero "${IOTAX_CLI}" pack --check
    --store "${WORK_DIR}/no_such_store")

message(STATUS "oocore_smoke: PASS")
