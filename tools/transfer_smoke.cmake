# Cross-cluster transfer smoke (ctest label "cli"): run the transfer
# litmus on a cross-platform preset pair and on the new bb/flash pair,
# letting the binary's own --check assert against sim ground truth (the
# OoD estimate must agree with the oracle, the application share must
# dominate, the gap must be positive). Then pin determinism: the JSON
# report must be byte-identical at IOTAX_THREADS=1 and 4. Invoked as
#   cmake -DIOTAX_CLI=<path-to-iotax> -DWORK_DIR=<scratch> -P transfer_smoke.cmake
# with IOTAX_SCALE=0.1 in the environment (set by the add_test wiring).
foreach(var IOTAX_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "transfer_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# theta:cori at 1 thread — the ground-truth agreement gate lives in
# --check so this smoke never parses report text.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env IOTAX_THREADS=1
          "${IOTAX_CLI}" taxonomy --transfer theta:cori --check
          --report "${WORK_DIR}/transfer_t1.json"
  OUTPUT_FILE "${WORK_DIR}/transfer_t1.log"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "transfer_smoke: theta:cori --check failed (rc=${rc}); see "
          "${WORK_DIR}/transfer_t1.log")
endif()

# Same pair at 4 threads: the litmus is deterministic in the thread
# count, so the reports must be byte-identical.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env IOTAX_THREADS=4
          "${IOTAX_CLI}" taxonomy --transfer theta:cori --check
          --report "${WORK_DIR}/transfer_t4.json"
  OUTPUT_FILE "${WORK_DIR}/transfer_t4.log"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "transfer_smoke: theta:cori --check failed at 4 threads (rc=${rc})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/transfer_t1.json" "${WORK_DIR}/transfer_t4.json"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "transfer_smoke: transfer report differs across thread counts")
endif()

# The report must be valid JSON for the bench/CI tooling that reads it.
execute_process(
  COMMAND "${IOTAX_CLI}" checkjson "${WORK_DIR}/transfer_t1.json"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "transfer_smoke: transfer report is invalid JSON")
endif()

# The new platform pair in both directions: the litmus must hold on the
# burst-buffer-heavy and all-flash presets, not just the paper's two.
foreach(pair bb:flash flash:bb)
  execute_process(
    COMMAND "${IOTAX_CLI}" taxonomy --transfer ${pair} --check
    OUTPUT_FILE "${WORK_DIR}/transfer_${pair}.log"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "transfer_smoke: ${pair} --check failed (rc=${rc})")
  endif()
endforeach()

# Unknown presets and malformed specs must fail loudly, not fall back.
execute_process(
  COMMAND "${IOTAX_CLI}" taxonomy --transfer theta
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "transfer_smoke: malformed --transfer spec accepted")
endif()

message(STATUS "transfer_smoke: ok")
