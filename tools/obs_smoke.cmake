# Observability smoke test (ctest label "obs"): simulate a tiny dataset,
# run the full taxonomy with --metrics-out/--trace-out, and check that
# both emitted files parse as JSON via `iotax checkjson`. Invoked as
#   cmake -DIOTAX_CLI=<path-to-iotax> -DWORK_DIR=<scratch> -P obs_smoke.cmake
# with IOTAX_SCALE=0.1 in the environment (set by the add_test wiring).
foreach(var IOTAX_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "obs_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${IOTAX_CLI}" simulate --preset tiny --seed 7 --out "${WORK_DIR}"
          --trace-out "${WORK_DIR}/sim_trace.json"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_smoke: iotax simulate failed (rc=${rc})")
endif()

file(READ "${WORK_DIR}/sim_trace.json" sim_trace)
foreach(span sim.simulate sim.catalog sim.schedule sim.job_records)
  string(FIND "${sim_trace}" "\"${span}\"" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
            "obs_smoke: span '${span}' missing from sim_trace.json")
  endif()
endforeach()

execute_process(
  COMMAND "${IOTAX_CLI}" taxonomy --dataset "${WORK_DIR}/dataset.csv"
          --metrics-out "${WORK_DIR}/metrics.json"
          --trace-out "${WORK_DIR}/trace.json"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_smoke: iotax taxonomy failed (rc=${rc})")
endif()

execute_process(
  COMMAND "${IOTAX_CLI}" checkjson "${WORK_DIR}/metrics.json"
          "${WORK_DIR}/trace.json" "${WORK_DIR}/sim_trace.json"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_smoke: emitted observability JSON is invalid "
                      "(rc=${rc})")
endif()

# The taxonomy trace must cover all five litmus steps plus model fits.
file(READ "${WORK_DIR}/trace.json" trace)
foreach(span taxonomy.run taxonomy.baseline taxonomy.app_bound
        taxonomy.search taxonomy.system_bound taxonomy.ood
        taxonomy.noise_bound gbt.fit gbt.predict search.trial
        ensemble.fit mlp.fit)
  string(FIND "${trace}" "\"${span}\"" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "obs_smoke: span '${span}' missing from trace.json")
  endif()
endforeach()

message(STATUS "obs_smoke: ok")
