# Bench regression gate: compare a fresh bench JSON against the
# committed baseline and fail the job when the measured path regresses.
# Invoked as
#   cmake -DCURRENT=<BENCH_pipeline.json> -DBASELINE=<baseline.json> \
#         [-DBYTES_TOL=0.10] [-DWALL_TOL=1.5] -P check_bench.cmake
# or, for the SIMD kernel A/B report (bench_perf_kernels --kernels_ab):
#   cmake -DKIND=kernels -DCURRENT=<BENCH_kernels.json> \
#         -DBASELINE=<baseline.json> [-DMIN_SPEEDUP_HIST=1.05] \
#         [-DMIN_SPEEDUP_TRAVERSAL=1.2] [-DMIN_SPEEDUP_GEMM=1.2] \
#         -P check_bench.cmake
#
# KIND=pipeline (the default) gates:
#   * reports_bit_identical must be true — a correctness bit, no tolerance.
#   * view.peak_materialized_bytes may grow at most BYTES_TOL (default
#     +10%) over baseline. Peak footprint is deterministic for a fixed
#     IOTAX_SCALE, so the tolerance only absorbs allocator rounding; a
#     real regression (a new materializing copy) jumps far past it.
#   * view.wall_ms may grow at most WALL_TOL times baseline (default
#     1.5x). Wall time on shared CI runners is noisy, so the gate is
#     generous — it catches the pipeline going quadratic, not a wobble.
# KIND=kernels gates:
#   * identical must be true — the AVX2 tier produced bit-different
#     output from the scalar tier somewhere. No tolerance.
#   * single-thread speedup floors per kernel, but only when the report
#     says avx2_active — on hardware or builds without the AVX2 tier the
#     A/B degenerates to scalar/scalar and the floors are skipped with a
#     warning. Floors are deliberately far below the measured speedups:
#     they catch the vector path silently rotting back to scalar, not a
#     noisy-runner wobble.
# KIND=oocore gates the out-of-core store A/B (bit-identity, peak bytes,
# pack+train wall). KIND=serve gates the fleet A/B (bench_serve --fleet):
# routed-vs-direct bit-identity and zero failed requests are hard bits,
# and the routed p99 must stay inside P99_TOL x direct + P99_SLACK_MS.
# KIND=workloads gates bench_workloads: classifier round-trip/adapter
# bit-identity and transfer attribution are hard bits, burst AUC has a
# MIN_BURST_AUC floor, and wall time has the usual WALL_TOL envelope.
# The baseline (bench/baselines/) must be regenerated whenever the bench
# workload changes shape; the gate requires matching job/row counts so a
# stale baseline fails loudly instead of gating garbage.
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

foreach(var CURRENT BASELINE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_bench: -D${var}=... is required")
  endif()
  if(NOT EXISTS "${${var}}")
    message(FATAL_ERROR "check_bench: ${var} file '${${var}}' not found")
  endif()
endforeach()
if(NOT DEFINED BYTES_TOL)
  set(BYTES_TOL 0.10)
endif()
if(NOT DEFINED WALL_TOL)
  set(WALL_TOL 1.5)
endif()

file(READ "${CURRENT}" current_json)
file(READ "${BASELINE}" baseline_json)

# get_field(<out> <json> <path...>): string(JSON GET) with a fatal error
# instead of silent NOTFOUND.
function(get_field out json)
  string(JSON value ERROR_VARIABLE err GET "${json}" ${ARGN})
  if(NOT err STREQUAL "NOTFOUND")
    string(REPLACE ";" "." dotted "${ARGN}")
    message(FATAL_ERROR "check_bench: cannot read ${dotted}: ${err}")
  endif()
  set(${out} "${value}" PARENT_SCOPE)
endfunction()

# to_millis(<out> <decimal>): "0.10" -> 100, "1.5" -> 1500, "2" -> 2000.
# cmake's math(EXPR) is integer-only, so tolerances are scaled by 1000.
function(to_millis out decimal)
  if(decimal MATCHES "^([0-9]*)\\.([0-9]+)$")
    set(int_part "${CMAKE_MATCH_1}")
    if(int_part STREQUAL "")
      set(int_part 0)
    endif()
    string(SUBSTRING "${CMAKE_MATCH_2}000" 0 3 frac3)
    math(EXPR millis "${int_part} * 1000 + ${frac3}")
  elseif(decimal MATCHES "^[0-9]+$")
    math(EXPR millis "${decimal} * 1000")
  else()
    message(FATAL_ERROR "check_bench: '${decimal}' is not a decimal")
  endif()
  set(${out} "${millis}" PARENT_SCOPE)
endfunction()

# truncate(<out> <decimal>): drop the fractional part ("7776.3" -> 7776).
function(truncate out decimal)
  string(REGEX REPLACE "\\..*$" "" int_part "${decimal}")
  if(int_part STREQUAL "")
    set(int_part 0)
  endif()
  set(${out} "${int_part}" PARENT_SCOPE)
endfunction()

if(NOT DEFINED KIND)
  set(KIND pipeline)
endif()

if(KIND STREQUAL "kernels")
  # Comparable workloads only.
  get_field(cur_rows "${current_json}" rows)
  get_field(base_rows "${baseline_json}" rows)
  if(NOT cur_rows EQUAL base_rows)
    message(FATAL_ERROR "check_bench: row count ${cur_rows} != baseline "
                        "${base_rows}; regenerate bench/baselines/ for the "
                        "new workload")
  endif()

  # Correctness bit: every kernel's AVX2 tier matched the scalar tier
  # exactly, across both thread counts. string(JSON) renders true as "ON".
  get_field(identical "${current_json}" identical)
  if(NOT identical)
    message(FATAL_ERROR "check_bench: kernel tiers are not bit-identical — "
                        "an AVX2 kernel diverged from the scalar reference")
  endif()
  message(STATUS "check_bench: kernel tiers bit-identical ok")

  # Speedup floors, single-thread numbers only (less scheduler noise).
  # Only meaningful when the AVX2 tier actually ran.
  get_field(avx2_active "${current_json}" avx2_active)
  if(NOT avx2_active)
    message(WARNING "check_bench: AVX2 tier inactive in this report; "
                    "skipping speedup floors (scalar/scalar A/B)")
    message(STATUS "check_bench: PASS")
    return()
  endif()
  if(NOT DEFINED MIN_SPEEDUP_HIST)
    set(MIN_SPEEDUP_HIST 1.05)
  endif()
  if(NOT DEFINED MIN_SPEEDUP_TRAVERSAL)
    set(MIN_SPEEDUP_TRAVERSAL 1.2)
  endif()
  if(NOT DEFINED MIN_SPEEDUP_GEMM)
    set(MIN_SPEEDUP_GEMM 1.2)
  endif()
  foreach(pair "hist;${MIN_SPEEDUP_HIST}"
               "traversal;${MIN_SPEEDUP_TRAVERSAL}"
               "gemm;${MIN_SPEEDUP_GEMM}")
    list(GET pair 0 kernel)
    list(GET pair 1 floor)
    get_field(speedup "${current_json}" ${kernel} t1 speedup)
    to_millis(speedup_millis "${speedup}")
    to_millis(floor_millis "${floor}")
    if(speedup_millis LESS floor_millis)
      message(FATAL_ERROR "check_bench: ${kernel} AVX2 speedup ${speedup}x "
                          "fell below the ${floor}x floor — the vector "
                          "path stopped paying for itself")
    endif()
    message(STATUS "check_bench: ${kernel} speedup ${speedup}x >= "
                   "${floor}x ok")
  endforeach()
  message(STATUS "check_bench: PASS")
  return()
endif()

if(KIND STREQUAL "oocore")
  # Out-of-core store A/B (bench_oocore). Gates:
  #   * bit_identical must be true — the store-backed, spilled-code
  #     training path produced a byte-different model or predictions
  #     from the in-RAM path. No tolerance.
  #   * ooc.peak_materialized_bytes may grow at most BYTES_TOL over
  #     baseline: the whole point of the store is that training heap
  #     stays bounded by the chunk budget, so a new materializing copy
  #     in the streaming path jumps far past the tolerance.
  #   * ooc pack+train wall time may grow at most WALL_TOL times
  #     baseline (generous, catches algorithmic regressions only).
  get_field(cur_rows "${current_json}" rows)
  get_field(base_rows "${baseline_json}" rows)
  if(NOT cur_rows EQUAL base_rows)
    message(FATAL_ERROR "check_bench: row count ${cur_rows} != baseline "
                        "${base_rows}; regenerate bench/baselines/ for the "
                        "new workload")
  endif()

  get_field(identical "${current_json}" bit_identical)
  if(NOT identical)
    message(FATAL_ERROR "check_bench: bit_identical is '${identical}' — "
                        "the out-of-core path diverged from the in-RAM "
                        "path")
  endif()
  message(STATUS "check_bench: out-of-core path bit-identical ok")

  get_field(cur_peak "${current_json}" ooc peak_materialized_bytes)
  get_field(base_peak "${baseline_json}" ooc peak_materialized_bytes)
  to_millis(bytes_tol_millis "${BYTES_TOL}")
  math(EXPR peak_limit
       "${base_peak} + ${base_peak} * ${bytes_tol_millis} / 1000")
  if(cur_peak GREATER peak_limit)
    message(FATAL_ERROR "check_bench: out-of-core peak materialized bytes "
                        "regressed: ${cur_peak} > limit ${peak_limit} "
                        "(baseline ${base_peak}, tol +${BYTES_TOL})")
  endif()
  message(STATUS "check_bench: ooc peak bytes ${cur_peak} <= ${peak_limit} "
                 "(baseline ${base_peak}) ok")

  get_field(cur_pack "${current_json}" ooc pack_ms)
  get_field(cur_train "${current_json}" ooc train_ms)
  get_field(base_pack "${baseline_json}" ooc pack_ms)
  get_field(base_train "${baseline_json}" ooc train_ms)
  to_millis(wall_tol_millis "${WALL_TOL}")
  truncate(cur_pack_int "${cur_pack}")
  truncate(cur_train_int "${cur_train}")
  truncate(base_pack_int "${base_pack}")
  truncate(base_train_int "${base_train}")
  math(EXPR cur_wall_int "${cur_pack_int} + ${cur_train_int}")
  math(EXPR base_wall_int "${base_pack_int} + ${base_train_int}")
  math(EXPR wall_limit "${base_wall_int} * ${wall_tol_millis} / 1000")
  if(cur_wall_int GREATER wall_limit)
    message(FATAL_ERROR "check_bench: out-of-core pack+train wall time "
                        "regressed: ${cur_wall_int} ms > limit "
                        "${wall_limit} ms (baseline ${base_wall_int} ms, "
                        "tol ${WALL_TOL}x)")
  endif()
  message(STATUS "check_bench: ooc wall ${cur_wall_int} ms <= "
                 "${wall_limit} ms (baseline ${base_wall_int} ms) ok")
  message(STATUS "check_bench: PASS")
  return()
endif()

if(KIND STREQUAL "serve")
  # Fleet A/B (bench_serve --fleet). Gates:
  #   * fleet.bit_identical must be true — the routed answers diverged
  #     from the direct daemon somewhere. No tolerance.
  #   * fleet.failed_requests must be 0 — the mid-run kill -9 leaked a
  #     client-visible error past the retry/failover machinery.
  #   * routed p99 <= direct p99 * P99_TOL + P99_SLACK_MS, both measured
  #     in this run so runner speed cancels out. The multiplier bounds
  #     the steady-state router hop; the absolute slack absorbs the one
  #     failover blip the kill injects into the tail.
  if(NOT DEFINED P99_TOL)
    set(P99_TOL 5)
  endif()
  if(NOT DEFINED P99_SLACK_MS)
    set(P99_SLACK_MS 100)
  endif()

  get_field(cur_req "${current_json}" fleet requests)
  get_field(base_req "${baseline_json}" fleet requests)
  if(NOT cur_req EQUAL base_req)
    message(FATAL_ERROR "check_bench: fleet request count ${cur_req} != "
                        "baseline ${base_req}; regenerate bench/baselines/ "
                        "for the new workload")
  endif()

  get_field(identical "${current_json}" fleet bit_identical)
  if(NOT identical)
    message(FATAL_ERROR "check_bench: fleet bit_identical is '${identical}' "
                        "— routed answers diverged from the direct daemon")
  endif()
  message(STATUS "check_bench: fleet routed path bit-identical ok")

  get_field(failed "${current_json}" fleet failed_requests)
  if(NOT failed EQUAL 0)
    message(FATAL_ERROR "check_bench: fleet leaked ${failed} failed "
                        "request(s) past failover during the shard kill")
  endif()
  get_field(restarts "${current_json}" fleet restarts)
  if(restarts LESS 1)
    message(FATAL_ERROR "check_bench: fleet restarts is ${restarts} — the "
                        "chaos kill never happened, the A/B is vacuous")
  endif()
  message(STATUS "check_bench: fleet survived the kill "
                 "(0 failed, ${restarts} restart(s)) ok")

  get_field(direct_p99 "${current_json}" fleet direct p99_ms)
  get_field(routed_p99 "${current_json}" fleet routed p99_ms)
  to_millis(direct_p99_mil "${direct_p99}")
  to_millis(routed_p99_mil "${routed_p99}")
  math(EXPR p99_limit_mil
       "${direct_p99_mil} * ${P99_TOL} + ${P99_SLACK_MS} * 1000")
  if(routed_p99_mil GREATER p99_limit_mil)
    message(FATAL_ERROR "check_bench: routed p99 ${routed_p99} ms blew the "
                        "failover envelope (direct ${direct_p99} ms, limit "
                        "${P99_TOL}x + ${P99_SLACK_MS} ms)")
  endif()
  message(STATUS "check_bench: routed p99 ${routed_p99} ms within "
                 "${P99_TOL}x + ${P99_SLACK_MS} ms of direct "
                 "${direct_p99} ms ok")
  message(STATUS "check_bench: PASS")
  return()
endif()

if(KIND STREQUAL "workloads")
  # Workload A/B (bench_workloads). Gates:
  #   * bit_identical must be true — the classifier checkpoint stopped
  #     round-tripping bit-exactly, or the threshold adapter diverged
  #     from the logistic labels. No tolerance.
  #   * transfer.attribution_ok must be true — the litmus stopped
  #     attributing the transfer gap correctly (non-positive gap, the
  #     application class no longer dominant, or the OoD estimate
  #     disagreeing with the sim oracle).
  #   * burst.auc must stay at or above MIN_BURST_AUC (default 0.90):
  #     the classification-metric floor. The measured AUC sits near
  #     0.99, so the floor catches the workload going blind, not noise.
  #   * wall_ms may grow at most WALL_TOL times baseline (generous;
  #     catches algorithmic regressions, not runner wobble).
  if(NOT DEFINED MIN_BURST_AUC)
    set(MIN_BURST_AUC 0.90)
  endif()

  get_field(cur_rows "${current_json}" rows)
  get_field(base_rows "${baseline_json}" rows)
  if(NOT cur_rows EQUAL base_rows)
    message(FATAL_ERROR "check_bench: row count ${cur_rows} != baseline "
                        "${base_rows}; regenerate bench/baselines/ for the "
                        "new workload")
  endif()

  get_field(identical "${current_json}" bit_identical)
  if(NOT identical)
    message(FATAL_ERROR "check_bench: bit_identical is '${identical}' — the "
                        "classifier checkpoint or the threshold adapter "
                        "diverged")
  endif()
  message(STATUS "check_bench: classifier round-trip + adapter "
                 "bit-identical ok")

  get_field(attribution_ok "${current_json}" transfer attribution_ok)
  if(NOT attribution_ok)
    message(FATAL_ERROR "check_bench: transfer attribution_ok is "
                        "'${attribution_ok}' — the litmus no longer agrees "
                        "with the sim oracle")
  endif()
  message(STATUS "check_bench: transfer attribution ok")

  get_field(cur_auc "${current_json}" burst auc)
  to_millis(auc_millis "${cur_auc}")
  to_millis(floor_millis "${MIN_BURST_AUC}")
  if(auc_millis LESS floor_millis)
    message(FATAL_ERROR "check_bench: burst AUC ${cur_auc} fell below the "
                        "${MIN_BURST_AUC} floor — the classifier went blind")
  endif()
  message(STATUS "check_bench: burst auc ${cur_auc} >= ${MIN_BURST_AUC} ok")

  get_field(cur_wall "${current_json}" wall_ms)
  get_field(base_wall "${baseline_json}" wall_ms)
  to_millis(wall_tol_millis "${WALL_TOL}")
  truncate(cur_wall_int "${cur_wall}")
  truncate(base_wall_int "${base_wall}")
  math(EXPR wall_limit "${base_wall_int} * ${wall_tol_millis} / 1000")
  if(cur_wall_int GREATER wall_limit)
    message(FATAL_ERROR "check_bench: workload wall time regressed: "
                        "${cur_wall} ms > limit ${wall_limit} ms "
                        "(baseline ${base_wall} ms, tol ${WALL_TOL}x)")
  endif()
  message(STATUS "check_bench: workload wall ${cur_wall_int} ms <= "
                 "${wall_limit} ms (baseline ${base_wall_int} ms) ok")
  message(STATUS "check_bench: PASS")
  return()
endif()

# ---- KIND=pipeline (default) -----------------------------------------

# Comparable workloads only: a scale/preset change needs a new baseline.
get_field(cur_jobs "${current_json}" jobs)
get_field(base_jobs "${baseline_json}" jobs)
if(NOT cur_jobs EQUAL base_jobs)
  message(FATAL_ERROR "check_bench: job count ${cur_jobs} != baseline "
                      "${base_jobs}; regenerate bench/baselines/ for the "
                      "new workload")
endif()

# Correctness bit: the copy/view A/B must still agree exactly.
# string(JSON) renders JSON true as "ON".
get_field(identical "${current_json}" reports_bit_identical)
if(NOT identical)
  message(FATAL_ERROR "check_bench: reports_bit_identical is "
                      "'${identical}' — the zero-copy path diverged from "
                      "the materializing path")
endif()

# Peak-footprint gate: cur <= base + base * BYTES_TOL.
get_field(cur_peak "${current_json}" view peak_materialized_bytes)
get_field(base_peak "${baseline_json}" view peak_materialized_bytes)
to_millis(bytes_tol_millis "${BYTES_TOL}")
math(EXPR peak_limit "${base_peak} + ${base_peak} * ${bytes_tol_millis} / 1000")
if(cur_peak GREATER peak_limit)
  message(FATAL_ERROR "check_bench: peak materialized bytes regressed: "
                      "${cur_peak} > limit ${peak_limit} "
                      "(baseline ${base_peak}, tol +${BYTES_TOL})")
endif()
message(STATUS "check_bench: peak bytes ${cur_peak} <= ${peak_limit} "
               "(baseline ${base_peak}) ok")

# Wall-time gate: cur <= base * WALL_TOL.
get_field(cur_wall "${current_json}" view wall_ms)
get_field(base_wall "${baseline_json}" view wall_ms)
to_millis(wall_tol_millis "${WALL_TOL}")
truncate(cur_wall_int "${cur_wall}")
truncate(base_wall_int "${base_wall}")
math(EXPR wall_limit "${base_wall_int} * ${wall_tol_millis} / 1000")
if(cur_wall_int GREATER wall_limit)
  message(FATAL_ERROR "check_bench: pipeline wall time regressed: "
                      "${cur_wall} ms > limit ${wall_limit} ms "
                      "(baseline ${base_wall} ms, tol ${WALL_TOL}x)")
endif()
message(STATUS "check_bench: wall ${cur_wall} ms <= ${wall_limit} ms "
               "(baseline ${base_wall} ms) ok")

message(STATUS "check_bench: PASS")
