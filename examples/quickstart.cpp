// Quickstart: simulate a small HPC system, build the job dataset, train a
// throughput model, and run the full five-step error taxonomy on it.
//
//   $ ./example_quickstart
//
// This walks the exact workflow of the paper's Fig. 7 framework on a
// two-month synthetic system small enough to finish in seconds.
#include <cstdio>
#include <iostream>

#include "src/ml/gbt.hpp"
#include "src/ml/metrics.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/pipeline.hpp"

int main() {
  using namespace iotax;

  // 1. Simulate a system: applications, scheduler, weather, contention,
  //    noise — and collect its Darshan/Cobalt/LMT telemetry as a dataset.
  const sim::SimConfig config = sim::tiny_system(/*seed=*/42);
  std::printf("simulating '%s' (%zu jobs over %.0f days)...\n",
              config.name.c_str(), config.workload.n_jobs,
              config.workload.horizon / 86400.0);
  const sim::SimulationResult sim_result = sim::simulate(config);
  const data::Dataset& ds = sim_result.dataset;
  std::printf("dataset: %zu jobs, %zu features\n", ds.size(),
              ds.features.n_cols());

  // 2. Train a quick baseline model and look at its error.
  {
    util::Rng rng(1);
    const auto split = data::grouped_random_split(ds, 0.7, 0.0, rng);
    ml::GradientBoostedTrees model;
    model.fit(taxonomy::feature_matrix(ds, {taxonomy::FeatureSet::kPosix},
                                       split.train),
              taxonomy::targets(ds, split.train));
    const double err = ml::median_abs_log_error(
        taxonomy::targets(ds, split.test),
        model.predict(taxonomy::feature_matrix(
            ds, {taxonomy::FeatureSet::kPosix}, split.test)));
    std::printf("baseline POSIX-only model: median error %.2f%%\n",
                ml::log_error_to_percent(err));
  }

  // 3. Run the full taxonomy pipeline (Fig. 7) and print the report.
  taxonomy::PipelineConfig pipeline;
  pipeline.grid.n_estimators = {32, 64, 128};
  pipeline.grid.max_depth = {4, 8, 12};
  pipeline.ensemble.size = 4;
  pipeline.ensemble.epochs = 15;
  const auto report = taxonomy::run_taxonomy(ds, pipeline);
  std::cout << taxonomy::render_report(report);
  return 0;
}
