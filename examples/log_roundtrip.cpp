// Log pipeline round-trip: what a production deployment of this tooling
// looks like. The simulator stands in for the machine; everything after
// the archive is written works purely from files, exactly as a site
// analysing real darshan-parser output would:
//
//   simulate -> write job-log archive (text) -> parse archive ->
//   rebuild dataset -> save as CSV -> reload -> litmus test.
//
//   $ ./example_log_roundtrip [output_dir]
#include <cstdio>
#include <filesystem>

#include "src/data/table_io.hpp"
#include "src/ml/metrics.hpp"
#include "src/sim/dataset_builder.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/litmus.hpp"
#include "src/telemetry/darshan_log.hpp"

int main(int argc, char** argv) {
  using namespace iotax;
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "iotax";
  std::filesystem::create_directories(dir);

  // The "machine": run it and persist its telemetry, then forget it.
  const auto res = sim::simulate(sim::tiny_system(21));
  const auto archive = (dir / "jobs.darshan.txt").string();
  telemetry::write_archive(archive, res.records);
  std::printf("wrote %zu job records to %s (%.1f KiB)\n", res.records.size(),
              archive.c_str(),
              static_cast<double>(std::filesystem::file_size(archive)) /
                  1024.0);

  // The "analysis site": parse logs leniently, report corrupt records.
  telemetry::ParseStats stats;
  const auto records =
      telemetry::parse_archive_file(archive, /*strict=*/false, &stats);
  std::printf("parsed %zu records (%zu skipped as corrupt)\n", stats.parsed,
              stats.skipped);

  // Rebuild the model dataset from parsed logs only (no ground truth).
  const auto ds = sim::build_dataset(records, nullptr, "from-logs");
  std::printf("rebuilt dataset: %zu jobs x %zu features\n", ds.size(),
              ds.features.n_cols());

  // Persist and reload as CSV.
  const auto csv = (dir / "dataset.csv").string();
  data::write_dataset_csv(csv, ds);
  const auto reloaded = data::read_dataset_csv(csv, "from-logs");
  reloaded.validate();
  std::printf("CSV round-trip OK: %s\n", csv.c_str());

  // Run a litmus test on the file-derived dataset: the duplicate-set
  // application-modeling bound needs no ground truth at all.
  const auto bound = taxonomy::litmus_application_bound(reloaded);
  std::printf("application-modeling bound from logs: %.2f%% median error "
              "(%zu duplicate sets, %.1f%% of jobs)\n",
              ml::log_error_to_percent(bound.median_abs_error),
              bound.stats.n_sets,
              bound.stats.duplicate_fraction * 100.0);
  return 0;
}
