// Deployment drift monitor: the operational loop a production site would
// run around a deployed I/O model (extends §VIII / Fig. 1c into a tool).
//
//   1. train a throughput model on the first months of logs,
//   2. save it (models are persisted and reloaded, as in production),
//   3. replay the rest of the timeline as a deployment stream,
//   4. watch windowed error with the drift monitor and alarm on
//      degradation — here triggered by the novel applications the
//      simulator introduces after the training period.
//
//   $ ./example_drift_monitor
#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/ml/gbt.hpp"
#include "src/ml/metrics.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/drift.hpp"
#include "src/taxonomy/feature_sets.hpp"

int main() {
  using namespace iotax;
  auto cfg = sim::tiny_system(/*seed=*/57);
  cfg.workload.n_jobs = 3500;
  cfg.catalog.novel_app_frac = 0.20;
  cfg.catalog.novel_shift = 2.0;
  const auto res = sim::simulate(cfg);
  const auto& ds = res.dataset;

  // 1. Train on the first 3/4 of the pre-deployment period; the last
  //    quarter stays held out so the monitor's reference windows measure
  //    honest (non-memorised) error before deployment begins.
  const double train_end = 0.75 * res.train_cutoff_time;
  const auto train_rows = ds.rows_in_window(0.0, train_end);
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  ml::GradientBoostedTrees model({.n_estimators = 96, .max_depth = 8});
  model.fit(taxonomy::feature_matrix(ds, feats, train_rows),
            taxonomy::targets(ds, train_rows));

  // 2. Persist and reload through the family-agnostic Regressor API, as
  //    a deployment that only knows "a saved model file" would.
  std::stringstream stored;
  model.save(stored);
  const auto deployed = ml::Regressor::load(stored);
  std::printf("deployed model: %s (%.1f KiB serialized)\n",
              deployed->name().c_str(),
              static_cast<double>(stored.str().size()) / 1024.0);

  // 3. Replay the stream: held-out pre-deployment tail (the reference)
  //    followed by the deployment period.
  const auto stream_rows = ds.rows_in_window(train_end, 1e300);
  const auto pred = deployed->predict(
      taxonomy::feature_matrix(ds, feats, stream_rows));
  const auto y = taxonomy::targets(ds, stream_rows);
  std::vector<double> times(stream_rows.size());
  std::vector<double> errors(stream_rows.size());
  for (std::size_t i = 0; i < stream_rows.size(); ++i) {
    times[i] = ds.meta[stream_rows[i]].start_time;
    errors[i] = pred[i] - y[i];
  }
  std::printf("deployment stream: %zu jobs, overall median error %.2f%%\n\n",
              stream_rows.size(),
              ml::log_error_to_percent(
                  ml::median_abs_log_error(y, pred)));

  // 4. Watch it.
  taxonomy::DriftParams params;
  params.window_seconds = 86400.0 * 2.0;
  params.reference_windows = 4;  // the held-out pre-deployment tail
  params.error_ratio_alarm = 1.25;
  params.ks_alarm = 0.25;
  params.min_jobs = 15;
  const auto report = taxonomy::monitor_drift(times, errors, params);
  std::cout << taxonomy::render_drift_report(report);
  if (report.n_alarms > 0) {
    std::printf("\n-> model retraining recommended from window %zu on\n",
                report.first_alarm);
  }
  return 0;
}
