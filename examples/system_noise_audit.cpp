// System noise audit: the practical tool §IX promises system operators —
// "a job running on Theta can expect an I/O throughput within +-5.71% of
// the predicted value 68% of the time".
//
// Given job logs (here: freshly simulated Theta-like and Cori-like
// archives), the audit finds concurrent duplicate jobs, fits Normal and
// Student-t models to their spread, applies Bessel's correction, and
// reports the I/O variability bands a user of the system should expect.
//
//   $ ./example_system_noise_audit
#include <cstdio>

#include "src/ml/metrics.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/litmus.hpp"

int main() {
  using namespace iotax;
  for (const auto& config : {sim::theta_like(), sim::cori_like()}) {
    const auto res = sim::simulate(config);
    const auto noise = taxonomy::litmus_noise_bound(res.dataset,
                                                    /*dt_window=*/1.0);
    std::printf("=== %s ===\n", config.name.c_str());
    std::printf("  concurrent duplicate sets: %zu (%zu jobs)\n",
                noise.n_sets, noise.n_jobs);
    std::printf("  sets with exactly 2 members: %.0f%%, <= 6 members: %.0f%%\n",
                noise.frac_sets_of_two * 100.0,
                noise.frac_sets_leq_six * 100.0);
    std::printf("  Student-t fit: df=%.1f scale=%.4f  (t beats Normal by "
                "%.4f nats/sample)\n",
                noise.t_fit.df, noise.t_fit.scale, noise.t_preference);
    std::printf("  irreducible model error floor (median |log10|): %.2f%%\n",
                ml::log_error_to_percent(noise.median_abs_error));
    std::printf("  expect throughput within +-%.2f%% of prediction 68%% of "
                "the time,\n                     within +-%.2f%% 95%% of the "
                "time\n",
                noise.band68_pct, noise.band95_pct);
    // Ground-truth check, unique to simulation: the configured noise.
    std::printf("  (simulator ground truth: platform noise sigma = %.4f "
                "log10)\n\n",
                config.platform.noise_sigma_log10);
  }
  return 0;
}
