// Out-of-distribution job detector (§VIII): train a deep ensemble with
// heteroscedastic heads on the training period, then monitor epistemic
// uncertainty on later jobs. Jobs whose EU crosses the threshold are
// flagged as novel — the operator should not trust the model's
// predictions for them, and they are candidates for retraining data.
//
//   $ ./example_ood_detector
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/ml/ensemble.hpp"
#include "src/ml/metrics.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/litmus.hpp"

int main() {
  using namespace iotax;
  auto config = sim::tiny_system(/*seed=*/7);
  config.workload.n_jobs = 2500;
  config.catalog.novel_app_frac = 0.15;
  const auto res = sim::simulate(config);
  const auto& ds = res.dataset;

  // Train on the pre-deployment period only.
  const auto train_rows = ds.rows_in_window(0.0, res.train_cutoff_time);
  const auto deploy_rows = ds.rows_in_window(res.train_cutoff_time, 1e300);
  std::printf("training on %zu jobs, monitoring %zu deployment jobs\n",
              train_rows.size(), deploy_rows.size());

  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  ml::EnsembleParams params;
  params.size = 6;
  params.epochs = 25;
  ml::DeepEnsemble ensemble(params);
  ensemble.fit(taxonomy::feature_matrix(ds, feats, train_rows),
               taxonomy::targets(ds, train_rows));

  const auto uq = ensemble.predict_uncertainty(
      taxonomy::feature_matrix(ds, feats, deploy_rows));
  const auto y = taxonomy::targets(ds, deploy_rows);
  std::vector<double> abs_err(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    abs_err[i] = std::fabs(uq.mean[i] - y[i]);
  }
  const auto ood = taxonomy::litmus_ood(uq.epistemic, abs_err);
  std::printf("EU threshold %.4f -> flagged %zu/%zu jobs (%.1f%%) carrying "
              "%.1f%% of error (%.1fx average)\n",
              ood.eu_threshold, ood.n_ood, y.size(), ood.frac_ood * 100.0,
              ood.error_share_ood * 100.0, ood.error_ratio);

  // Ground truth: how many flagged jobs belong to genuinely novel apps?
  std::size_t flagged_novel = 0;
  std::size_t total_novel = 0;
  for (std::size_t i = 0; i < deploy_rows.size(); ++i) {
    const bool novel = ds.meta[deploy_rows[i]].novel_app;
    total_novel += novel;
    if (ood.is_ood[i] && novel) ++flagged_novel;
  }
  std::printf("ground truth: %zu deployment jobs from novel apps; %zu of "
              "the flagged jobs are novel (precision %.0f%%)\n",
              total_novel, flagged_novel,
              ood.n_ood > 0
                  ? 100.0 * static_cast<double>(flagged_novel) /
                        static_cast<double>(ood.n_ood)
                  : 0.0);

  // Show the five most suspicious jobs, like an operator dashboard would.
  std::vector<std::size_t> order(deploy_rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&uq](std::size_t a, std::size_t b) {
    return uq.epistemic[a] > uq.epistemic[b];
  });
  std::printf("top suspicious jobs (by epistemic uncertainty):\n");
  std::printf("  %10s %8s %8s %10s %7s\n", "job", "EU", "AU", "|err|",
              "novel?");
  for (std::size_t k = 0; k < std::min<std::size_t>(5, order.size()); ++k) {
    const std::size_t i = order[k];
    std::printf("  %10llu %8.4f %8.4f %10.4f %7s\n",
                static_cast<unsigned long long>(
                    ds.meta[deploy_rows[i]].job_id),
                uq.epistemic[i], uq.aleatory[i], abs_err[i],
                ds.meta[deploy_rows[i]].novel_app ? "yes" : "no");
  }
  return 0;
}
