// Workload atlas: the I/O-expert's dashboard view of a system. Clusters
// the workload by I/O behaviour (§II's clustering direction), breaks the
// throughput model's error down per cluster, attaches per-job prediction
// intervals from quantile GBTs, and checks which features drifted over
// the system's lifetime.
//
//   $ ./example_workload_atlas
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/data/split.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/metrics.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/clusters.hpp"
#include "src/taxonomy/drift.hpp"

int main() {
  using namespace iotax;
  auto cfg = sim::tiny_system(/*seed=*/91);
  cfg.workload.n_jobs = 2500;
  const auto res = sim::simulate(cfg);
  const auto& ds = res.dataset;
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};

  // Train the median model plus a 10%-90% interval pair.
  util::Rng rng(1);
  const auto split = data::random_split(ds.size(), 0.7, 0.0, rng);
  const auto x_train = taxonomy::feature_matrix(ds, feats, split.train);
  const auto y_train = taxonomy::targets(ds, split.train);
  ml::GbtParams base;
  base.n_estimators = 96;
  base.max_depth = 8;
  ml::GradientBoostedTrees median_model(base);
  median_model.fit(x_train, y_train);
  ml::GbtParams lo_p = base;
  lo_p.loss = ml::GbtLoss::kQuantile;
  lo_p.quantile_alpha = 0.1;
  lo_p.max_depth = 4;
  ml::GbtParams hi_p = lo_p;
  hi_p.quantile_alpha = 0.9;
  ml::GradientBoostedTrees lo(lo_p);
  ml::GradientBoostedTrees hi(hi_p);
  lo.fit(x_train, y_train);
  hi.fit(x_train, y_train);

  // Interval coverage on held-out jobs.
  const auto x_test = taxonomy::feature_matrix(ds, feats, split.test);
  const auto y_test = taxonomy::targets(ds, split.test);
  const auto lo_pred = lo.predict(x_test);
  const auto hi_pred = hi.predict(x_test);
  std::size_t covered = 0;
  double width = 0.0;
  for (std::size_t i = 0; i < y_test.size(); ++i) {
    covered += (y_test[i] >= lo_pred[i] && y_test[i] <= hi_pred[i]) ? 1 : 0;
    width += hi_pred[i] - lo_pred[i];
  }
  std::printf("per-job 10-90%% interval: coverage %.1f%% (nominal 80%%), "
              "mean width %.3f log10 (~+-%.0f%%)\n\n",
              100.0 * static_cast<double>(covered) /
                  static_cast<double>(y_test.size()),
              width / static_cast<double>(y_test.size()),
              (std::pow(10.0, width / y_test.size() / 2.0) - 1.0) * 100.0);

  // Per-cluster error atlas over the whole dataset.
  const auto pred_all =
      median_model.predict(taxonomy::feature_matrix(ds, feats));
  std::vector<double> errors(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    errors[i] = pred_all[i] - ds.target[i];
  }
  ml::KMeansParams kp;
  kp.k = 6;
  const auto atlas = taxonomy::cluster_error_breakdown(ds, errors, feats, kp);
  std::cout << taxonomy::render_cluster_breakdown(atlas);

  // Which features drifted between the first and last third of the
  // timeline? (Novel apps shift metadata/file-count features.)
  const double horizon = res.config.workload.horizon;
  const auto early = ds.rows_in_window(0.0, horizon / 3.0);
  const auto late = ds.rows_in_window(2.0 * horizon / 3.0, 1e300);
  std::printf("\ntop drifting features (first vs last third of the "
              "timeline):\n");
  for (const auto& d :
       taxonomy::feature_drift(ds.features, early, late, 5)) {
    std::printf("  %-28s KS=%.3f\n", d.feature.c_str(), d.ks);
  }
  return 0;
}
