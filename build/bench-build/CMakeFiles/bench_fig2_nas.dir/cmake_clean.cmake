file(REMOVE_RECURSE
  "../bench/bench_fig2_nas"
  "../bench/bench_fig2_nas.pdb"
  "CMakeFiles/bench_fig2_nas.dir/bench_fig2_nas.cpp.o"
  "CMakeFiles/bench_fig2_nas.dir/bench_fig2_nas.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
