# Empty compiler generated dependencies file for bench_fig3_feature_sets.
# This may be replaced when dependencies are built.
