# Empty dependencies file for bench_fig1d_weather_timeline.
# This may be replaced when dependencies are built.
