# Empty dependencies file for bench_fig4_system_visibility.
# This may be replaced when dependencies are built.
