file(REMOVE_RECURSE
  "../bench/bench_fig4_system_visibility"
  "../bench/bench_fig4_system_visibility.pdb"
  "CMakeFiles/bench_fig4_system_visibility.dir/bench_fig4_system_visibility.cpp.o"
  "CMakeFiles/bench_fig4_system_visibility.dir/bench_fig4_system_visibility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_system_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
