# Empty compiler generated dependencies file for bench_ablation_groundtruth.
# This may be replaced when dependencies are built.
