file(REMOVE_RECURSE
  "../bench/bench_ablation_groundtruth"
  "../bench/bench_ablation_groundtruth.pdb"
  "CMakeFiles/bench_ablation_groundtruth.dir/bench_ablation_groundtruth.cpp.o"
  "CMakeFiles/bench_ablation_groundtruth.dir/bench_ablation_groundtruth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_groundtruth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
