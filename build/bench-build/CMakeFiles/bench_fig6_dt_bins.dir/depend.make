# Empty dependencies file for bench_fig6_dt_bins.
# This may be replaced when dependencies are built.
