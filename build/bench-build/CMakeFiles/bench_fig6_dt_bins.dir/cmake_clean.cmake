file(REMOVE_RECURSE
  "../bench/bench_fig6_dt_bins"
  "../bench/bench_fig6_dt_bins.pdb"
  "CMakeFiles/bench_fig6_dt_bins.dir/bench_fig6_dt_bins.cpp.o"
  "CMakeFiles/bench_fig6_dt_bins.dir/bench_fig6_dt_bins.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dt_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
