# Empty dependencies file for bench_fig1b_app_sensitivity.
# This may be replaced when dependencies are built.
