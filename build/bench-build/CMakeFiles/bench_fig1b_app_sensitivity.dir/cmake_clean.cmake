file(REMOVE_RECURSE
  "../bench/bench_fig1b_app_sensitivity"
  "../bench/bench_fig1b_app_sensitivity.pdb"
  "CMakeFiles/bench_fig1b_app_sensitivity.dir/bench_fig1b_app_sensitivity.cpp.o"
  "CMakeFiles/bench_fig1b_app_sensitivity.dir/bench_fig1b_app_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1b_app_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
