file(REMOVE_RECURSE
  "../bench/bench_fig5_au_eu"
  "../bench/bench_fig5_au_eu.pdb"
  "CMakeFiles/bench_fig5_au_eu.dir/bench_fig5_au_eu.cpp.o"
  "CMakeFiles/bench_fig5_au_eu.dir/bench_fig5_au_eu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_au_eu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
