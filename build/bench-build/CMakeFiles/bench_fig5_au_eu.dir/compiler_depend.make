# Empty compiler generated dependencies file for bench_fig5_au_eu.
# This may be replaced when dependencies are built.
