file(REMOVE_RECURSE
  "../bench/bench_fig7_taxonomy"
  "../bench/bench_fig7_taxonomy.pdb"
  "CMakeFiles/bench_fig7_taxonomy.dir/bench_fig7_taxonomy.cpp.o"
  "CMakeFiles/bench_fig7_taxonomy.dir/bench_fig7_taxonomy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
