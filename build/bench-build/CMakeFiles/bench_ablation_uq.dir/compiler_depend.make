# Empty compiler generated dependencies file for bench_ablation_uq.
# This may be replaced when dependencies are built.
