file(REMOVE_RECURSE
  "../bench/bench_ablation_uq"
  "../bench/bench_ablation_uq.pdb"
  "CMakeFiles/bench_ablation_uq.dir/bench_ablation_uq.cpp.o"
  "CMakeFiles/bench_ablation_uq.dir/bench_ablation_uq.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_uq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
