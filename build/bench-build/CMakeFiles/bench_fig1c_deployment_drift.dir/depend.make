# Empty dependencies file for bench_fig1c_deployment_drift.
# This may be replaced when dependencies are built.
