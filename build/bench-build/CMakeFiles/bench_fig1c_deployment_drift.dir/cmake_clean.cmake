file(REMOVE_RECURSE
  "../bench/bench_fig1c_deployment_drift"
  "../bench/bench_fig1c_deployment_drift.pdb"
  "CMakeFiles/bench_fig1c_deployment_drift.dir/bench_fig1c_deployment_drift.cpp.o"
  "CMakeFiles/bench_fig1c_deployment_drift.dir/bench_fig1c_deployment_drift.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1c_deployment_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
