file(REMOVE_RECURSE
  "../bench/bench_fig1e_pair_scatter"
  "../bench/bench_fig1e_pair_scatter.pdb"
  "CMakeFiles/bench_fig1e_pair_scatter.dir/bench_fig1e_pair_scatter.cpp.o"
  "CMakeFiles/bench_fig1e_pair_scatter.dir/bench_fig1e_pair_scatter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1e_pair_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
