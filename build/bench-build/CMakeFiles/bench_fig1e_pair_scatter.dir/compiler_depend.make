# Empty compiler generated dependencies file for bench_fig1e_pair_scatter.
# This may be replaced when dependencies are built.
