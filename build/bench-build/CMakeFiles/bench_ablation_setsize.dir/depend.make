# Empty dependencies file for bench_ablation_setsize.
# This may be replaced when dependencies are built.
