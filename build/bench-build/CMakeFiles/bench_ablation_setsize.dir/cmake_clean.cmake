file(REMOVE_RECURSE
  "../bench/bench_ablation_setsize"
  "../bench/bench_ablation_setsize.pdb"
  "CMakeFiles/bench_ablation_setsize.dir/bench_ablation_setsize.cpp.o"
  "CMakeFiles/bench_ablation_setsize.dir/bench_ablation_setsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_setsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
