# Empty compiler generated dependencies file for bench_fig1a_hparam_heatmap.
# This may be replaced when dependencies are built.
