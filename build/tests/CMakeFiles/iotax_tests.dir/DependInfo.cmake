
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/binary_log_test.cpp" "tests/CMakeFiles/iotax_tests.dir/binary_log_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/binary_log_test.cpp.o.d"
  "/root/repo/tests/calibration_test.cpp" "tests/CMakeFiles/iotax_tests.dir/calibration_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/calibration_test.cpp.o.d"
  "/root/repo/tests/clusters_test.cpp" "tests/CMakeFiles/iotax_tests.dir/clusters_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/clusters_test.cpp.o.d"
  "/root/repo/tests/data_test.cpp" "tests/CMakeFiles/iotax_tests.dir/data_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/data_test.cpp.o.d"
  "/root/repo/tests/determinism_test.cpp" "tests/CMakeFiles/iotax_tests.dir/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/determinism_test.cpp.o.d"
  "/root/repo/tests/drift_test.cpp" "tests/CMakeFiles/iotax_tests.dir/drift_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/drift_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/iotax_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/extras_test.cpp" "tests/CMakeFiles/iotax_tests.dir/extras_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/extras_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/iotax_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/ml_test.cpp" "tests/CMakeFiles/iotax_tests.dir/ml_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/ml_test.cpp.o.d"
  "/root/repo/tests/ost_load_test.cpp" "tests/CMakeFiles/iotax_tests.dir/ost_load_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/ost_load_test.cpp.o.d"
  "/root/repo/tests/parallel_test.cpp" "tests/CMakeFiles/iotax_tests.dir/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/parallel_test.cpp.o.d"
  "/root/repo/tests/property_ml_test.cpp" "tests/CMakeFiles/iotax_tests.dir/property_ml_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/property_ml_test.cpp.o.d"
  "/root/repo/tests/property_sim_test.cpp" "tests/CMakeFiles/iotax_tests.dir/property_sim_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/property_sim_test.cpp.o.d"
  "/root/repo/tests/property_stats_test.cpp" "tests/CMakeFiles/iotax_tests.dir/property_stats_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/property_stats_test.cpp.o.d"
  "/root/repo/tests/search_test.cpp" "tests/CMakeFiles/iotax_tests.dir/search_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/search_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/iotax_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/iotax_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/iotax_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/taxonomy_test.cpp" "tests/CMakeFiles/iotax_tests.dir/taxonomy_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/taxonomy_test.cpp.o.d"
  "/root/repo/tests/telemetry_test.cpp" "tests/CMakeFiles/iotax_tests.dir/telemetry_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/telemetry_test.cpp.o.d"
  "/root/repo/tests/util_misc_test.cpp" "tests/CMakeFiles/iotax_tests.dir/util_misc_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/util_misc_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/iotax_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/iotax_tests.dir/util_rng_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotax.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
