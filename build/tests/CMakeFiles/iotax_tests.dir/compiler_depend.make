# Empty compiler generated dependencies file for iotax_tests.
# This may be replaced when dependencies are built.
