# Empty dependencies file for iotax_cli.
# This may be replaced when dependencies are built.
