file(REMOVE_RECURSE
  "CMakeFiles/iotax_cli.dir/iotax_main.cpp.o"
  "CMakeFiles/iotax_cli.dir/iotax_main.cpp.o.d"
  "iotax"
  "iotax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotax_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
