file(REMOVE_RECURSE
  "CMakeFiles/example_ood_detector.dir/ood_detector.cpp.o"
  "CMakeFiles/example_ood_detector.dir/ood_detector.cpp.o.d"
  "example_ood_detector"
  "example_ood_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ood_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
