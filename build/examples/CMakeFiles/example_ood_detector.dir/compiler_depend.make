# Empty compiler generated dependencies file for example_ood_detector.
# This may be replaced when dependencies are built.
