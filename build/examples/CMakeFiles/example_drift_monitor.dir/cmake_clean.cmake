file(REMOVE_RECURSE
  "CMakeFiles/example_drift_monitor.dir/drift_monitor.cpp.o"
  "CMakeFiles/example_drift_monitor.dir/drift_monitor.cpp.o.d"
  "example_drift_monitor"
  "example_drift_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_drift_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
