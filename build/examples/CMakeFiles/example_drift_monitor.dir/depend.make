# Empty dependencies file for example_drift_monitor.
# This may be replaced when dependencies are built.
