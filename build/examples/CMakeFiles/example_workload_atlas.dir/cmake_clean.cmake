file(REMOVE_RECURSE
  "CMakeFiles/example_workload_atlas.dir/workload_atlas.cpp.o"
  "CMakeFiles/example_workload_atlas.dir/workload_atlas.cpp.o.d"
  "example_workload_atlas"
  "example_workload_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_workload_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
