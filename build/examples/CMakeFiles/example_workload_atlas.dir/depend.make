# Empty dependencies file for example_workload_atlas.
# This may be replaced when dependencies are built.
