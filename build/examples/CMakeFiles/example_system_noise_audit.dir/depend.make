# Empty dependencies file for example_system_noise_audit.
# This may be replaced when dependencies are built.
