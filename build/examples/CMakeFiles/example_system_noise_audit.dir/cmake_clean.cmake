file(REMOVE_RECURSE
  "CMakeFiles/example_system_noise_audit.dir/system_noise_audit.cpp.o"
  "CMakeFiles/example_system_noise_audit.dir/system_noise_audit.cpp.o.d"
  "example_system_noise_audit"
  "example_system_noise_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_system_noise_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
