# Empty dependencies file for example_log_roundtrip.
# This may be replaced when dependencies are built.
