file(REMOVE_RECURSE
  "CMakeFiles/example_log_roundtrip.dir/log_roundtrip.cpp.o"
  "CMakeFiles/example_log_roundtrip.dir/log_roundtrip.cpp.o.d"
  "example_log_roundtrip"
  "example_log_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_log_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
