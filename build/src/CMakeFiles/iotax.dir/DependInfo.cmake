
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/args.cpp" "src/CMakeFiles/iotax.dir/cli/args.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/cli/args.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/iotax.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/matrix.cpp" "src/CMakeFiles/iotax.dir/data/matrix.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/data/matrix.cpp.o.d"
  "/root/repo/src/data/scaler.cpp" "src/CMakeFiles/iotax.dir/data/scaler.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/data/scaler.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/CMakeFiles/iotax.dir/data/split.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/data/split.cpp.o.d"
  "/root/repo/src/data/table.cpp" "src/CMakeFiles/iotax.dir/data/table.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/data/table.cpp.o.d"
  "/root/repo/src/data/table_io.cpp" "src/CMakeFiles/iotax.dir/data/table_io.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/data/table_io.cpp.o.d"
  "/root/repo/src/ml/binning.cpp" "src/CMakeFiles/iotax.dir/ml/binning.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/ml/binning.cpp.o.d"
  "/root/repo/src/ml/ensemble.cpp" "src/CMakeFiles/iotax.dir/ml/ensemble.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/ml/ensemble.cpp.o.d"
  "/root/repo/src/ml/gbt.cpp" "src/CMakeFiles/iotax.dir/ml/gbt.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/ml/gbt.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/CMakeFiles/iotax.dir/ml/kmeans.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/ml/kmeans.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/CMakeFiles/iotax.dir/ml/linear.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/ml/linear.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/iotax.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/model.cpp" "src/CMakeFiles/iotax.dir/ml/model.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/ml/model.cpp.o.d"
  "/root/repo/src/ml/nas.cpp" "src/CMakeFiles/iotax.dir/ml/nas.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/ml/nas.cpp.o.d"
  "/root/repo/src/ml/nn.cpp" "src/CMakeFiles/iotax.dir/ml/nn.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/ml/nn.cpp.o.d"
  "/root/repo/src/ml/search.cpp" "src/CMakeFiles/iotax.dir/ml/search.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/ml/search.cpp.o.d"
  "/root/repo/src/ml/uq_gbt.cpp" "src/CMakeFiles/iotax.dir/ml/uq_gbt.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/ml/uq_gbt.cpp.o.d"
  "/root/repo/src/sim/app_model.cpp" "src/CMakeFiles/iotax.dir/sim/app_model.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/sim/app_model.cpp.o.d"
  "/root/repo/src/sim/contention.cpp" "src/CMakeFiles/iotax.dir/sim/contention.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/sim/contention.cpp.o.d"
  "/root/repo/src/sim/dataset_builder.cpp" "src/CMakeFiles/iotax.dir/sim/dataset_builder.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/sim/dataset_builder.cpp.o.d"
  "/root/repo/src/sim/lmt_gen.cpp" "src/CMakeFiles/iotax.dir/sim/lmt_gen.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/sim/lmt_gen.cpp.o.d"
  "/root/repo/src/sim/ost_load.cpp" "src/CMakeFiles/iotax.dir/sim/ost_load.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/sim/ost_load.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/CMakeFiles/iotax.dir/sim/platform.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/sim/platform.cpp.o.d"
  "/root/repo/src/sim/presets.cpp" "src/CMakeFiles/iotax.dir/sim/presets.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/sim/presets.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/iotax.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/weather.cpp" "src/CMakeFiles/iotax.dir/sim/weather.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/sim/weather.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/iotax.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/sim/workload.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/CMakeFiles/iotax.dir/stats/bootstrap.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/stats/bootstrap.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/iotax.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/CMakeFiles/iotax.dir/stats/distributions.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/stats/distributions.cpp.o.d"
  "/root/repo/src/stats/fitting.cpp" "src/CMakeFiles/iotax.dir/stats/fitting.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/stats/fitting.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/iotax.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/taxonomy/clusters.cpp" "src/CMakeFiles/iotax.dir/taxonomy/clusters.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/taxonomy/clusters.cpp.o.d"
  "/root/repo/src/taxonomy/drift.cpp" "src/CMakeFiles/iotax.dir/taxonomy/drift.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/taxonomy/drift.cpp.o.d"
  "/root/repo/src/taxonomy/duplicates.cpp" "src/CMakeFiles/iotax.dir/taxonomy/duplicates.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/taxonomy/duplicates.cpp.o.d"
  "/root/repo/src/taxonomy/feature_sets.cpp" "src/CMakeFiles/iotax.dir/taxonomy/feature_sets.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/taxonomy/feature_sets.cpp.o.d"
  "/root/repo/src/taxonomy/interpret.cpp" "src/CMakeFiles/iotax.dir/taxonomy/interpret.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/taxonomy/interpret.cpp.o.d"
  "/root/repo/src/taxonomy/litmus.cpp" "src/CMakeFiles/iotax.dir/taxonomy/litmus.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/taxonomy/litmus.cpp.o.d"
  "/root/repo/src/taxonomy/pipeline.cpp" "src/CMakeFiles/iotax.dir/taxonomy/pipeline.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/taxonomy/pipeline.cpp.o.d"
  "/root/repo/src/taxonomy/report_io.cpp" "src/CMakeFiles/iotax.dir/taxonomy/report_io.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/taxonomy/report_io.cpp.o.d"
  "/root/repo/src/telemetry/binary_log.cpp" "src/CMakeFiles/iotax.dir/telemetry/binary_log.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/telemetry/binary_log.cpp.o.d"
  "/root/repo/src/telemetry/cobalt.cpp" "src/CMakeFiles/iotax.dir/telemetry/cobalt.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/telemetry/cobalt.cpp.o.d"
  "/root/repo/src/telemetry/counters.cpp" "src/CMakeFiles/iotax.dir/telemetry/counters.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/telemetry/counters.cpp.o.d"
  "/root/repo/src/telemetry/darshan_log.cpp" "src/CMakeFiles/iotax.dir/telemetry/darshan_log.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/telemetry/darshan_log.cpp.o.d"
  "/root/repo/src/telemetry/io_signature.cpp" "src/CMakeFiles/iotax.dir/telemetry/io_signature.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/telemetry/io_signature.cpp.o.d"
  "/root/repo/src/telemetry/lmt.cpp" "src/CMakeFiles/iotax.dir/telemetry/lmt.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/telemetry/lmt.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/iotax.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/env.cpp" "src/CMakeFiles/iotax.dir/util/env.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/util/env.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "src/CMakeFiles/iotax.dir/util/parallel.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/util/parallel.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/iotax.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/str.cpp" "src/CMakeFiles/iotax.dir/util/str.cpp.o" "gcc" "src/CMakeFiles/iotax.dir/util/str.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
