file(REMOVE_RECURSE
  "libiotax.a"
)
