# Empty dependencies file for iotax.
# This may be replaced when dependencies are built.
