#include <gtest/gtest.h>

#include <sstream>

#include "src/util/csv.hpp"
#include "src/util/env.hpp"
#include "src/util/str.hpp"

namespace iotax {
namespace {

TEST(Str, SplitKeepsEmptyFields) {
  const auto parts = util::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Str, SplitSingleField) {
  const auto parts = util::split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Str, TrimWhitespace) {
  EXPECT_EQ(util::trim("  x y \t\n"), "x y");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim("   "), "");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(util::starts_with("POSIX_BYTES_READ", "POSIX_"));
  EXPECT_FALSE(util::starts_with("MPIIO_X", "POSIX_"));
  EXPECT_FALSE(util::starts_with("PO", "POSIX_"));
}

TEST(Str, Join) {
  EXPECT_EQ(util::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(util::join({}, ","), "");
  EXPECT_EQ(util::join({"solo"}, ","), "solo");
}

TEST(Str, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(util::parse_double(" 3.25 "), 3.25);
  EXPECT_DOUBLE_EQ(util::parse_double("-1e-3"), -1e-3);
  EXPECT_THROW(util::parse_double("3.25x"), std::invalid_argument);
  EXPECT_THROW(util::parse_double(""), std::invalid_argument);
}

TEST(Str, ParseIntStrict) {
  EXPECT_EQ(util::parse_int("42"), 42);
  EXPECT_EQ(util::parse_int("-7"), -7);
  EXPECT_THROW(util::parse_int("4.2"), std::invalid_argument);
  EXPECT_THROW(util::parse_int("abc"), std::invalid_argument);
}

TEST(Str, FormatDouble) {
  EXPECT_EQ(util::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(util::format_double(-0.5, 1), "-0.5");
}

TEST(Str, HumanBytes) {
  EXPECT_EQ(util::human_bytes(512), "512.0 B");
  EXPECT_EQ(util::human_bytes(1536), "1.50 KiB");
  EXPECT_EQ(util::human_bytes(1.5 * 1024 * 1024 * 1024), "1.50 GiB");
}

TEST(Csv, ParseSimpleLine) {
  const auto f = util::parse_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(Csv, ParseQuotedFields) {
  const auto f = util::parse_csv_line(R"("a,b","say ""hi""",plain)");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "say \"hi\"");
  EXPECT_EQ(f[2], "plain");
}

TEST(Csv, EscapeRoundTrip) {
  const std::string tricky = "x,\"y\"";
  const auto escaped = util::csv_escape(tricky);
  const auto parsed = util::parse_csv_line(escaped);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], tricky);
}

TEST(Csv, ReadWriteRoundTrip) {
  util::Csv csv;
  csv.header = {"name", "value"};
  csv.rows = {{"alpha", "1.5"}, {"with,comma", "2"}};
  std::ostringstream out;
  util::write_csv(out, csv);
  std::istringstream in(out.str());
  const auto back = util::read_csv(in);
  EXPECT_EQ(back.header, csv.header);
  EXPECT_EQ(back.rows, csv.rows);
}

TEST(Csv, ColumnLookup) {
  util::Csv csv;
  csv.header = {"a", "b"};
  EXPECT_EQ(csv.column("b"), 1u);
  EXPECT_THROW(csv.column("z"), std::out_of_range);
}

TEST(Csv, SkipsBlankLinesAndCr) {
  std::istringstream in("a,b\r\n\r\n1,2\r\n");
  const auto csv = util::read_csv(in);
  ASSERT_EQ(csv.rows.size(), 1u);
  EXPECT_EQ(csv.rows[0][1], "2");
}

TEST(Env, ScaleDefaultsToOne) {
  unsetenv("IOTAX_SCALE");
  EXPECT_DOUBLE_EQ(util::env_scale(), 1.0);
}

TEST(Env, ScaleParsesAndClamps) {
  setenv("IOTAX_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(util::env_scale(), 2.5);
  setenv("IOTAX_SCALE", "0.001", 1);
  EXPECT_DOUBLE_EQ(util::env_scale(), 0.05);
  setenv("IOTAX_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(util::env_scale(), 1.0);
  unsetenv("IOTAX_SCALE");
}

TEST(Env, ScaledCountAppliesFloor) {
  setenv("IOTAX_SCALE", "0.05", 1);
  EXPECT_EQ(util::scaled_count(1000, 200), 200u);
  unsetenv("IOTAX_SCALE");
  EXPECT_EQ(util::scaled_count(1000, 200), 1000u);
}

TEST(Env, EnvOrFallback) {
  unsetenv("IOTAX_NOT_SET");
  EXPECT_EQ(util::env_or("IOTAX_NOT_SET", "dflt"), "dflt");
  setenv("IOTAX_NOT_SET", "v", 1);
  EXPECT_EQ(util::env_or("IOTAX_NOT_SET", "dflt"), "v");
  unsetenv("IOTAX_NOT_SET");
}

}  // namespace
}  // namespace iotax
