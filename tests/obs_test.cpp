// Observability layer: span nesting and ordering, histogram bucket
// semantics, exporter golden files — and the guarantee that turning
// IOTAX_OBS on never changes a single model output bit.
//
// These tests mutate process-global observability state (the enabled
// flag, the global trace log and metrics registry), so they live in
// their own binary (iotax_obs_tests, ctest label "obs") instead of the
// main suite.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

#include "src/ml/ensemble.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/nn.hpp"
#include "src/ml/search.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/json.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::TraceLog::global().reset();
    obs::MetricsRegistry::global().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::TraceLog::global().reset();
    obs::MetricsRegistry::global().reset();
  }
};

TEST_F(ObsTest, SpanNestingAndOpenOrder) {
  {
    IOTAX_TRACE_SPAN("outer");
    obs::span_arg("k", 1.0);
    {
      IOTAX_TRACE_SPAN("inner");
      { IOTAX_TRACE_SPAN("leaf"); }
    }
    IOTAX_TRACE_SPAN("sibling");
  }
  const auto spans = obs::TraceLog::global().snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // snapshot() sorts by id == open order, even though spans *close*
  // innermost-first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "leaf");
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_EQ(spans[3].parent, spans[0].id);
  EXPECT_EQ(spans[3].depth, 1u);
  for (const auto& s : spans) {
    EXPECT_GE(s.dur_ns, 0);
    EXPECT_GE(s.start_ns, 0);
  }
  // Children open after and close before their parent.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);
}

TEST_F(ObsTest, SpanArgsAttachToInnermostOpenSpan) {
  {
    IOTAX_TRACE_SPAN("outer");
    obs::span_arg("outer_arg", 1.0);
    {
      IOTAX_TRACE_SPAN("inner");
      obs::span_arg("inner_arg", 2.0);
    }
    obs::span_arg("outer_arg2", 3.0);
  }
  const auto spans = obs::TraceLog::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].first, "outer_arg");
  EXPECT_EQ(spans[0].args[1].first, "outer_arg2");
  ASSERT_EQ(spans[1].args.size(), 1u);
  EXPECT_EQ(spans[1].args[0].first, "inner_arg");
  EXPECT_DOUBLE_EQ(spans[1].args[0].second, 2.0);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  obs::set_enabled(false);
  {
    IOTAX_TRACE_SPAN("ghost");
    obs::span_arg("k", 1.0);
  }
  EXPECT_EQ(obs::TraceLog::global().size(), 0u);
  EXPECT_EQ(obs::now_ns_if_enabled(), 0);
}

TEST_F(ObsTest, SpanGuardEndClosesEarlyAndIsIdempotent) {
  {
    obs::SpanGuard span("early");
    span.end();
    span.end();  // second end() is a no-op
    EXPECT_EQ(obs::TraceLog::global().size(), 1u);
  }  // destructor must not record a second event
  EXPECT_EQ(obs::TraceLog::global().size(), 1u);
}

TEST_F(ObsTest, EnabledFlagFollowsEnvKnob) {
  const char* old = std::getenv("IOTAX_OBS");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;

  ::setenv("IOTAX_OBS", "1", 1);
  obs::refresh_enabled_from_env();
  EXPECT_TRUE(obs::enabled());
  ::setenv("IOTAX_OBS", "0", 1);
  obs::refresh_enabled_from_env();
  EXPECT_FALSE(obs::enabled());
  ::unsetenv("IOTAX_OBS");
  obs::refresh_enabled_from_env();
  EXPECT_FALSE(obs::enabled());

  if (had) ::setenv("IOTAX_OBS", saved.c_str(), 1);
  obs::set_enabled(true);  // restore fixture state
}

TEST_F(ObsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 2.0, 5.0});
  // Exact edge values land in the bucket they bound (Prometheus "le").
  h.observe(1.0);
  h.observe(2.0);
  h.observe(5.0);
  h.observe(0.5);   // below first edge -> bucket 0
  h.observe(1.5);   // (1, 2] -> bucket 1
  h.observe(5.01);  // above last edge -> overflow
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(buckets[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(buckets[2], 1u);  // 5.0
  EXPECT_EQ(buckets[3], 1u);  // 5.01
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 2.0 + 5.0 + 0.5 + 1.5 + 5.01);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (const auto b : h.bucket_counts()) EXPECT_EQ(b, 0u);
}

TEST_F(ObsTest, HistogramQuantilesInterpolateWithinBuckets) {
  obs::Histogram h({1.0, 2.0, 4.0});
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));  // empty histogram
  // 10 observations in (1, 2]: the quantile interpolates linearly
  // through that bucket.
  for (int i = 0; i < 10; ++i) h.observe(1.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);   // rank 5 of 10 -> midpoint
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);   // upper edge of the bucket
  // Spread across buckets: 10 in (1,2], 10 in (2,4].
  for (int i = 0; i < 10; ++i) h.observe(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);   // rank 10 closes bucket 1
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 3.0);  // rank 15, halfway into (2,4]
  // Observations beyond the last edge clamp to it (the overflow bucket
  // has no upper bound to interpolate toward).
  h.observe(100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  // Out-of-range q is clamped, not an error.
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
}

TEST_F(ObsTest, HistogramRejectsBadEdges) {
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST_F(ObsTest, RegistryHandlesAreStableAndResetKeepsThem) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("x");
  c.add(2);
  EXPECT_EQ(&reg.counter("x"), &c);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(reg.counter("x").value(), 1u);
  // Histogram edges apply on first creation only.
  obs::Histogram& h = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&reg.histogram("h", {9.0}), &h);
  EXPECT_EQ(h.edges().size(), 2u);
}

void fill_golden(obs::MetricsRegistry& reg) {
  reg.counter("a.count").add(3);
  reg.gauge("b.gauge").set(1.5);
  obs::Histogram& h = reg.histogram("c.h", {1.0, 2.0});
  h.observe(1.0);
  h.observe(3.0);
}

TEST_F(ObsTest, MetricsJsonGolden) {
  obs::MetricsRegistry reg;
  fill_golden(reg);
  std::ostringstream out;
  reg.write_json(out);
  const std::string expected = R"({
 "counters": {
  "a.count": 3
 },
 "gauges": {
  "b.gauge": 1.5
 },
 "histograms": {
  "c.h": {
   "edges": [
    1,
    2
   ],
   "buckets": [
    1,
    0,
    1
   ],
   "count": 2,
   "sum": 4
  }
 }
}
)";
  EXPECT_EQ(out.str(), expected);
  // And the export must round-trip through the strict parser.
  EXPECT_NO_THROW(util::Json::parse(out.str()));
}

TEST_F(ObsTest, MetricsCsvGolden) {
  obs::MetricsRegistry reg;
  fill_golden(reg);
  std::ostringstream out;
  reg.write_csv(out);
  const std::string expected =
      "type,name,field,value\n"
      "counter,a.count,value,3\n"
      "gauge,b.gauge,value,1.5\n"
      "histogram,c.h,le_1,1\n"
      "histogram,c.h,le_2,0\n"
      "histogram,c.h,le_inf,1\n"
      "histogram,c.h,count,2\n"
      "histogram,c.h,sum,4\n";
  EXPECT_EQ(out.str(), expected);
}

TEST_F(ObsTest, ChromeTraceExportIsValidAndComplete) {
  {
    IOTAX_TRACE_SPAN("outer");
    obs::span_arg("rows", 42.0);
    { IOTAX_TRACE_SPAN("inner"); }
  }
  std::ostringstream out;
  obs::TraceLog::global().write_chrome_json(out);
  const auto doc = util::Json::parse(out.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_EQ(e.at("cat").as_string(), "iotax");
    EXPECT_EQ(e.at("pid").as_int(), 1);
    EXPECT_GE(e.at("ts").as_double(), 0.0);
    EXPECT_GE(e.at("dur").as_double(), 0.0);
  }
  EXPECT_EQ(events[0].at("name").as_string(), "outer");
  EXPECT_DOUBLE_EQ(events[0].at("args").at("rows").as_double(), 42.0);
  EXPECT_EQ(events[1].at("name").as_string(), "inner");
  // The child's args carry the parent span id for tree reconstruction.
  EXPECT_EQ(events[1].at("args").at("parent").as_int(),
            events[0].at("args").at("id").as_int());
}

// --- Json unit coverage -------------------------------------------------

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a": [1, 2.5, -3], "b": {"nested": true}, "c": null, "d": "x\ny"})";
  const auto doc = util::Json::parse(text);
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_EQ(doc.at("a")[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(doc.at("a")[1].as_double(), 2.5);
  EXPECT_TRUE(doc.at("b").at("nested").as_bool());
  EXPECT_TRUE(doc.at("c").is_null());
  EXPECT_EQ(doc.at("d").as_string(), "x\ny");
  // dump -> parse -> dump is a fixed point.
  const std::string once = doc.dump();
  EXPECT_EQ(util::Json::parse(once).dump(), once);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(util::Json::parse(""), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("{\"a\": 1} trailing"),
               std::invalid_argument);
  EXPECT_THROW(util::Json::parse("{\"a\": 1, \"a\": 2}"),
               std::invalid_argument);
  EXPECT_THROW(util::Json::parse("[1, 2,]"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("nul"), std::invalid_argument);
  EXPECT_THROW(util::Json::parse("1e999"), std::invalid_argument);
}

TEST(Json, IntegersRenderWithoutDecimalPoint) {
  EXPECT_EQ(util::Json(3.0).dump(), "3");
  EXPECT_EQ(util::Json(-3.0).dump(), "-3");
  EXPECT_EQ(util::Json(0.25).dump(), "0.25");
  EXPECT_EQ(util::Json(std::size_t{7}).dump(), "7");
}

// --- IOTAX_OBS=1 must not change any model output ----------------------

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

Xy small_data(std::uint64_t seed) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(400, 3);
  d.y.resize(400);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t c = 0; c < 3; ++c) d.x(i, c) = rng.uniform(-1.0, 1.0);
    d.y[i] = d.x(i, 0) - d.x(i, 1) * d.x(i, 2) + rng.normal(0.0, 0.1);
  }
  return d;
}

// Run `fn` with observability off then on (fresh trace/metrics state),
// under IOTAX_THREADS=1 and =4; all four results must be bit-identical.
class ObsDeterminism : public ::testing::Test {
 protected:
  template <typename F>
  static auto off_and_on_at(const char* threads, F&& fn) {
    const char* old = std::getenv("IOTAX_THREADS");
    const std::string saved = old != nullptr ? old : "";
    const bool had = old != nullptr;
    ::setenv("IOTAX_THREADS", threads, 1);

    obs::set_enabled(false);
    auto off = fn();
    obs::set_enabled(true);
    obs::TraceLog::global().reset();
    obs::MetricsRegistry::global().reset();
    auto on = fn();
    obs::set_enabled(false);
    obs::TraceLog::global().reset();
    obs::MetricsRegistry::global().reset();

    if (had) {
      ::setenv("IOTAX_THREADS", saved.c_str(), 1);
    } else {
      ::unsetenv("IOTAX_THREADS");
    }
    return std::make_pair(std::move(off), std::move(on));
  }

  template <typename F>
  static void expect_identical_everywhere(F&& fn) {
    const auto [off1, on1] = off_and_on_at("1", fn);
    const auto [off4, on4] = off_and_on_at("4", fn);
    for (std::size_t i = 0; i < off1.size(); ++i) {
      ASSERT_EQ(off1[i], on1[i]) << "obs flipped output " << i << " (serial)";
      ASSERT_EQ(off4[i], on4[i]) << "obs flipped output " << i
                                 << " (threaded)";
      ASSERT_EQ(off1[i], off4[i]) << "threads flipped output " << i;
    }
  }
};

TEST_F(ObsDeterminism, GbtOutputsBitIdentical) {
  const auto train = small_data(11);
  const auto probe = small_data(12);
  expect_identical_everywhere([&] {
    ml::GbtParams p;
    p.n_estimators = 20;
    p.max_depth = 4;
    p.subsample = 0.8;  // exercises the fit-time RNG
    p.colsample = 0.7;
    ml::GradientBoostedTrees model(p);
    model.fit(train.x, train.y);
    return model.predict(probe.x);
  });
}

TEST_F(ObsDeterminism, MlpOutputsBitIdentical) {
  const auto train = small_data(13);
  const auto probe = small_data(14);
  expect_identical_everywhere([&] {
    ml::MlpParams p;
    p.hidden = {16};
    p.epochs = 4;
    p.dropout = 0.1;  // exercises the dropout RNG stream
    p.nll_head = true;
    ml::Mlp model(p);
    model.fit(train.x, train.y);
    const auto dist = model.predict_dist(probe.x);
    auto out = dist.mean;
    out.insert(out.end(), dist.variance.begin(), dist.variance.end());
    return out;
  });
}

TEST_F(ObsDeterminism, EnsembleOutputsBitIdentical) {
  const auto train = small_data(15);
  expect_identical_everywhere([&] {
    ml::EnsembleParams params;
    params.size = 3;
    params.epochs = 3;
    ml::DeepEnsemble ens(params);
    ens.fit(train.x, train.y);
    const auto uq = ens.predict_uncertainty(train.x);
    auto out = uq.mean;
    out.insert(out.end(), uq.aleatory.begin(), uq.aleatory.end());
    out.insert(out.end(), uq.epistemic.begin(), uq.epistemic.end());
    return out;
  });
}

TEST_F(ObsDeterminism, SearchOutputsBitIdentical) {
  const auto train = small_data(16);
  const auto val = small_data(17);
  expect_identical_everywhere([&] {
    ml::GbtGrid grid;
    grid.base.n_estimators = 8;
    grid.n_estimators = {8};
    grid.max_depth = {3, 4};
    grid.subsample = {0.9};
    grid.colsample = {0.8};
    util::Rng rng(5);
    const auto result = ml::random_search(grid, 4, train.x, train.y, val.x,
                                          val.y, rng);
    std::vector<double> errs;
    for (const auto& point : result.evaluated) errs.push_back(point.val_error);
    errs.push_back(result.best.val_error);
    return errs;
  });
}

TEST_F(ObsDeterminism, InstrumentedRunRecordsSpansAndMetrics) {
  const auto train = small_data(18);
  obs::set_enabled(true);
  obs::TraceLog::global().reset();
  obs::MetricsRegistry::global().reset();
  ml::GbtParams p;
  p.n_estimators = 5;
  ml::GradientBoostedTrees model(p);
  model.fit(train.x, train.y);
  model.predict(train.x);

  bool saw_fit = false;
  bool saw_predict = false;
  for (const auto& s : obs::TraceLog::global().snapshot()) {
    if (s.name == "gbt.fit") saw_fit = true;
    if (s.name == "gbt.predict") saw_predict = true;
  }
  EXPECT_TRUE(saw_fit);
  EXPECT_TRUE(saw_predict);
  const auto snap = obs::MetricsRegistry::global().snapshot();
  bool saw_trees = false;
  for (const auto& row : snap.counters) {
    if (row.name == "gbt.trees") {
      saw_trees = true;
      EXPECT_EQ(row.value, 5u);
    }
  }
  EXPECT_TRUE(saw_trees);
  bool saw_hist = false;
  for (const auto& row : snap.histograms) {
    if (row.name == "gbt.tree_ms") {
      saw_hist = true;
      EXPECT_EQ(row.count, 5u);
    }
  }
  EXPECT_TRUE(saw_hist);
  obs::set_enabled(false);
  obs::TraceLog::global().reset();
  obs::MetricsRegistry::global().reset();
}

}  // namespace
}  // namespace iotax
