// The zero-copy data path: MatrixView/DatasetView must read the same
// values as the materialized copy they replace, and every consumer
// (binning, GBT, search, ensemble, the taxonomy litmus tests) must
// produce bit-identical output through either path at any thread count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/data/footprint.hpp"
#include "src/data/matrix.hpp"
#include "src/data/split.hpp"
#include "src/data/view.hpp"
#include "src/ml/binning.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/search.hpp"
#include "src/taxonomy/duplicates.hpp"
#include "src/taxonomy/feature_sets.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

data::Matrix make_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  data::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(0.0, 100.0);
  }
  return m;
}

std::vector<double> make_targets(const data::Matrix& x, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> y(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    y[r] = x(r, 0) * 0.01 - x(r, x.cols() - 1) * 0.02 + rng.normal(0.0, 0.1);
  }
  return y;
}

// Run `fn` under IOTAX_THREADS=t and restore the old value afterwards.
template <typename F>
auto with_threads(const char* t, F&& fn) {
  const char* old = std::getenv("IOTAX_THREADS");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;
  ::setenv("IOTAX_THREADS", t, 1);
  auto result = fn();
  if (had) {
    ::setenv("IOTAX_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("IOTAX_THREADS");
  }
  return result;
}

// ------------------------------------------------------- view basics

TEST(MatrixView, IdentityViewReadsBase) {
  const auto m = make_matrix(10, 4, 1);
  const data::MatrixView v = m;
  EXPECT_EQ(v.rows(), 10u);
  EXPECT_EQ(v.cols(), 4u);
  EXPECT_TRUE(v.rows_are_spans());
  for (std::size_t r = 0; r < v.rows(); ++r) {
    for (std::size_t c = 0; c < v.cols(); ++c) EXPECT_EQ(v(r, c), m(r, c));
  }
}

TEST(MatrixView, RowSubsetRemapsIndices) {
  const auto m = make_matrix(10, 3, 2);
  const std::vector<std::size_t> rows = {7, 0, 7, 3};
  const data::MatrixView v(m, rows);
  ASSERT_EQ(v.rows(), 4u);
  EXPECT_EQ(v.base_row(0), 7u);
  EXPECT_EQ(v(0, 1), m(7, 1));
  EXPECT_EQ(v(2, 2), m(7, 2));  // repeated indices are allowed
  EXPECT_EQ(v(3, 0), m(3, 0));
}

TEST(MatrixView, ContiguousColumnPrefixKeepsSpanFastPath) {
  const auto m = make_matrix(6, 5, 3);
  const std::vector<std::size_t> rows = {4, 1};
  const std::vector<std::size_t> cols = {0, 1, 2};
  const data::MatrixView v(m, rows, cols);
  EXPECT_TRUE(v.rows_are_spans());
  std::vector<double> scratch;
  const auto row = v.row(0, scratch);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_TRUE(scratch.empty());  // fast path never touched scratch
  EXPECT_EQ(row[2], m(4, 2));
}

TEST(MatrixView, NonContiguousColumnsGatherIntoScratch) {
  const auto m = make_matrix(6, 5, 4);
  const std::vector<std::size_t> rows = {2, 5};
  const std::vector<std::size_t> cols = {0, 1, 4};  // skips 2 and 3
  const data::MatrixView v(m, rows, cols);
  EXPECT_FALSE(v.rows_are_spans());
  std::vector<double> scratch;
  const auto row = v.row(1, scratch);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], m(5, 0));
  EXPECT_EQ(row[2], m(5, 4));
}

TEST(MatrixView, TakeRowsComposesWithExistingMap) {
  const auto m = make_matrix(10, 2, 5);
  const std::vector<std::size_t> outer = {9, 8, 7, 6};
  const data::MatrixView v(m, outer);
  const std::vector<std::size_t> inner = {3, 0};
  std::vector<std::size_t> storage;
  const auto sub = v.take_rows(inner, &storage);
  ASSERT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.base_row(0), 6u);  // outer[inner[0]]
  EXPECT_EQ(sub.base_row(1), 9u);
  EXPECT_EQ(sub(0, 1), m(6, 1));
}

TEST(MatrixView, OutOfRangeIndicesThrow) {
  const auto m = make_matrix(4, 3, 6);
  const std::vector<std::size_t> bad_rows = {4};
  const std::vector<std::size_t> bad_cols = {3};
  const std::vector<std::size_t> ok = {0};
  EXPECT_THROW(data::MatrixView(m, bad_rows), std::out_of_range);
  EXPECT_THROW(data::MatrixView(m, ok, bad_cols), std::out_of_range);
}

TEST(MatrixView, MaterializeEqualsElementwiseRead) {
  const auto m = make_matrix(8, 4, 7);
  const std::vector<std::size_t> rows = {6, 2, 4};
  const std::vector<std::size_t> cols = {3, 1};
  const data::MatrixView v(m, rows, cols);
  const auto copy = v.materialize();
  ASSERT_EQ(copy.rows(), 3u);
  ASSERT_EQ(copy.cols(), 2u);
  for (std::size_t r = 0; r < copy.rows(); ++r) {
    for (std::size_t c = 0; c < copy.cols(); ++c) {
      EXPECT_EQ(copy(r, c), v(r, c));
    }
  }
}

TEST(MatrixColumn, StridedColumnViewMatchesElements) {
  const auto m = make_matrix(5, 3, 8);
  const auto col = m.col(1);
  ASSERT_EQ(col.size(), 5u);
  for (std::size_t r = 0; r < 5; ++r) EXPECT_EQ(col[r], m(r, 1));
  const auto vec = col.to_vector();
  ASSERT_EQ(vec.size(), 5u);
  EXPECT_EQ(vec[3], m(3, 1));
  EXPECT_THROW(m.col(3), std::out_of_range);
}

TEST(Gather, GathersMappedElements) {
  const std::vector<double> src = {10.0, 11.0, 12.0, 13.0};
  const std::vector<std::size_t> rows = {3, 0, 3};
  std::vector<double> out;
  data::gather(src, rows, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 13.0);
  EXPECT_EQ(out[1], 10.0);
  EXPECT_EQ(out[2], 13.0);
}

// ------------------------------------------------- footprint gauges

TEST(Footprint, TracksMatrixLifetime) {
  const auto before = data::footprint::live_bytes();
  {
    data::Matrix m(100, 10);
    EXPECT_EQ(data::footprint::live_bytes(),
              before + 100 * 10 * sizeof(double));
    EXPECT_GE(data::footprint::peak_bytes(), data::footprint::live_bytes());
    data::Matrix moved = std::move(m);  // moves must not double-count
    EXPECT_EQ(data::footprint::live_bytes(),
              before + 100 * 10 * sizeof(double));
  }
  EXPECT_EQ(data::footprint::live_bytes(), before);
}

TEST(Footprint, ViewsAreFree) {
  const auto m = make_matrix(50, 8, 9);
  const auto before = data::footprint::live_bytes();
  std::vector<std::size_t> rows(25);
  std::iota(rows.begin(), rows.end(), 0);
  const data::MatrixView v(m, rows);
  EXPECT_EQ(data::footprint::live_bytes(), before);
  const auto copy = v.materialize();  // the copy is what costs bytes
  EXPECT_EQ(data::footprint::live_bytes(),
            before + copy.rows() * copy.cols() * sizeof(double));
}

// ------------------------------------- view == copy, bit for bit

TEST(ViewEquivalence, BinnedMatrixCodesMatchCopyPath) {
  const auto m = make_matrix(200, 5, 10);
  const std::vector<std::size_t> rows = {150, 3, 77, 12, 99, 150, 0, 60};
  const data::MatrixView v(m, rows);
  const auto copy = v.materialize();
  const ml::BinnedMatrix via_view(v, 16);
  const ml::BinnedMatrix via_copy(copy, 16);
  ASSERT_EQ(via_view.rows(), via_copy.rows());
  ASSERT_EQ(via_view.cols(), via_copy.cols());
  for (std::size_t c = 0; c < via_view.cols(); ++c) {
    EXPECT_EQ(via_view.n_bins(c), via_copy.n_bins(c));
    for (std::size_t r = 0; r < via_view.rows(); ++r) {
      EXPECT_EQ(via_view.code(r, c), via_copy.code(r, c));
    }
  }
}

TEST(ViewEquivalence, GbtTrainedOnViewMatchesCopyAtAnyThreadCount) {
  const auto x = make_matrix(300, 4, 11);
  const auto y = make_targets(x, 12);
  std::vector<std::size_t> rows(200);
  std::iota(rows.begin(), rows.end(), 50);
  std::vector<double> y_sub(200);
  for (std::size_t i = 0; i < 200; ++i) y_sub[i] = y[rows[i]];
  const data::MatrixView v(x, rows);
  const auto copy = v.materialize();
  for (const char* threads : {"1", "4"}) {
    const auto via_view = with_threads(threads, [&] {
      ml::GbtParams p;
      p.n_estimators = 12;
      ml::GradientBoostedTrees model(p);
      model.fit(v, y_sub);
      return model.predict(x);
    });
    const auto via_copy = with_threads(threads, [&] {
      ml::GbtParams p;
      p.n_estimators = 12;
      ml::GradientBoostedTrees model(p);
      model.fit(copy, y_sub);
      return model.predict(x);
    });
    ASSERT_EQ(via_view.size(), via_copy.size());
    for (std::size_t i = 0; i < via_view.size(); ++i) {
      EXPECT_EQ(via_view[i], via_copy[i]);  // exact: bit-identical
    }
  }
}

TEST(ViewEquivalence, HalvingSearchOnViewMatchesCopy) {
  const auto x = make_matrix(240, 3, 13);
  const auto y = make_targets(x, 14);
  std::vector<std::size_t> train_rows(180);
  std::iota(train_rows.begin(), train_rows.end(), 0);
  std::vector<std::size_t> val_rows(60);
  std::iota(val_rows.begin(), val_rows.end(), 180);
  std::vector<double> y_train(180);
  std::vector<double> y_val(60);
  for (std::size_t i = 0; i < 180; ++i) y_train[i] = y[i];
  for (std::size_t i = 0; i < 60; ++i) y_val[i] = y[180 + i];
  const data::MatrixView x_train(x, train_rows);
  const data::MatrixView x_val(x, val_rows);
  const auto x_train_copy = x_train.materialize();
  const auto x_val_copy = x_val.materialize();

  ml::GbtGrid grid;
  grid.n_estimators = {4, 8};
  grid.max_depth = {3, 5};
  grid.subsample = {0.8};
  grid.colsample = {0.9};
  ml::HalvingParams hp;
  hp.initial_configs = 4;
  hp.seed = 21;
  const auto run = [&](const data::MatrixView& xt, const data::MatrixView& xv) {
    return ml::successive_halving(grid, hp, xt, y_train, xv, y_val);
  };
  for (const char* threads : {"1", "4"}) {
    const auto a = with_threads(threads, [&] { return run(x_train, x_val); });
    const auto b = with_threads(
        threads, [&] { return run(x_train_copy, x_val_copy); });
    ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
    EXPECT_EQ(a.best.val_error, b.best.val_error);
    for (std::size_t i = 0; i < a.evaluated.size(); ++i) {
      EXPECT_EQ(a.evaluated[i].val_error, b.evaluated[i].val_error);
    }
  }
}

TEST(ViewEquivalence, EnsembleOnViewMatchesCopy) {
  const auto x = make_matrix(150, 3, 15);
  const auto y = make_targets(x, 16);
  std::vector<std::size_t> rows(100);
  std::iota(rows.begin(), rows.end(), 25);
  std::vector<double> y_sub(100);
  for (std::size_t i = 0; i < 100; ++i) y_sub[i] = y[rows[i]];
  const data::MatrixView v(x, rows);
  const auto copy = v.materialize();
  ml::EnsembleParams params;
  params.size = 2;
  params.epochs = 3;
  const auto run = [&](const data::MatrixView& xt) {
    ml::DeepEnsemble ens(params);
    ens.fit(xt, y_sub);
    return ens.predict_uncertainty(x);
  };
  for (const char* threads : {"1", "4"}) {
    const auto a = with_threads(threads, [&] { return run(v); });
    const auto b = with_threads(threads, [&] { return run(copy); });
    for (std::size_t i = 0; i < a.mean.size(); ++i) {
      EXPECT_EQ(a.mean[i], b.mean[i]);
      EXPECT_EQ(a.epistemic[i], b.epistemic[i]);
    }
  }
}

// ------------------------------------------------- DatasetView

data::Dataset make_small_dataset(std::size_t n) {
  data::Dataset ds;
  ds.system_name = "test";
  data::Table t({"f1", "f2"});
  for (std::size_t i = 0; i < n; ++i) {
    t.add_row(std::vector<double>{static_cast<double>(i),
                                  static_cast<double>(i % 3)});
    data::JobMeta m;
    m.job_id = i;
    m.app_id = i % 4;
    m.config_id = i % 2;
    m.start_time = static_cast<double>(i) * 10.0;
    m.end_time = m.start_time + 5.0;
    m.log_fa = 1.5;
    ds.meta.push_back(m);
    ds.target.push_back(m.log_throughput());
  }
  ds.features = t;
  return ds;
}

TEST(DatasetView, WindowMatchesDatasetTake) {
  const auto ds = make_small_dataset(20);
  const std::vector<std::size_t> rows = {15, 2, 9};
  const data::DatasetView v(ds, rows);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.meta(0).job_id, 15u);
  EXPECT_EQ(v.target(1), ds.target[2]);
  const auto copy = v.materialize();
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy.meta[2].job_id, 9u);
  EXPECT_DOUBLE_EQ(copy.features.at(0, 0), 15.0);
}

TEST(DatasetView, RowsInWindowAreViewLocal) {
  const auto ds = make_small_dataset(20);
  const std::vector<std::size_t> rows = {18, 3, 12};  // times 180, 30, 120
  const data::DatasetView v(ds, rows);
  const auto in = v.rows_in_window(100.0, 200.0);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(in[0], 0u);  // view row 0 (base 18, t=180)
  EXPECT_EQ(in[1], 2u);  // view row 2 (base 12, t=120)
}

TEST(DatasetView, DuplicateSetsOnViewMatchMaterializedCopy) {
  auto ds = make_small_dataset(24);
  // Make rows with equal (app_id, config_id) true duplicates.
  std::vector<std::size_t> rows(12);
  std::iota(rows.begin(), rows.end(), 6);
  const data::DatasetView v(ds, rows);
  const auto copy = v.materialize();
  const auto via_view = taxonomy::find_duplicate_sets(v);
  const auto via_copy = taxonomy::find_duplicate_sets(copy);
  ASSERT_EQ(via_view.size(), via_copy.size());
  for (std::size_t s = 0; s < via_view.size(); ++s) {
    EXPECT_EQ(via_view[s].rows, via_copy[s].rows);  // both view-local
  }
}

TEST(FeatureMatrix, ViewRowsMatchMaterializedDataset) {
  const auto ds = make_small_dataset(16);
  const std::vector<std::size_t> rows = {11, 4, 8};
  const data::DatasetView v(ds, rows);
  const auto copy = v.materialize();
  // kPosix etc. need the full counter schema, so compare targets (the
  // same gather path feature_matrix uses).
  const auto t_view = taxonomy::targets(v);
  const auto t_copy = taxonomy::targets(copy);
  ASSERT_EQ(t_view.size(), t_copy.size());
  for (std::size_t i = 0; i < t_view.size(); ++i) {
    EXPECT_EQ(t_view[i], t_copy[i]);
  }
}

// ----------------------------------------- split/validate edge cases

TEST(Split, GroupedSplitAllTrainFraction) {
  const auto ds = make_small_dataset(40);
  util::Rng rng(4);
  const auto s = data::grouped_random_split(ds, 1.0, 0.0, rng);
  EXPECT_EQ(s.train.size(), 40u);
  EXPECT_TRUE(s.val.empty());
  EXPECT_TRUE(s.test.empty());
}

TEST(Split, GroupedSplitAllTestFraction) {
  const auto ds = make_small_dataset(40);
  util::Rng rng(5);
  const auto s = data::grouped_random_split(ds, 0.0, 0.0, rng);
  EXPECT_TRUE(s.train.empty());
  EXPECT_TRUE(s.val.empty());
  EXPECT_EQ(s.test.size(), 40u);
}

TEST(Split, GroupedSplitNeverStraddlesTrainTest) {
  const auto ds = make_small_dataset(60);  // 8 (app,config) groups
  util::Rng rng(6);
  const auto s = data::grouped_random_split(ds, 0.5, 0.25, rng);
  EXPECT_EQ(s.train.size() + s.val.size() + s.test.size(), 60u);
  std::vector<int> side(ds.size(), -1);
  for (const auto i : s.train) side[i] = 0;
  for (const auto i : s.val) side[i] = 1;
  for (const auto i : s.test) side[i] = 2;
  for (std::size_t a = 0; a < ds.size(); ++a) {
    ASSERT_NE(side[a], -1);
    for (std::size_t b = a + 1; b < ds.size(); ++b) {
      if (ds.meta[a].app_id == ds.meta[b].app_id &&
          ds.meta[a].config_id == ds.meta[b].config_id) {
        EXPECT_EQ(side[a], side[b]);
      }
    }
  }
}

TEST(Dataset, ValidateAcceptsEmptyDataset) {
  data::Dataset ds;
  ds.features = data::Table({"f1"});
  EXPECT_NO_THROW(ds.validate());
}

TEST(Dataset, ValidateAcceptsSingleRowDataset) {
  const auto ds = make_small_dataset(1);
  EXPECT_NO_THROW(ds.validate());
}

TEST(Dataset, ValidateCatchesSingleRowMismatch) {
  auto ds = make_small_dataset(1);
  ds.target[0] += 0.5;
  EXPECT_THROW(ds.validate(), std::logic_error);
}

}  // namespace
}  // namespace iotax
