// Model persistence: saved models must restore bit-identical predictions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "src/ml/ensemble.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/linear.hpp"
#include "src/ml/nn.hpp"
#include "src/ml/registry.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

Xy make_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(n, 5);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 5; ++c) d.x(i, c) = rng.uniform(-3.0, 3.0);
    d.y[i] = std::sin(d.x(i, 0)) + 0.3 * d.x(i, 1) * d.x(i, 2) +
             rng.normal(0.0, 0.05);
  }
  return d;
}

TEST(GbtSerialize, RoundTripPredictionsIdentical) {
  const auto train = make_data(800, 1);
  const auto probe = make_data(200, 2);
  ml::GbtParams p;
  p.n_estimators = 40;
  p.max_depth = 5;
  p.subsample = 0.8;
  ml::GradientBoostedTrees model(p);
  model.fit(train.x, train.y);

  std::stringstream buf;
  model.save(buf);
  const auto loaded = ml::GradientBoostedTrees::load(buf);
  EXPECT_EQ(loaded.n_trees(), model.n_trees());
  EXPECT_EQ(loaded.params().n_estimators, p.n_estimators);
  const auto a = model.predict(probe.x);
  const auto b = loaded.predict(probe.x);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
  EXPECT_EQ(loaded.feature_importances(), model.feature_importances());
}

TEST(GbtSerialize, SaveUnfittedThrows) {
  ml::GradientBoostedTrees model;
  std::stringstream buf;
  EXPECT_THROW(model.save(buf), std::logic_error);
}

TEST(GbtSerialize, LoadRejectsGarbage) {
  std::stringstream buf("not a model at all");
  EXPECT_THROW(ml::GradientBoostedTrees::load(buf), std::runtime_error);
}

TEST(GbtSerialize, LoadRejectsWrongVersion) {
  std::stringstream buf("iotax-gbt 9\n");
  EXPECT_THROW(ml::GradientBoostedTrees::load(buf), std::runtime_error);
}

TEST(GbtSerialize, LoadDetectsOutOfRangeNodes) {
  const auto train = make_data(200, 3);
  ml::GradientBoostedTrees model({.n_estimators = 3, .max_depth = 3});
  model.fit(train.x, train.y);
  std::stringstream buf;
  model.save(buf);
  auto text = buf.str();
  // Corrupt a feature index to something huge.
  const auto pos = text.find("\n0 ");
  if (pos != std::string::npos) {
    text.replace(pos, 3, "\n99 ");
    std::stringstream corrupted(text);
    EXPECT_THROW(ml::GradientBoostedTrees::load(corrupted),
                 std::runtime_error);
  }
}

TEST(MlpSerialize, RoundTripPredictionsIdentical) {
  const auto train = make_data(600, 4);
  const auto probe = make_data(100, 5);
  ml::MlpParams p;
  p.hidden = {24, 16};
  p.epochs = 10;
  ml::Mlp model(p);
  model.fit(train.x, train.y);

  std::stringstream buf;
  model.save(buf);
  const auto loaded = ml::Mlp::load(buf);
  const auto a = model.predict(probe.x);
  const auto b = loaded.predict(probe.x);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
  EXPECT_EQ(loaded.params().hidden, p.hidden);
}

TEST(MlpSerialize, NllHeadSurvivesRoundTrip) {
  const auto train = make_data(600, 6);
  const auto probe = make_data(50, 7);
  ml::MlpParams p;
  p.hidden = {16};
  p.epochs = 10;
  p.nll_head = true;
  ml::Mlp model(p);
  model.fit(train.x, train.y);
  std::stringstream buf;
  model.save(buf);
  const auto loaded = ml::Mlp::load(buf);
  const auto a = model.predict_dist(probe.x);
  const auto b = loaded.predict_dist(probe.x);
  for (std::size_t i = 0; i < a.mean.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.mean[i], b.mean[i]);
    ASSERT_DOUBLE_EQ(a.variance[i], b.variance[i]);
  }
}

TEST(MlpSerialize, LoadRejectsGarbage) {
  std::stringstream buf("iotax-mlp 2\n");
  EXPECT_THROW(ml::Mlp::load(buf), std::runtime_error);
  std::stringstream buf2("nonsense");
  EXPECT_THROW(ml::Mlp::load(buf2), std::runtime_error);
}

TEST(MlpSerialize, SaveUnfittedThrows) {
  ml::Mlp model;
  std::stringstream buf;
  EXPECT_THROW(model.save(buf), std::logic_error);
}

TEST(LinearSerialize, RoundTripPredictionsIdentical) {
  const auto train = make_data(400, 8);
  const auto probe = make_data(80, 9);
  ml::LinearRegressor model(0.5, /*log_transform=*/true);
  model.fit(train.x, train.y);
  std::stringstream buf;
  model.save(buf);
  const auto loaded = ml::LinearRegressor::load(buf);
  EXPECT_EQ(loaded.coefficients(), model.coefficients());
  EXPECT_DOUBLE_EQ(loaded.intercept(), model.intercept());
  const auto a = model.predict(probe.x);
  const auto b = loaded.predict(probe.x);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(MeanSerialize, RoundTripPredictionsIdentical) {
  const auto train = make_data(100, 10);
  ml::MeanRegressor model;
  model.fit(train.x, train.y);
  std::stringstream buf;
  model.save(buf);
  const auto loaded = ml::MeanRegressor::load(buf);
  const auto a = model.predict(train.x);
  const auto b = loaded.predict(train.x);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(EnsembleSerialize, RoundTripUncertaintyIdentical) {
  const auto train = make_data(300, 11);
  const auto probe = make_data(60, 12);
  ml::EnsembleParams params;
  params.size = 3;
  params.epochs = 3;
  ml::DeepEnsemble model(params);
  model.fit(train.x, train.y);
  std::stringstream buf;
  model.save(buf);
  const auto loaded = ml::DeepEnsemble::load(buf);
  EXPECT_EQ(loaded.size(), model.size());
  const auto a = model.predict_uncertainty(probe.x);
  const auto b = loaded.predict_uncertainty(probe.x);
  for (std::size_t i = 0; i < a.mean.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.mean[i], b.mean[i]);
    ASSERT_DOUBLE_EQ(a.aleatory[i], b.aleatory[i]);
    ASSERT_DOUBLE_EQ(a.epistemic[i], b.epistemic[i]);
  }
}

// Regressor::load must dispatch on the magic token alone: a deployment
// that only knows "a saved model file" reloads any family.
TEST(UnifiedLoad, DispatchesOnMagicToken) {
  const auto train = make_data(300, 13);
  const auto probe = make_data(40, 14);

  const auto round_trip = [&](const ml::Regressor& model) {
    std::stringstream buf;
    model.save(buf);
    const auto loaded = ml::Regressor::load(buf);
    EXPECT_EQ(loaded->name(), model.name());
    const auto a = model.predict(probe.x);
    const auto b = loaded->predict(probe.x);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
  };

  ml::MeanRegressor mean;
  mean.fit(train.x, train.y);
  round_trip(mean);

  ml::LinearRegressor linear;
  linear.fit(train.x, train.y);
  round_trip(linear);

  ml::GradientBoostedTrees gbt({.n_estimators = 5, .max_depth = 3});
  gbt.fit(train.x, train.y);
  round_trip(gbt);

  ml::MlpParams mp;
  mp.hidden = {8};
  mp.epochs = 3;
  ml::Mlp mlp(mp);
  mlp.fit(train.x, train.y);
  round_trip(mlp);
}

TEST(UnifiedLoad, RejectsUnknownHeaderAndUnseekableGarbage) {
  std::stringstream buf("iotax-frobnicator 1\n");
  EXPECT_THROW(ml::Regressor::load(buf), std::runtime_error);
  std::stringstream empty;
  EXPECT_THROW(ml::Regressor::load(empty), std::runtime_error);
}

// A bad checkpoint must say which file, what it found, and what would
// have been valid — the operator is three shell commands away from the
// fix only if the message carries all three.
TEST(UnifiedLoad, DiagnosticNamesSourceTokenAndKnownMagics) {
  std::stringstream buf("iotax-frobnicator 1\n");
  try {
    ml::Regressor::load(buf, "checkpoints/prod.gbt");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checkpoints/prod.gbt"), std::string::npos) << what;
    EXPECT_NE(what.find("iotax-frobnicator"), std::string::npos) << what;
    for (const auto& magic : ml::known_model_magics()) {
      EXPECT_NE(what.find(magic), std::string::npos) << what;
    }
  }
}

TEST(UnifiedLoad, EmptyStreamDiagnosticIsExplicit) {
  std::stringstream empty;
  try {
    ml::Regressor::load(empty, "empty.bin");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("empty.bin"), std::string::npos) << what;
    EXPECT_NE(what.find("known model magics"), std::string::npos) << what;
  }
}

TEST(UnifiedLoad, LoadRegressorFileReportsMissingPath) {
  try {
    ml::load_regressor_file("/no/such/dir/model.gbt");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/dir/model.gbt"),
              std::string::npos);
  }
}

// --- make_regressor factory --------------------------------------------

TEST(Registry, BuildsEveryAdvertisedFamily) {
  const auto train = make_data(200, 15);
  // Shrink the expensive families so the test stays fast; an absent key
  // keeps the family's default.
  const std::map<std::string, std::string> params = {
      {"classifier", R"({"gbt": {"n_estimators": 5, "max_depth": 3}})"},
      {"ensemble", R"({"size": 2, "epochs": 2})"},
      {"gbt", R"({"n_estimators": 5, "max_depth": 3})"},
      {"mlp", R"({"hidden": [8], "epochs": 2})"},
  };
  // The classifier family only accepts 0/1 targets; binarize at the
  // median so the sweep exercises it like any other family.
  std::vector<double> sorted = train.y;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  std::vector<double> binary(train.y.size());
  for (std::size_t i = 0; i < train.y.size(); ++i) {
    binary[i] = train.y[i] > median ? 1.0 : 0.0;
  }
  for (const auto& family : ml::regressor_names()) {
    const auto it = params.find(family);
    const auto model = ml::make_regressor(
        family, it != params.end() ? it->second : "{}");
    ASSERT_NE(model, nullptr) << family;
    const auto& y = family == "classifier" ? binary : train.y;
    model->fit(train.x, y);
    EXPECT_EQ(model->predict(train.x).size(), y.size()) << family;
  }
}

TEST(Registry, AppliesJsonParams) {
  const auto gbt = ml::make_regressor(
      "gbt", R"({"n_estimators": 7, "max_depth": 2, "seed": 3})");
  const auto train = make_data(200, 16);
  gbt->fit(train.x, train.y);
  EXPECT_NE(gbt->name().find("trees=7"), std::string::npos) << gbt->name();

  const auto mlp = ml::make_regressor(
      "mlp", R"({"hidden": [8, 4], "epochs": 2, "nll_head": true})");
  mlp->fit(train.x, train.y);
  const auto* as_mlp = dynamic_cast<const ml::Mlp*>(mlp.get());
  ASSERT_NE(as_mlp, nullptr);
  EXPECT_EQ(as_mlp->params().hidden, (std::vector<std::size_t>{8, 4}));
  EXPECT_TRUE(as_mlp->params().nll_head);
}

TEST(Registry, FactoryMatchesDirectConstruction) {
  const auto train = make_data(300, 17);
  const auto probe = make_data(50, 18);
  const auto from_factory = ml::make_regressor(
      "gbt", R"({"n_estimators": 10, "max_depth": 4, "seed": 5})");
  from_factory->fit(train.x, train.y);
  ml::GbtParams p;
  p.n_estimators = 10;
  p.max_depth = 4;
  p.seed = 5;
  ml::GradientBoostedTrees direct(p);
  direct.fit(train.x, train.y);
  const auto a = from_factory->predict(probe.x);
  const auto b = direct.predict(probe.x);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Registry, RejectsUnknownFamilyKeyAndMalformedJson) {
  EXPECT_THROW(ml::make_regressor("xgboost"), std::invalid_argument);
  // A typo must never silently train a default model.
  EXPECT_THROW(ml::make_regressor("gbt", R"({"n_estimator": 7})"),
               std::invalid_argument);
  EXPECT_THROW(ml::make_regressor("mean", R"({"anything": 1})"),
               std::invalid_argument);
  EXPECT_THROW(ml::make_regressor("gbt", "{not json"),
               std::invalid_argument);
  EXPECT_THROW(ml::make_regressor("gbt", R"(["list"])"),
               std::invalid_argument);
  EXPECT_THROW(ml::make_regressor("gbt", R"({"n_estimators": -1})"),
               std::invalid_argument);
}

}  // namespace
}  // namespace iotax
