// Model persistence: saved models must restore bit-identical predictions.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/ml/gbt.hpp"
#include "src/ml/nn.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

Xy make_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(n, 5);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 5; ++c) d.x(i, c) = rng.uniform(-3.0, 3.0);
    d.y[i] = std::sin(d.x(i, 0)) + 0.3 * d.x(i, 1) * d.x(i, 2) +
             rng.normal(0.0, 0.05);
  }
  return d;
}

TEST(GbtSerialize, RoundTripPredictionsIdentical) {
  const auto train = make_data(800, 1);
  const auto probe = make_data(200, 2);
  ml::GbtParams p;
  p.n_estimators = 40;
  p.max_depth = 5;
  p.subsample = 0.8;
  ml::GradientBoostedTrees model(p);
  model.fit(train.x, train.y);

  std::stringstream buf;
  model.save(buf);
  const auto loaded = ml::GradientBoostedTrees::load(buf);
  EXPECT_EQ(loaded.n_trees(), model.n_trees());
  EXPECT_EQ(loaded.params().n_estimators, p.n_estimators);
  const auto a = model.predict(probe.x);
  const auto b = loaded.predict(probe.x);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
  EXPECT_EQ(loaded.feature_importances(), model.feature_importances());
}

TEST(GbtSerialize, SaveUnfittedThrows) {
  ml::GradientBoostedTrees model;
  std::stringstream buf;
  EXPECT_THROW(model.save(buf), std::logic_error);
}

TEST(GbtSerialize, LoadRejectsGarbage) {
  std::stringstream buf("not a model at all");
  EXPECT_THROW(ml::GradientBoostedTrees::load(buf), std::runtime_error);
}

TEST(GbtSerialize, LoadRejectsWrongVersion) {
  std::stringstream buf("iotax-gbt 9\n");
  EXPECT_THROW(ml::GradientBoostedTrees::load(buf), std::runtime_error);
}

TEST(GbtSerialize, LoadDetectsOutOfRangeNodes) {
  const auto train = make_data(200, 3);
  ml::GradientBoostedTrees model({.n_estimators = 3, .max_depth = 3});
  model.fit(train.x, train.y);
  std::stringstream buf;
  model.save(buf);
  auto text = buf.str();
  // Corrupt a feature index to something huge.
  const auto pos = text.find("\n0 ");
  if (pos != std::string::npos) {
    text.replace(pos, 3, "\n99 ");
    std::stringstream corrupted(text);
    EXPECT_THROW(ml::GradientBoostedTrees::load(corrupted),
                 std::runtime_error);
  }
}

TEST(MlpSerialize, RoundTripPredictionsIdentical) {
  const auto train = make_data(600, 4);
  const auto probe = make_data(100, 5);
  ml::MlpParams p;
  p.hidden = {24, 16};
  p.epochs = 10;
  ml::Mlp model(p);
  model.fit(train.x, train.y);

  std::stringstream buf;
  model.save(buf);
  const auto loaded = ml::Mlp::load(buf);
  const auto a = model.predict(probe.x);
  const auto b = loaded.predict(probe.x);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
  EXPECT_EQ(loaded.params().hidden, p.hidden);
}

TEST(MlpSerialize, NllHeadSurvivesRoundTrip) {
  const auto train = make_data(600, 6);
  const auto probe = make_data(50, 7);
  ml::MlpParams p;
  p.hidden = {16};
  p.epochs = 10;
  p.nll_head = true;
  ml::Mlp model(p);
  model.fit(train.x, train.y);
  std::stringstream buf;
  model.save(buf);
  const auto loaded = ml::Mlp::load(buf);
  const auto a = model.predict_dist(probe.x);
  const auto b = loaded.predict_dist(probe.x);
  for (std::size_t i = 0; i < a.mean.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.mean[i], b.mean[i]);
    ASSERT_DOUBLE_EQ(a.variance[i], b.variance[i]);
  }
}

TEST(MlpSerialize, LoadRejectsGarbage) {
  std::stringstream buf("iotax-mlp 2\n");
  EXPECT_THROW(ml::Mlp::load(buf), std::runtime_error);
  std::stringstream buf2("nonsense");
  EXPECT_THROW(ml::Mlp::load(buf2), std::runtime_error);
}

TEST(MlpSerialize, SaveUnfittedThrows) {
  ml::Mlp model;
  std::stringstream buf;
  EXPECT_THROW(model.save(buf), std::logic_error);
}

}  // namespace
}  // namespace iotax
