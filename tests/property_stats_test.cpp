// Property-based suites (TEST_P) for the stats layer: distribution
// identities that must hold across the whole parameter space, not just
// hand-picked values.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/stats/descriptive.hpp"
#include "src/stats/distributions.hpp"
#include "src/stats/fitting.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

// ---------------------------------------------------------------- Normal

class NormalProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(NormalProperty, QuantileInvertsCdf) {
  const auto [mean, sd] = GetParam();
  const stats::Normal n(mean, sd);
  for (double p = 0.01; p < 1.0; p += 0.07) {
    EXPECT_NEAR(n.cdf(n.quantile(p)), p, 1e-7);
  }
}

TEST_P(NormalProperty, CdfIsMonotoneAndBounded) {
  const auto [mean, sd] = GetParam();
  const stats::Normal n(mean, sd);
  double prev = 0.0;
  for (double z = -6.0; z <= 6.0; z += 0.25) {
    const double c = n.cdf(mean + z * sd);
    EXPECT_GE(c, prev - 1e-15);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(NormalProperty, PdfIntegratesToOne) {
  const auto [mean, sd] = GetParam();
  const stats::Normal n(mean, sd);
  double integral = 0.0;
  const double step = sd / 50.0;
  for (double x = mean - 8.0 * sd; x < mean + 8.0 * sd; x += step) {
    integral += n.pdf(x + step / 2.0) * step;
  }
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST_P(NormalProperty, SymmetryAroundMean) {
  const auto [mean, sd] = GetParam();
  const stats::Normal n(mean, sd);
  for (double d : {0.3, 1.0, 2.5}) {
    EXPECT_NEAR(n.cdf(mean - d * sd), 1.0 - n.cdf(mean + d * sd), 1e-12);
    EXPECT_NEAR(n.pdf(mean - d * sd), n.pdf(mean + d * sd), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NormalProperty,
    ::testing::Values(std::tuple{0.0, 1.0}, std::tuple{2.5, 0.02},
                      std::tuple{-7.0, 4.0}, std::tuple{1e3, 12.0},
                      std::tuple{0.0, 1e-3}));

// -------------------------------------------------------------- StudentT

class StudentTProperty : public ::testing::TestWithParam<double> {};

TEST_P(StudentTProperty, QuantileInvertsCdf) {
  const stats::StudentT t(GetParam());
  for (double p : {0.005, 0.05, 0.3, 0.5, 0.7, 0.95, 0.995}) {
    EXPECT_NEAR(t.cdf(t.quantile(p)), p, 1e-6);
  }
}

TEST_P(StudentTProperty, HeavierTailsThanNormal) {
  const stats::StudentT t(GetParam());
  const stats::Normal n(0.0, 1.0);
  // P(|T| > 3) must exceed P(|Z| > 3) for any finite df.
  const double t_tail = 2.0 * (1.0 - t.cdf(3.0));
  const double n_tail = 2.0 * (1.0 - n.cdf(3.0));
  EXPECT_GT(t_tail, n_tail);
}

TEST_P(StudentTProperty, PdfSymmetricUnimodal) {
  const stats::StudentT t(GetParam());
  EXPECT_NEAR(t.pdf(1.3), t.pdf(-1.3), 1e-14);
  EXPECT_GT(t.pdf(0.0), t.pdf(0.5));
  EXPECT_GT(t.pdf(0.5), t.pdf(2.0));
}

TEST_P(StudentTProperty, LocationScaleConsistency) {
  const double df = GetParam();
  const stats::StudentT standard(df);
  const stats::StudentT shifted(df, 3.0, 2.0);
  for (double z : {-1.5, 0.0, 0.8}) {
    EXPECT_NEAR(shifted.cdf(3.0 + 2.0 * z), standard.cdf(z), 1e-12);
    EXPECT_NEAR(shifted.pdf(3.0 + 2.0 * z), standard.pdf(z) / 2.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Dfs, StudentTProperty,
                         ::testing::Values(1.0, 2.0, 3.5, 8.0, 30.0, 120.0));

// ------------------------------------------------------------- Quantiles

class QuantileProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantileProperty, BoundsAndMonotonicity) {
  util::Rng rng(GetParam());
  std::vector<double> xs(1 + GetParam() * 13 % 400);
  for (auto& x : xs) x = rng.student_t(3.0);
  double prev = stats::min(xs);
  for (double q = 0.0; q <= 1.0001; q += 0.05) {
    const double v = stats::quantile(xs, std::min(q, 1.0));
    EXPECT_GE(v, prev - 1e-12);
    EXPECT_GE(v, stats::min(xs));
    EXPECT_LE(v, stats::max(xs));
    prev = v;
  }
}

TEST_P(QuantileProperty, MedianMinimisesAbsoluteDeviation) {
  util::Rng rng(GetParam() + 1000);
  std::vector<double> xs(101);
  for (auto& x : xs) x = rng.normal(0.0, 2.0);
  const double med = stats::median(xs);
  const auto total_dev = [&xs](double c) {
    double acc = 0.0;
    for (double x : xs) acc += std::fabs(x - c);
    return acc;
  };
  const double at_median = total_dev(med);
  for (double delta : {-0.5, -0.1, 0.1, 0.5}) {
    EXPECT_LE(at_median, total_dev(med + delta) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ------------------------------------------------------------ Fitting

class TFitProperty : public ::testing::TestWithParam<double> {};

TEST_P(TFitProperty, RecoversScaleAcrossDf) {
  const double df = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(df * 100));
  std::vector<double> xs(15000);
  for (auto& x : xs) x = 0.5 + 0.1 * rng.student_t(df);
  const auto fit = stats::fit_student_t(xs);
  EXPECT_NEAR(fit.loc, 0.5, 0.01);
  EXPECT_NEAR(fit.scale, 0.1, 0.02);
  // Likelihood at the fit must be at least that of the true parameters.
  const double true_ll =
      stats::log_likelihood(stats::StudentT(df, 0.5, 0.1), xs);
  EXPECT_GE(fit.log_likelihood, true_ll - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Dfs, TFitProperty,
                         ::testing::Values(2.5, 4.0, 8.0, 20.0));

// ---------------------------------------------------- Bessel correction

class BesselProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BesselProperty, CorrectedSetSpreadIsUnbiased) {
  const std::size_t k = GetParam();
  util::Rng rng(k * 7 + 1);
  constexpr double kSigma = 0.5;
  std::vector<double> corrected;
  std::vector<double> draws(k);
  for (std::size_t s = 0; s < 40000 / k; ++s) {
    for (auto& d : draws) d = rng.normal(0.0, kSigma);
    const double mean = stats::mean(draws);
    const double bessel = std::sqrt(static_cast<double>(k) /
                                    (static_cast<double>(k) - 1.0));
    for (const auto d : draws) corrected.push_back((d - mean) * bessel);
  }
  EXPECT_NEAR(std::sqrt(stats::variance_population(corrected)), kSigma,
              0.05 * kSigma);
}

INSTANTIATE_TEST_SUITE_P(SetSizes, BesselProperty,
                         ::testing::Values(2u, 3u, 4u, 7u, 15u, 50u));

}  // namespace
}  // namespace iotax
