// Kernel equivalence suite: the AVX2 tier of every src/ml/kernels
// kernel must be BIT-identical to the scalar tier (which is the seed
// code verbatim), across randomized inputs, edge shapes, and the
// IOTAX_KERNELS × IOTAX_THREADS matrix. On machines or builds without
// AVX2 the comparisons still run — dispatch just resolves both sides to
// scalar — so the suite is green (if tautological) on the nosimd CI leg.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <random>
#include <sstream>
#include <utility>
#include <vector>

#include "src/data/matrix.hpp"
#include "src/ml/binning.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/kernels/dispatch.hpp"
#include "src/ml/kernels/forest.hpp"
#include "src/ml/kernels/gemm.hpp"
#include "src/ml/kernels/hist.hpp"
#include "src/ml/nn.hpp"

namespace iotax {
namespace {

namespace kn = ml::kernels;

// Pin the kernel tier for one scope; restores "auto" on exit.
class ScopedKernels {
 public:
  explicit ScopedKernels(const char* policy) {
    ::setenv("IOTAX_KERNELS", policy, 1);
    kn::refresh();
  }
  ~ScopedKernels() {
    ::unsetenv("IOTAX_KERNELS");
    kn::refresh();
  }
};

class ScopedThreads {
 public:
  explicit ScopedThreads(long n) {
    ::setenv("IOTAX_THREADS", std::to_string(n).c_str(), 1);
  }
  ~ScopedThreads() { ::unsetenv("IOTAX_THREADS"); }
};

bool avx2_active_possible() {
  return kn::avx2_compiled() && kn::avx2_supported();
}

// ---------------------------------------------------------------------
// feature_scan: scalar vs AVX2 bit-identity on randomized inputs.

struct ScanCase {
  std::vector<std::uint16_t> col;   // feature-major codes, one per row
  std::vector<std::size_t> order;   // node rows
  std::vector<double> grad;         // gathered per node row
  std::size_t bins;
  kn::FeatureScanParams params;
};

ScanCase random_scan_case(std::mt19937& rng, std::size_t n_rows,
                          std::size_t bins) {
  ScanCase c;
  c.bins = bins;
  std::uniform_int_distribution<int> bin_dist(
      0, static_cast<int>(bins) - 1);
  std::normal_distribution<double> grad_dist(0.0, 3.0);
  c.col.resize(n_rows);
  for (auto& v : c.col) v = static_cast<std::uint16_t>(bin_dist(rng));
  // A shuffled subset of rows, as build_tree's partitioning produces.
  std::vector<std::size_t> all(n_rows);
  for (std::size_t i = 0; i < n_rows; ++i) all[i] = i;
  std::shuffle(all.begin(), all.end(), rng);
  const std::size_t take = n_rows == 0 ? 0 : 1 + rng() % n_rows;
  c.order.assign(all.begin(), all.begin() + static_cast<long>(take));
  c.grad.resize(c.order.size());
  double g_total = 0.0;
  for (auto& g : c.grad) {
    g = grad_dist(rng);
    g_total += g;
  }
  c.params.g_total = g_total;
  c.params.h_total = static_cast<double>(c.order.size());
  c.params.reg_lambda = 1.0;
  c.params.min_child_weight = 1.0;
  c.params.min_split_gain = 0.0;
  c.params.parent_score =
      g_total * g_total / (c.params.h_total + c.params.reg_lambda);
  return c;
}

kn::SplitScan run_scan(const ScanCase& c, const char* policy) {
  ScopedKernels tier(policy);
  return kn::feature_scan(c.col.data(), c.order.data(), c.order.size(),
                          c.grad.data(), c.bins, c.params);
}

void expect_scan_identical(const ScanCase& c) {
  const auto s = run_scan(c, "scalar");
  const auto v = run_scan(c, "avx2");
  EXPECT_EQ(s.valid, v.valid);
  EXPECT_EQ(s.bin, v.bin);
  // Bit comparison, not EXPECT_DOUBLE_EQ: the contract is identity.
  EXPECT_EQ(std::memcmp(&s.gain, &v.gain, sizeof(double)), 0)
      << "scalar=" << s.gain << " avx2=" << v.gain;
}

TEST(KernelsHist, ScalarVsAvx2Randomized) {
  std::mt19937 rng(7);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t rows = 1 + rng() % 400;
    const std::size_t bins = 2 + rng() % 60;
    expect_scan_identical(random_scan_case(rng, rows, bins));
  }
}

TEST(KernelsHist, MaxBinsEdge) {
  std::mt19937 rng(11);
  expect_scan_identical(random_scan_case(rng, 1000, ml::kMaxBins));
}

TEST(KernelsHist, SingleRow) {
  std::mt19937 rng(13);
  expect_scan_identical(random_scan_case(rng, 1, 2));
}

TEST(KernelsHist, EmptyNode) {
  // n == 0: no rows reach this node. Both tiers must report no split.
  std::mt19937 rng(15);
  ScanCase c = random_scan_case(rng, 8, 4);
  c.order.clear();
  c.grad.clear();
  c.params.g_total = 0.0;
  c.params.h_total = 0.0;
  c.params.parent_score = 0.0;
  expect_scan_identical(c);
  EXPECT_FALSE(run_scan(c, "avx2").valid);
}

TEST(KernelsHist, EmptyFeature) {
  // All rows land in bin 0 (a constant feature): no valid split.
  std::mt19937 rng(17);
  ScanCase c = random_scan_case(rng, 64, 4);
  std::fill(c.col.begin(), c.col.end(), std::uint16_t{0});
  expect_scan_identical(c);
  EXPECT_FALSE(run_scan(c, "scalar").valid);
}

TEST(KernelsHist, SparseOffsetBins) {
  // Codes confined to a narrow high window of a wide bin space: bin 0 is
  // untouched (prefix collapse), most 4-bin blocks are empty (skip
  // path), and a long all-empty suffix follows bmax (trim path).
  std::mt19937 rng(29);
  for (int rep = 0; rep < 20; ++rep) {
    ScanCase c = random_scan_case(rng, 48, 256);
    const std::uint16_t lo = static_cast<std::uint16_t>(96 + rng() % 32);
    for (auto& v : c.col) {
      v = static_cast<std::uint16_t>(lo + v % 24);
    }
    expect_scan_identical(c);
  }
}

TEST(KernelsHist, AllRowsInLastBin) {
  // bmin == bmax == bins-1: the sweepable range is empty, so the result
  // must come from the all-empty-prefix evaluation alone.
  std::mt19937 rng(31);
  ScanCase c = random_scan_case(rng, 32, 8);
  std::fill(c.col.begin(), c.col.end(), std::uint16_t{7});
  expect_scan_identical(c);
  EXPECT_FALSE(run_scan(c, "avx2").valid);
}

TEST(KernelsHist, NegativeMinSplitGainZeroChildWeight) {
  // With min_split_gain < 0 and min_child_weight == 0 the all-empty
  // prefix's +0.0 gain is a live candidate at bin 0 — the trimmed sweep
  // must still report exactly what the scalar loop reports.
  std::mt19937 rng(37);
  for (int rep = 0; rep < 20; ++rep) {
    ScanCase c = random_scan_case(rng, 24, 64);
    for (auto& v : c.col) {
      v = static_cast<std::uint16_t>(20 + v % 16);  // bin 0 untouched
    }
    c.params.min_child_weight = 0.0;
    c.params.min_split_gain = -0.5;
    expect_scan_identical(c);
  }
}

TEST(KernelsHist, ScratchInvariantAcrossCalls) {
  // A wide-range scan followed by narrow ones on the same thread: any
  // stale residue from the first scan's bins would corrupt the later
  // histograms if the exit re-zeroing missed a touched bin.
  std::mt19937 rng(41);
  ScanCase wide = random_scan_case(rng, 300, 128);
  expect_scan_identical(wide);
  for (int rep = 0; rep < 10; ++rep) {
    ScanCase narrow = random_scan_case(rng, 16, 128);
    for (auto& v : narrow.col) {
      v = static_cast<std::uint16_t>(v % 128);
    }
    expect_scan_identical(narrow);
  }
}

TEST(KernelsHist, NodeSumDefaultIsSequential) {
  std::mt19937 rng(19);
  std::normal_distribution<double> d(0.0, 1.0);
  std::vector<double> v(1037);
  for (auto& x : v) x = d(rng);
  double ref = 0.0;
  for (const double x : v) ref += x;
  for (const char* policy : {"scalar", "avx2", "auto"}) {
    ScopedKernels tier(policy);
    const double got = kn::node_sum(v.data(), v.size());
    EXPECT_EQ(std::memcmp(&ref, &got, sizeof(double)), 0);
  }
}

TEST(KernelsHist, NodeSumFastMathWithinTolerance) {
  std::mt19937 rng(23);
  std::normal_distribution<double> d(0.0, 1.0);
  std::vector<double> v(2048);
  for (auto& x : v) x = d(rng);
  double ref = 0.0;
  for (const double x : v) ref += x;
  ::setenv("IOTAX_FAST_MATH", "1", 1);
  kn::refresh();
  const double fast = kn::node_sum(v.data(), v.size());
  ::unsetenv("IOTAX_FAST_MATH");
  kn::refresh();
  EXPECT_NEAR(fast, ref, 1e-9 * std::abs(ref) + 1e-12);
}

// ---------------------------------------------------------------------
// PackedForest: traversal vs a reference walk of the source nodes.

using NodeDesc = kn::PackedForest::NodeDesc;

// Build a random tree in Tree::Node form: internal nodes split on a
// random feature/bin, leaves carry random values.
std::vector<NodeDesc> random_tree(std::mt19937& rng, std::size_t n_features,
                                  std::size_t bins, int depth) {
  std::vector<NodeDesc> nodes;
  std::normal_distribution<double> val(0.0, 1.0);
  // Recursive build via explicit stack of (node index, remaining depth).
  nodes.push_back({});
  std::vector<std::pair<int, int>> stack = {{0, depth}};
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    auto& n = nodes[static_cast<std::size_t>(idx)];
    if (d == 0 || rng() % 4 == 0) {  // leaf
      n.feature = -1;
      n.split_bin = -1;
      n.threshold = 0.0;
      n.left = n.right = -1;
      n.value = val(rng);
      continue;
    }
    n.feature = static_cast<int>(rng() % n_features);
    n.split_bin = static_cast<int>(rng() % (bins - 1));
    // Thresholds consistent with a 1-unit-per-bin encoding so value and
    // code traversal route identically.
    n.threshold = static_cast<double>(n.split_bin);
    n.left = static_cast<int>(nodes.size());
    n.right = n.left + 1;
    nodes.push_back({});
    nodes.push_back({});
    stack.push_back({n.left, d - 1});
    stack.push_back({n.right, d - 1});
  }
  return nodes;
}

double reference_codes(const std::vector<NodeDesc>& nodes,
                       const std::uint16_t* row) {
  int idx = 0;
  while (nodes[static_cast<std::size_t>(idx)].feature >= 0) {
    const auto& n = nodes[static_cast<std::size_t>(idx)];
    idx = static_cast<int>(row[n.feature]) <= n.split_bin ? n.left : n.right;
  }
  return nodes[static_cast<std::size_t>(idx)].value;
}

double reference_values(const std::vector<NodeDesc>& nodes,
                        const double* row) {
  int idx = 0;
  while (nodes[static_cast<std::size_t>(idx)].feature >= 0) {
    const auto& n = nodes[static_cast<std::size_t>(idx)];
    idx = row[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes[static_cast<std::size_t>(idx)].value;
}

TEST(KernelsForest, CodesMatchReferenceBothTiers) {
  std::mt19937 rng(29);
  const std::size_t n_features = 9;
  const std::size_t bins = 16;
  std::vector<std::vector<NodeDesc>> trees;
  kn::PackedForest forest;
  for (int t = 0; t < 7; ++t) {
    trees.push_back(random_tree(rng, n_features, bins, 5));
    forest.add_tree(trees.back(), /*with_codes=*/true);
  }
  // Row counts straddling the 8-row vector block and its scalar tail.
  for (const std::size_t n_rows : {1UL, 7UL, 8UL, 9UL, 64UL, 203UL}) {
    std::vector<std::uint16_t> codes(n_rows * n_features);
    for (auto& c : codes) c = static_cast<std::uint16_t>(rng() % bins);
    std::vector<double> expected(n_rows, 0.5);
    for (std::size_t i = 0; i < n_rows; ++i) {
      for (const auto& tree : trees) {
        expected[i] += reference_codes(tree, codes.data() + i * n_features);
      }
    }
    for (const char* policy : {"scalar", "avx2"}) {
      ScopedKernels tier(policy);
      std::vector<double> out(n_rows, 0.5);
      forest.predict_codes(codes.data(), n_features, n_rows, out.data());
      for (std::size_t i = 0; i < n_rows; ++i) {
        EXPECT_EQ(std::memcmp(&expected[i], &out[i], sizeof(double)), 0)
            << "policy=" << policy << " rows=" << n_rows << " i=" << i;
      }
    }
  }
}

TEST(KernelsForest, ValuesMatchReferenceBothTiers) {
  std::mt19937 rng(31);
  const std::size_t n_features = 5;
  std::vector<std::vector<NodeDesc>> trees;
  kn::PackedForest forest;
  for (int t = 0; t < 5; ++t) {
    trees.push_back(random_tree(rng, n_features, 8, 4));
    forest.add_tree(trees.back(), /*with_codes=*/false);
  }
  std::uniform_real_distribution<double> xd(-1.0, 8.0);
  for (const std::size_t n_rows : {1UL, 3UL, 4UL, 5UL, 33UL}) {
    std::vector<double> x(n_rows * n_features);
    for (auto& v : x) v = xd(rng);
    // A NaN feature must route right under both tiers.
    if (n_rows > 2) x[n_features + 1] = std::nan("");
    std::vector<double> expected(n_rows, -0.25);
    for (std::size_t i = 0; i < n_rows; ++i) {
      for (const auto& tree : trees) {
        expected[i] += reference_values(tree, x.data() + i * n_features);
      }
    }
    for (const char* policy : {"scalar", "avx2"}) {
      ScopedKernels tier(policy);
      std::vector<double> out(n_rows, -0.25);
      forest.predict_values(x.data(), n_features, n_rows, out.data());
      for (std::size_t i = 0; i < n_rows; ++i) {
        EXPECT_EQ(std::memcmp(&expected[i], &out[i], sizeof(double)), 0)
            << "policy=" << policy << " rows=" << n_rows << " i=" << i;
      }
    }
  }
}

TEST(KernelsForest, CodeTraversalRejectedWithoutBins) {
  std::mt19937 rng(37);
  kn::PackedForest forest;
  forest.add_tree(random_tree(rng, 3, 4, 2), /*with_codes=*/false);
  std::vector<std::uint16_t> codes(3, 0);
  std::vector<double> out(1, 0.0);
  EXPECT_THROW(forest.predict_codes(codes.data(), 3, 1, out.data()),
               std::logic_error);
}

// ---------------------------------------------------------------------
// dense_forward: scalar vs AVX2 bit-identity across odd shapes.

TEST(KernelsGemm, ScalarVsAvx2Randomized) {
  std::mt19937 rng(41);
  std::normal_distribution<double> d(0.0, 1.0);
  for (const std::size_t n_rows : {1UL, 3UL, 4UL, 5UL, 8UL, 17UL}) {
    for (const std::size_t in_dim : {1UL, 2UL, 13UL, 64UL}) {
      for (const std::size_t out_dim : {1UL, 2UL, 3UL, 64UL}) {
        std::vector<double> in(n_rows * in_dim);
        std::vector<double> w(out_dim * in_dim);
        std::vector<double> bias(out_dim);
        for (auto& v : in) v = d(rng);
        for (auto& v : w) v = d(rng);
        for (auto& v : bias) v = d(rng);
        std::vector<double> out_s(n_rows * out_dim);
        std::vector<double> out_v(n_rows * out_dim);
        {
          ScopedKernels tier("scalar");
          kn::dense_forward(in.data(), n_rows, in_dim, w.data(),
                            bias.data(), out_dim, out_s.data());
        }
        {
          ScopedKernels tier("avx2");
          kn::dense_forward(in.data(), n_rows, in_dim, w.data(),
                            bias.data(), out_dim, out_v.data());
        }
        EXPECT_EQ(std::memcmp(out_s.data(), out_v.data(),
                              out_s.size() * sizeof(double)),
                  0)
            << n_rows << "x" << in_dim << "->" << out_dim;
      }
    }
  }
}

TEST(KernelsGemm, FastMathWithinTolerance) {
  std::mt19937 rng(43);
  std::normal_distribution<double> d(0.0, 1.0);
  const std::size_t n_rows = 16, in_dim = 64, out_dim = 8;
  std::vector<double> in(n_rows * in_dim);
  std::vector<double> w(out_dim * in_dim);
  std::vector<double> bias(out_dim);
  for (auto& v : in) v = d(rng);
  for (auto& v : w) v = d(rng);
  for (auto& v : bias) v = d(rng);
  std::vector<double> ref(n_rows * out_dim);
  std::vector<double> fast(n_rows * out_dim);
  {
    ScopedKernels tier("scalar");
    kn::dense_forward(in.data(), n_rows, in_dim, w.data(), bias.data(),
                      out_dim, ref.data());
  }
  ::setenv("IOTAX_FAST_MATH", "1", 1);
  kn::refresh();
  kn::dense_forward(in.data(), n_rows, in_dim, w.data(), bias.data(),
                    out_dim, fast.data());
  ::unsetenv("IOTAX_FAST_MATH");
  kn::refresh();
  for (std::size_t k = 0; k < ref.size(); ++k) {
    EXPECT_NEAR(fast[k], ref[k], 1e-9 * std::abs(ref[k]) + 1e-12);
  }
}

// ---------------------------------------------------------------------
// Model-level determinism matrix: IOTAX_KERNELS x IOTAX_THREADS must
// not change a single bit of fitted-model predictions.

data::Matrix random_matrix(std::mt19937& rng, std::size_t rows,
                           std::size_t cols) {
  data::Matrix x(rows, cols);
  std::lognormal_distribution<double> d(1.0, 1.5);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) x(r, c) = d(rng);
  }
  return x;
}

TEST(KernelsDeterminism, GbtMatrixBitIdentical) {
  std::mt19937 rng(47);
  const auto x = random_matrix(rng, 300, 7);
  std::vector<double> y(x.rows());
  std::normal_distribution<double> yd(10.0, 2.0);
  for (auto& v : y) v = yd(rng);

  std::vector<double> ref_pred;
  std::vector<double> ref_codes_pred;
  bool first = true;
  for (const char* policy : {"scalar", "avx2", "auto"}) {
    for (const long threads : {1L, 4L}) {
      ScopedKernels tier(policy);
      ScopedThreads tc(threads);
      ml::GbtParams params;
      params.n_estimators = 25;
      params.max_depth = 4;
      ml::GradientBoostedTrees model(params);
      model.fit(x, y);
      const auto pred = model.predict(x);
      const ml::BinnedMatrix binned(x, params.max_bins);
      const auto codes = binned.encode_all(x);
      const auto cpred = model.predict_codes(codes);
      if (first) {
        ref_pred = pred;
        ref_codes_pred = cpred;
        first = false;
        continue;
      }
      ASSERT_EQ(pred.size(), ref_pred.size());
      EXPECT_EQ(std::memcmp(pred.data(), ref_pred.data(),
                            pred.size() * sizeof(double)),
                0)
          << "policy=" << policy << " threads=" << threads;
      EXPECT_EQ(std::memcmp(cpred.data(), ref_codes_pred.data(),
                            cpred.size() * sizeof(double)),
                0)
          << "policy=" << policy << " threads=" << threads;
    }
  }
}

TEST(KernelsDeterminism, MlpMatrixBitIdentical) {
  std::mt19937 rng(53);
  const auto x = random_matrix(rng, 200, 6);
  std::vector<double> y(x.rows());
  std::normal_distribution<double> yd(5.0, 1.0);
  for (auto& v : y) v = yd(rng);

  std::vector<double> ref_pred;
  bool first = true;
  for (const char* policy : {"scalar", "avx2", "auto"}) {
    for (const long threads : {1L, 4L}) {
      ScopedKernels tier(policy);
      ScopedThreads tc(threads);
      ml::MlpParams params;
      params.hidden = {16, 16};
      params.epochs = 3;
      ml::Mlp model(params);
      model.fit(x, y);
      const auto pred = model.predict(x);
      if (first) {
        ref_pred = pred;
        first = false;
        continue;
      }
      ASSERT_EQ(pred.size(), ref_pred.size());
      EXPECT_EQ(std::memcmp(pred.data(), ref_pred.data(),
                            pred.size() * sizeof(double)),
                0)
          << "policy=" << policy << " threads=" << threads;
    }
  }
}

TEST(KernelsDeterminism, GbtSaveLoadPredictBitIdentical) {
  // A loaded model (no split bins) predicts through PackedForest value
  // traversal; it must reproduce the fit-time model's predict() bits
  // under every tier.
  std::mt19937 rng(59);
  const auto x = random_matrix(rng, 150, 5);
  std::vector<double> y(x.rows());
  std::normal_distribution<double> yd(0.0, 1.0);
  for (auto& v : y) v = yd(rng);
  ml::GbtParams params;
  params.n_estimators = 10;
  ml::GradientBoostedTrees model(params);
  model.fit(x, y);
  const auto expected = model.predict(x);
  std::stringstream buf;
  model.save(buf);
  const auto loaded = ml::GradientBoostedTrees::load(buf);
  for (const char* policy : {"scalar", "avx2"}) {
    ScopedKernels tier(policy);
    const auto got = loaded.predict(x);
    EXPECT_EQ(std::memcmp(got.data(), expected.data(),
                          got.size() * sizeof(double)),
              0)
        << "policy=" << policy;
  }
  std::vector<std::uint16_t> codes(x.cols(), 0);
  EXPECT_THROW(loaded.predict_codes(codes), std::logic_error);
}

TEST(KernelsDispatch, PolicyResolution) {
  {
    ScopedKernels tier("scalar");
    EXPECT_EQ(kn::active_tier(), kn::Tier::kScalar);
  }
  {
    ScopedKernels tier("avx2");
    if (avx2_active_possible()) {
      EXPECT_EQ(kn::active_tier(), kn::Tier::kAvx2);
    } else {
      EXPECT_EQ(kn::active_tier(), kn::Tier::kScalar);  // graceful fallback
    }
  }
  {
    ScopedKernels tier("auto");
    EXPECT_EQ(kn::active_tier(),
              avx2_active_possible() ? kn::Tier::kAvx2 : kn::Tier::kScalar);
  }
  EXPECT_FALSE(kn::describe().empty());
  EXPECT_STREQ(kn::tier_name(kn::Tier::kScalar), "scalar");
  EXPECT_STREQ(kn::tier_name(kn::Tier::kAvx2), "avx2");
}

}  // namespace
}  // namespace iotax
