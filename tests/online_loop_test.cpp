// The online learning loop's contracts: Regressor v2 warm-start
// continuation (fit(N) + fit_continue(M) bit-identical to a cold
// fit(N+M) at any IOTAX_THREADS, for every family that supports it),
// the capability query that replaces dynamic_cast probing, registry
// generations under publish/rollback, the streaming log tailer, and the
// windowed drift monitor's taxonomy attribution.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/data/matrix.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/linear.hpp"
#include "src/ml/model.hpp"
#include "src/ml/nn.hpp"
#include "src/ml/registry.hpp"
#include "src/sim/stream_ingest.hpp"
#include "src/taxonomy/online.hpp"
#include "src/telemetry/counters.hpp"
#include "src/telemetry/darshan_log.hpp"
#include "src/telemetry/io_signature.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

Xy make_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(n, 4);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) d.x(i, c) = rng.uniform(0.0, 4.0);
    d.y[i] = std::sin(d.x(i, 0)) + 0.25 * d.x(i, 1) * d.x(i, 2) +
             rng.normal(0.0, 0.05);
  }
  return d;
}

void expect_bit_identical(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    EXPECT_EQ(ba, bb) << "row " << i;
  }
}

/// Run `body` once with IOTAX_THREADS=1 and once =4, restoring the
/// variable afterwards — warm-start equivalence must hold at both.
template <typename Fn>
void for_each_thread_count(Fn body) {
  const char* old = std::getenv("IOTAX_THREADS");
  const std::string saved = old != nullptr ? old : "";
  for (const char* threads : {"1", "4"}) {
    ::setenv("IOTAX_THREADS", threads, 1);
    body(threads);
  }
  if (!saved.empty()) {
    ::setenv("IOTAX_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("IOTAX_THREADS");
  }
}

// -- capability queries ------------------------------------------------------

TEST(FitContinue, CapabilityQueryCoversEveryFamily) {
  ml::MeanRegressor mean;
  EXPECT_FALSE(mean.fit_continue_info().supported);
  EXPECT_STREQ(mean.fit_continue_info().round_unit, "");

  ml::LinearRegressor linear;
  EXPECT_FALSE(linear.fit_continue_info().supported);

  ml::GradientBoostedTrees gbt;
  EXPECT_TRUE(gbt.fit_continue_info().supported);
  EXPECT_STREQ(gbt.fit_continue_info().round_unit, "tree");

  ml::Mlp mlp;
  EXPECT_TRUE(mlp.fit_continue_info().supported);
  EXPECT_STREQ(mlp.fit_continue_info().round_unit, "epoch");

  ml::DeepEnsemble ensemble;
  EXPECT_TRUE(ensemble.fit_continue_info().supported);
  EXPECT_STREQ(ensemble.fit_continue_info().round_unit, "epoch");
}

TEST(FitContinue, UnsupportedFamiliesThrowNamingThemselves) {
  const auto d = make_data(32, 1);
  ml::MeanRegressor mean;
  mean.fit(d.x, d.y);
  try {
    mean.fit_continue(d.x, d.y, 1);
    FAIL() << "mean fit_continue must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("mean"), std::string::npos)
        << e.what();
  }
  ml::LinearRegressor linear;
  linear.fit(d.x, d.y);
  EXPECT_THROW(linear.fit_continue(d.x, d.y, 1), std::logic_error);
}

// -- warm == cold, bit for bit ----------------------------------------------

TEST(FitContinue, GbtWarmEqualsColdAcrossThreadCounts) {
  const auto train = make_data(300, 2);
  const auto probe = make_data(50, 3);
  ml::GbtParams base;
  base.n_estimators = 10;
  base.max_depth = 4;
  base.subsample = 0.8;  // exercises the RNG replay, the hard part
  base.colsample = 0.75;
  base.seed = 99;
  for_each_thread_count([&](const char* threads) {
    auto cold_params = base;
    cold_params.n_estimators = 16;
    ml::GradientBoostedTrees cold(cold_params);
    cold.fit(train.x, train.y);

    ml::GradientBoostedTrees warm(base);
    warm.fit(train.x, train.y);
    warm.fit_continue(train.x, train.y, 6);

    SCOPED_TRACE(std::string("IOTAX_THREADS=") + threads);
    expect_bit_identical(warm.predict(probe.x), cold.predict(probe.x));

    // The continued checkpoint is indistinguishable from the cold one.
    std::ostringstream cold_save, warm_save;
    cold.save(cold_save);
    warm.save(warm_save);
    EXPECT_EQ(warm_save.str(), cold_save.str());
  });
}

TEST(FitContinue, GbtContinuesFromLoadedCheckpoint) {
  const auto train = make_data(300, 2);
  const auto probe = make_data(50, 3);
  ml::GbtParams base;
  base.n_estimators = 10;
  base.max_depth = 4;
  base.subsample = 0.8;
  base.seed = 99;
  ml::GradientBoostedTrees first(base);
  first.fit(train.x, train.y);
  std::stringstream ckpt;
  first.save(ckpt);
  auto loaded = ml::Regressor::load(ckpt);

  auto cold_params = base;
  cold_params.n_estimators = 14;
  ml::GradientBoostedTrees cold(cold_params);
  cold.fit(train.x, train.y);

  // GBT continuation is stateless (re-bin + replay), so it works on a
  // checkpoint loaded in a fresh process just as well as in-memory.
  loaded->fit_continue(train.x, train.y, 4);
  expect_bit_identical(loaded->predict(probe.x), cold.predict(probe.x));
}

TEST(FitContinue, MlpWarmEqualsColdWithDropout) {
  const auto train = make_data(200, 4);
  const auto probe = make_data(40, 5);
  ml::MlpParams base;
  base.hidden = {16, 16};
  base.epochs = 6;
  base.dropout = 0.2;  // dropout RNG stream must resume exactly
  base.batch_size = 32;
  base.seed = 7;
  for_each_thread_count([&](const char* threads) {
    auto cold_params = base;
    cold_params.epochs = 10;
    ml::Mlp cold(cold_params);
    cold.fit(train.x, train.y);

    ml::Mlp warm(base);
    warm.fit(train.x, train.y);
    warm.fit_continue(train.x, train.y, 4);

    SCOPED_TRACE(std::string("IOTAX_THREADS=") + threads);
    expect_bit_identical(warm.predict(probe.x), cold.predict(probe.x));

    std::ostringstream cold_save, warm_save;
    cold.save(cold_save);
    warm.save(warm_save);
    EXPECT_EQ(warm_save.str(), cold_save.str());
  });
}

TEST(FitContinue, MlpLoadedCheckpointRefusesToContinue) {
  const auto train = make_data(100, 4);
  ml::MlpParams params;
  params.hidden = {8};
  params.epochs = 2;
  ml::Mlp mlp(params);
  mlp.fit(train.x, train.y);
  std::stringstream ckpt;
  mlp.save(ckpt);
  auto loaded = ml::Regressor::load(ckpt);
  // Checkpoints do not serialize Adam moments; pretending to resume
  // would silently break the bit-exactness contract, so it throws.
  EXPECT_THROW(loaded->fit_continue(train.x, train.y, 1), std::logic_error);
}

TEST(FitContinue, EnsembleWarmEqualsCold) {
  const auto train = make_data(150, 6);
  const auto probe = make_data(30, 7);
  ml::EnsembleParams base;
  base.size = 2;
  base.epochs = 4;
  base.space.widths = {8, 16};
  base.seed = 5;
  auto cold_params = base;
  cold_params.epochs = 7;
  ml::DeepEnsemble cold(cold_params);
  cold.fit(train.x, train.y);

  ml::DeepEnsemble warm(base);
  warm.fit(train.x, train.y);
  warm.fit_continue(train.x, train.y, 3);

  expect_bit_identical(warm.predict(probe.x), cold.predict(probe.x));
  const auto cold_unc = cold.predict_uncertainty(probe.x);
  const auto warm_unc = warm.predict_uncertainty(probe.x);
  expect_bit_identical(warm_unc.epistemic, cold_unc.epistemic);
}

// -- registry generations ----------------------------------------------------

std::string save_checkpoint(const Xy& d, std::size_t n_estimators,
                            const char* tag) {
  ml::GbtParams p;
  p.n_estimators = n_estimators;
  p.max_depth = 3;
  ml::GradientBoostedTrees model(p);
  model.fit(d.x, d.y);
  const auto path =
      ::testing::TempDir() + "online_loop_registry_" + tag + ".gbt";
  std::ofstream out(path);
  EXPECT_TRUE(out.is_open());
  model.save(out);
  return path;
}

TEST(ModelRegistry, GenerationsAdvanceThroughPublishAndRollback) {
  const auto d = make_data(120, 8);
  const auto path_a = save_checkpoint(d, 6, "a");
  const auto path_b = save_checkpoint(d, 9, "b");

  ml::ModelRegistry registry;
  ASSERT_EQ(registry.add(path_a), 0u);
  auto e1 = registry.entry(0);
  EXPECT_EQ(e1->generation, 1u);
  EXPECT_EQ(e1->source, path_a);
  EXPECT_EQ(e1->params_hash, ml::hash_model_file(path_a));

  // A slot that has never been re-published cannot roll back.
  EXPECT_THROW(registry.rollback(0), std::runtime_error);

  auto candidate = std::shared_ptr<const ml::Regressor>(
      ml::load_regressor_file(path_b));
  const auto gen2 =
      registry.publish(0, candidate, path_b, ml::hash_model_file(path_b));
  EXPECT_EQ(gen2, 2u);
  auto e2 = registry.entry(0);
  EXPECT_EQ(e2->generation, 2u);
  EXPECT_EQ(e2->source, path_b);
  EXPECT_EQ(e2->model, candidate);
  // The displaced entry's snapshot is unaffected by the publish.
  EXPECT_EQ(e1->generation, 1u);
  EXPECT_EQ(e1->source, path_a);

  // Rollback restores the previous publication under a FRESH generation
  // — generations never repeat, so clients can always detect the swap.
  auto e3 = registry.rollback(0);
  EXPECT_EQ(e3->generation, 3u);
  EXPECT_EQ(e3->source, path_a);
  EXPECT_EQ(e3->model, e1->model);
  // Rolling back again toggles to the candidate, one generation later.
  auto e4 = registry.rollback(0);
  EXPECT_EQ(e4->generation, 4u);
  EXPECT_EQ(e4->source, path_b);
  EXPECT_EQ(e4->model, candidate);
}

TEST(ModelRegistry, LoadFailureNamesSlotGenerationAndHash) {
  const auto path = ::testing::TempDir() + "online_loop_registry_bad.gbt";
  {
    std::ofstream out(path);
    out << "not a checkpoint\n";
  }
  ml::ModelRegistry registry;
  try {
    registry.add(path);
    FAIL() << "bad checkpoint must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("registry slot 0"), std::string::npos) << what;
    EXPECT_NE(what.find("generation 1"), std::string::npos) << what;
    EXPECT_NE(what.find(ml::format_params_hash(ml::hash_model_file(path))),
              std::string::npos)
        << what;
  }
  std::remove(path.c_str());
}

TEST(ModelRegistry, ParamsHashIsContentAddressed) {
  const auto path = ::testing::TempDir() + "online_loop_registry_hash.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "iotax";
  }
  const auto h1 = ml::hash_model_file(path);
  EXPECT_EQ(ml::hash_model_file(path), h1);  // deterministic
  {
    std::ofstream out(path, std::ios::binary);
    out << "iotax!";
  }
  EXPECT_NE(ml::hash_model_file(path), h1);  // content-addressed
  const auto rendered = ml::format_params_hash(h1);
  EXPECT_EQ(rendered.size(), 18u);  // "0x" + 16 hex digits
  EXPECT_EQ(rendered.substr(0, 2), "0x");
  std::remove(path.c_str());
  EXPECT_THROW(ml::hash_model_file(path), std::runtime_error);
}

// -- streaming ingest --------------------------------------------------------

telemetry::JobLogRecord stream_record(std::uint64_t job_id,
                                      std::uint64_t app_id) {
  telemetry::IoSignature sig;
  sig.bytes_read = 2.0 * (1 << 30);
  sig.bytes_written = 1.0 * (1 << 30);
  sig.n_procs = 32;
  sig.read_size_frac[5] = 1.0;
  sig.write_size_frac[4] = 1.0;
  sig.seq_read_frac = 0.8;
  sig.seq_write_frac = 0.9;
  sig.files_total = 4.0;
  sig.files_readonly_frac = 0.5;
  sig.files_writeonly_frac = 0.5;
  sig.opens_per_file = 1.0;

  telemetry::JobLogRecord rec;
  rec.job_id = job_id;
  rec.app_id = app_id;
  rec.config_id = 1;
  rec.n_procs = 32;
  rec.nodes = 8;
  rec.start_time = 1000.0 + static_cast<double>(job_id);
  rec.end_time = rec.start_time + 120.0;
  rec.placement_spread = 0.25;
  rec.agg_perf_mib = 800.0;
  rec.posix = telemetry::compute_posix_counters(sig);
  rec.mpiio = telemetry::compute_mpiio_counters(sig);
  return rec;
}

TEST(LogTailer, BuffersPartialRecordsAcrossPolls) {
  const auto path = ::testing::TempDir() + "online_loop_tail.darshan";
  std::remove(path.c_str());

  sim::LogTailer tailer(path);
  EXPECT_TRUE(tailer.poll().empty());  // missing file: nothing appended

  std::ostringstream rec1;
  telemetry::write_record(rec1, stream_record(1, 10));
  const std::string bytes = rec1.str();

  {  // First half of a record: nothing completes, bytes stay buffered.
    std::ofstream out(path, std::ios::binary);
    out << bytes.substr(0, bytes.size() / 2);
  }
  EXPECT_TRUE(tailer.poll().empty());
  EXPECT_EQ(tailer.pending_bytes(), bytes.size() / 2);
  EXPECT_EQ(tailer.bytes_read(), bytes.size() / 2);

  {  // The rest arrives: the record completes.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << bytes.substr(bytes.size() / 2);
  }
  auto records = tailer.poll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].job_id, 1u);
  EXPECT_EQ(records[0].app_id, 10u);
  EXPECT_EQ(tailer.pending_bytes(), 0u);
  EXPECT_EQ(tailer.bytes_read(), bytes.size());

  // Nothing new appended: an idle poll is empty, not a re-read.
  EXPECT_TRUE(tailer.poll().empty());

  {  // Two more records in one append, plus a corrupt one in between.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    telemetry::write_record(out, stream_record(2, 10));
    out << "# stray end outside any record\n# end_of_record\n";
    telemetry::write_record(out, stream_record(3, 11));
  }
  records = tailer.poll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].job_id, 2u);
  EXPECT_EQ(records[1].job_id, 3u);
  EXPECT_GE(tailer.quarantine().total(), 1u);  // the stray terminator
  std::remove(path.c_str());
}

TEST(LogTailer, StreamRecordsBecomeDatasetRows) {
  std::vector<telemetry::JobLogRecord> records = {stream_record(1, 10),
                                                  stream_record(2, 11)};
  const auto step =
      sim::ingest_stream_records(records, nullptr, "online-test");
  EXPECT_EQ(step.dataset.size(), 2u);
  EXPECT_EQ(step.kept_records.size(), 2u);
  EXPECT_EQ(step.quarantine.total(), 0u);

  const auto empty = sim::ingest_stream_records({}, nullptr, "online-test");
  EXPECT_EQ(empty.dataset.size(), 0u);
}

// -- drift monitor -----------------------------------------------------------

TEST(OnlineMonitor, ValidatesParamsAndObservations) {
  taxonomy::OnlineMonitorParams bad;
  bad.window_jobs = 0;
  EXPECT_THROW(taxonomy::OnlineMonitor{bad}, std::invalid_argument);
  taxonomy::OnlineMonitorParams params;
  params.window_jobs = 4;
  taxonomy::OnlineMonitor monitor(params);
  EXPECT_THROW(monitor.observe(1, std::nan(""), 0.0), std::invalid_argument);
}

TEST(OnlineMonitor, AttributesWindowErrorToTaxonomyClasses) {
  taxonomy::OnlineMonitorParams params;
  params.window_jobs = 4;
  params.reference_windows = 1;
  params.min_jobs = 4;
  params.error_ratio_trigger = 1.5;
  taxonomy::OnlineMonitor monitor(params);

  // Reference window: app 1, |error| 0.25 per job -> baseline 0.25
  // (exactly representable, so the attribution arithmetic below is
  // exact). Its attribution is explicitly unusable ("none" confidence).
  for (int i = 0; i < 4; ++i) {
    auto w = monitor.observe(1, 1.0, 1.25);
    if (i < 3) {
      EXPECT_FALSE(w.has_value());
    } else {
      ASSERT_TRUE(w.has_value());
      EXPECT_TRUE(w->reference);
      EXPECT_EQ(w->health.confidence, "none");
      EXPECT_FALSE(w->triggered);
    }
  }
  ASSERT_TRUE(monitor.reference_ready());
  EXPECT_DOUBLE_EQ(monitor.baseline_error(), 0.25);

  // Live window: two OoD jobs (app 2, unseen in the reference) carrying
  // 0.75 each, one in-dist job at the floor (0.25), one in-dist job at
  // 0.75 (0.25 noise + 0.5 drift excess). Total error 2.5: shares are
  // 1.5/2.5, 0.5/2.5, 0.5/2.5 — all exact.
  monitor.observe(2, 2.0, 2.75);
  monitor.observe(2, 2.0, 1.25);
  monitor.observe(1, 1.0, 1.25);
  auto w = monitor.observe(1, 1.0, 0.25);
  ASSERT_TRUE(w.has_value());
  EXPECT_FALSE(w->reference);
  EXPECT_EQ(w->health.confidence, "full");
  EXPECT_DOUBLE_EQ(w->share_ood, 0.6);
  EXPECT_DOUBLE_EQ(w->share_noise, 0.2);
  EXPECT_DOUBLE_EQ(w->share_drift, 0.2);
  // Median |error| of {0.75, 0.75, 0.25, 0.75} is 0.75: ratio 3 >= 1.5.
  EXPECT_DOUBLE_EQ(w->median_abs_error, 0.75);
  EXPECT_DOUBLE_EQ(w->error_ratio, 3.0);
  EXPECT_TRUE(w->triggered);
  EXPECT_TRUE(monitor.any_trigger());
}

TEST(OnlineMonitor, QuietStreamNeverTriggersAndPartialWindowsDegrade) {
  taxonomy::OnlineMonitorParams params;
  params.window_jobs = 4;
  params.reference_windows = 1;
  params.min_jobs = 4;
  taxonomy::OnlineMonitor monitor(params);
  for (int i = 0; i < 4; ++i) monitor.observe(1, 1.0, 1.1);  // reference
  for (int i = 0; i < 4; ++i) monitor.observe(1, 1.0, 1.08);  // quiet
  EXPECT_FALSE(monitor.any_trigger());

  // A flushed partial window reports reduced confidence and cannot
  // trigger, no matter how bad its (under-sampled) numbers look.
  monitor.observe(1, 1.0, 9.0);
  auto w = monitor.flush();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->n_jobs, 1u);
  EXPECT_EQ(w->health.confidence, "reduced");
  EXPECT_TRUE(w->health.degraded);
  EXPECT_GT(w->error_ratio, params.error_ratio_trigger);
  EXPECT_FALSE(w->triggered);
  EXPECT_FALSE(monitor.flush().has_value());  // nothing pending
}

TEST(OnlineMonitor, IsAPureFunctionOfTheObservationStream) {
  taxonomy::OnlineMonitorParams params;
  params.window_jobs = 8;
  params.reference_windows = 2;
  params.min_jobs = 8;
  taxonomy::OnlineMonitor a(params), b(params);
  util::Rng rng(13);
  for (int i = 0; i < 64; ++i) {
    const auto app = static_cast<std::uint64_t>(rng.uniform(0.0, 5.0));
    const double y = rng.uniform(0.0, 3.0);
    const double pred = y + rng.normal(0.0, 0.2);
    a.observe(app, y, pred);
    b.observe(app, y, pred);
  }
  a.flush();
  b.flush();
  ASSERT_EQ(a.windows().size(), b.windows().size());
  for (std::size_t i = 0; i < a.windows().size(); ++i) {
    const auto& wa = a.windows()[i];
    const auto& wb = b.windows()[i];
    EXPECT_EQ(wa.n_jobs, wb.n_jobs);
    EXPECT_EQ(wa.triggered, wb.triggered);
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &wa.median_abs_error, sizeof(ba));
    std::memcpy(&bb, &wb.median_abs_error, sizeof(bb));
    EXPECT_EQ(ba, bb) << "window " << i;
  }
}

}  // namespace
}  // namespace iotax
