// ThreadPool / parallel_for unit suite: the determinism scaffolding for
// every threaded hot path (ensembles, searches, GBT scans, bootstrap).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/parallel.hpp"

namespace iotax {
namespace {

// RAII override of an environment variable. Tests in this binary run on
// one thread, so the process-global setenv/unsetenv is safe here.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(Parallel, ThreadKnobParsesAndClamps) {
  {
    ScopedEnv env("IOTAX_THREADS", "3");
    EXPECT_EQ(util::parallel_threads(), 3u);
  }
  {
    ScopedEnv env("IOTAX_THREADS", "1");
    EXPECT_EQ(util::parallel_threads(), 1u);
  }
  {
    ScopedEnv env("IOTAX_THREADS", "100000");
    EXPECT_EQ(util::parallel_threads(), 256u);
  }
  {
    ScopedEnv env("IOTAX_THREADS", "garbage");
    EXPECT_GE(util::parallel_threads(), 1u);  // falls back to hardware
  }
  {
    ScopedEnv env("IOTAX_THREADS", nullptr);
    EXPECT_GE(util::parallel_threads(), 1u);
  }
}

TEST(Parallel, ZeroLengthRangeRunsNothing) {
  ScopedEnv env("IOTAX_THREADS", "4");
  std::atomic<int> calls{0};
  util::parallel_for(0, [&](std::size_t) { ++calls; });
  util::parallel_for_chunks(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  ScopedEnv env("IOTAX_THREADS", "4");
  constexpr std::size_t kN = 10007;  // prime, so chunks never divide evenly
  std::vector<int> hits(kN, 0);
  util::parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(Parallel, ChunksPartitionTheRange) {
  ScopedEnv env("IOTAX_THREADS", "4");
  constexpr std::size_t kN = 5000;
  std::vector<int> hits(kN, 0);
  util::parallel_for_chunks(
      kN,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        ASSERT_LE(hi, kN);
        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
      },
      16);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(Parallel, MapPreservesSlotOrder) {
  ScopedEnv env("IOTAX_THREADS", "4");
  const auto out = util::parallel_map<double>(
      2500, [](std::size_t i) { return static_cast<double>(i) * 0.5; });
  ASSERT_EQ(out.size(), 2500u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  ScopedEnv env("IOTAX_THREADS", "4");
  EXPECT_THROW(util::parallel_for(
                   4096,
                   [&](std::size_t i) {
                     if (i == 137) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(Parallel, PoolUsableAfterException) {
  ScopedEnv env("IOTAX_THREADS", "4");
  EXPECT_THROW(
      util::parallel_for(1024, [&](std::size_t) {
        throw std::runtime_error("boom");
      }),
      std::runtime_error);
  std::vector<int> hits(1024, 0);
  util::parallel_for(1024, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1);
}

TEST(Parallel, PoolReuseAcrossManyRegions) {
  ScopedEnv env("IOTAX_THREADS", "4");
  std::vector<long> slots(256, 0);
  for (int round = 0; round < 200; ++round) {
    util::parallel_for(slots.size(), [&](std::size_t i) { ++slots[i]; });
  }
  for (std::size_t i = 0; i < slots.size(); ++i) ASSERT_EQ(slots[i], 200);
}

TEST(Parallel, NestedCallsRunSerialInline) {
  ScopedEnv env("IOTAX_THREADS", "4");
  EXPECT_FALSE(util::in_parallel_region());
  constexpr std::size_t kOuter = 48;
  constexpr std::size_t kInner = 64;
  std::vector<int> hits(kOuter * kInner, 0);
  std::atomic<int> nested_regions{0};
  util::parallel_for(kOuter, [&](std::size_t i) {
    if (util::in_parallel_region()) ++nested_regions;
    // The nested region must not re-enter the pool (its workers may all
    // be busy with the enclosing job) — it runs inline and in order.
    util::parallel_for(kInner,
                       [&](std::size_t j) { ++hits[i * kInner + j]; });
  });
  EXPECT_FALSE(util::in_parallel_region());
  EXPECT_EQ(nested_regions.load(), static_cast<int>(kOuter));
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(Parallel, SerialKnobBypassesPool) {
  ScopedEnv env("IOTAX_THREADS", "1");
  const std::size_t before = util::ThreadPool::global().n_workers();
  std::vector<int> hits(4096, 0);
  util::parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  // IOTAX_THREADS=1 must not spawn workers beyond whatever earlier tests
  // already created.
  EXPECT_EQ(util::ThreadPool::global().n_workers(), before);
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1);
}

TEST(Parallel, DedicatedPoolRunsChunks) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.n_workers(), 3u);
  std::vector<int> chunk_hits(64, 0);
  pool.run(64, 4, [&](std::size_t c) { ++chunk_hits[c]; });
  for (std::size_t c = 0; c < chunk_hits.size(); ++c) {
    ASSERT_EQ(chunk_hits[c], 1) << c;
  }
}

}  // namespace
}  // namespace iotax
