#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/stats/bootstrap.hpp"
#include "src/stats/descriptive.hpp"
#include "src/stats/distributions.hpp"
#include "src/stats/fitting.hpp"
#include "src/stats/histogram.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

TEST(Descriptive, MeanAndSum) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::sum(xs), 10.0);
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
}

TEST(Descriptive, KahanSumStaysAccurate) {
  std::vector<double> xs(1000000, 0.1);
  EXPECT_NEAR(stats::sum(xs), 100000.0, 1e-6);
}

TEST(Descriptive, VarianceBesselCorrection) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stats::variance_population(xs), 4.0, 1e-12);
  EXPECT_NEAR(stats::variance(xs), 4.0 * 8.0 / 7.0, 1e-12);
}

TEST(Descriptive, VarianceRequiresTwo) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(stats::variance(one), std::invalid_argument);
  EXPECT_NO_THROW(stats::variance_population(one));
}

TEST(Descriptive, MedianOddEven) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(stats::median(odd), 3.0);
  EXPECT_DOUBLE_EQ(stats::median(even), 2.5);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.5), 1.5);
  EXPECT_NEAR(stats::quantile(xs, 0.25), 0.75, 1e-12);
}

TEST(Descriptive, QuantileRejectsOutOfRange) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(stats::quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(stats::quantile(xs, 1.1), std::invalid_argument);
  EXPECT_THROW(stats::quantile({}, 0.5), std::invalid_argument);
}

TEST(Descriptive, Mad) {
  const std::vector<double> xs = {1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0};
  EXPECT_DOUBLE_EQ(stats::mad(xs), 1.0);
}

TEST(Descriptive, WeightedMean) {
  const std::vector<double> xs = {1.0, 3.0};
  const std::vector<double> w = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::weighted_mean(xs, w), 2.5);
}

TEST(Descriptive, WeightedQuantileMatchesUnweightedForEqualWeights) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  const std::vector<double> w(5, 1.0);
  EXPECT_DOUBLE_EQ(stats::weighted_quantile(xs, w, 0.5), 3.0);
}

TEST(Descriptive, WeightedQuantileHonorsWeights) {
  const std::vector<double> xs = {1.0, 2.0, 100.0};
  const std::vector<double> w = {1.0, 1.0, 98.0};
  EXPECT_DOUBLE_EQ(stats::weighted_quantile(xs, w, 0.5), 100.0);
}

TEST(Descriptive, CorrelationSigns) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(stats::correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(stats::correlation(x, neg), -1.0, 1e-12);
}

TEST(Descriptive, SummaryFields) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const auto s = stats::summarize(xs);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_LT(s.p05, s.p25);
  EXPECT_LT(s.p25, s.p75);
  EXPECT_LT(s.p75, s.p95);
}

TEST(Distributions, NormalPdfPeak) {
  const stats::Normal n(0.0, 1.0);
  EXPECT_NEAR(n.pdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
  EXPECT_NEAR(n.pdf(1.0), n.pdf(-1.0), 1e-15);
}

TEST(Distributions, NormalCdfKnownValues) {
  const stats::Normal n(0.0, 1.0);
  EXPECT_NEAR(n.cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(n.cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(n.cdf(-1.0), 0.15865525, 1e-6);
}

TEST(Distributions, NormalQuantileInvertsCdf) {
  const stats::Normal n(2.0, 3.0);
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.77, 0.99}) {
    EXPECT_NEAR(n.cdf(n.quantile(p)), p, 1e-8);
  }
}

TEST(Distributions, Normal68And95Rules) {
  const stats::Normal n(0.0, 1.0);
  EXPECT_NEAR(n.cdf(1.0) - n.cdf(-1.0), 0.6827, 1e-3);
  EXPECT_NEAR(n.quantile(0.975), 1.95996, 1e-4);
}

TEST(Distributions, NormalRejectsBadStddev) {
  EXPECT_THROW(stats::Normal(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(stats::Normal(0.0, -1.0), std::invalid_argument);
}

TEST(Distributions, LogNormalBasics) {
  const stats::LogNormal ln(0.0, 1.0);
  EXPECT_DOUBLE_EQ(ln.cdf(0.0), 0.0);
  EXPECT_NEAR(ln.cdf(1.0), 0.5, 1e-12);
  EXPECT_NEAR(ln.quantile(0.5), 1.0, 1e-9);
  EXPECT_NEAR(ln.mean(), std::exp(0.5), 1e-12);
}

TEST(Distributions, IncompleteBetaEdges) {
  EXPECT_DOUBLE_EQ(stats::incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats::incomplete_beta(2.0, 3.0, 1.0), 1.0);
  // I_x(1,1) = x.
  EXPECT_NEAR(stats::incomplete_beta(1.0, 1.0, 0.37), 0.37, 1e-10);
}

TEST(Distributions, StudentTCdfKnownValues) {
  // t(df=1) is Cauchy: cdf(1) = 3/4.
  const stats::StudentT t1(1.0);
  EXPECT_NEAR(t1.cdf(1.0), 0.75, 1e-8);
  EXPECT_NEAR(t1.cdf(0.0), 0.5, 1e-12);
  // t(df=10): P(T < 1.812) ~ 0.95 (standard table).
  const stats::StudentT t10(10.0);
  EXPECT_NEAR(t10.cdf(1.812), 0.95, 2e-4);
}

TEST(Distributions, StudentTQuantileInvertsCdf) {
  const stats::StudentT t(5.0, 1.0, 2.0);
  for (double p : {0.025, 0.2, 0.5, 0.8, 0.975}) {
    EXPECT_NEAR(t.cdf(t.quantile(p)), p, 1e-7);
  }
}

TEST(Distributions, StudentTApproachesNormalForLargeDf) {
  const stats::StudentT t(300.0);
  const stats::Normal n(0.0, 1.0);
  for (double x : {-2.0, -0.5, 0.7, 1.9}) {
    EXPECT_NEAR(t.cdf(x), n.cdf(x), 2e-3);
  }
}

TEST(Distributions, StudentTVariance) {
  const stats::StudentT t(5.0, 0.0, 2.0);
  EXPECT_NEAR(t.variance(), 4.0 * 5.0 / 3.0, 1e-12);
  const stats::StudentT t2(2.0);
  EXPECT_THROW(t2.variance(), std::domain_error);
}

TEST(Fitting, NormalFitRecoversParameters) {
  util::Rng rng(101);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(3.0, 0.7);
  const auto fit = stats::fit_normal(xs);
  EXPECT_NEAR(fit.mean, 3.0, 0.02);
  EXPECT_NEAR(fit.stddev, 0.7, 0.02);
}

TEST(Fitting, StudentTFitRecoversDf) {
  util::Rng rng(102);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = 1.0 + 0.5 * rng.student_t(4.0);
  const auto fit = stats::fit_student_t(xs);
  EXPECT_NEAR(fit.loc, 1.0, 0.03);
  EXPECT_NEAR(fit.scale, 0.5, 0.05);
  EXPECT_GT(fit.df, 2.5);
  EXPECT_LT(fit.df, 6.5);
}

TEST(Fitting, StudentTFitOnNormalDataGivesLargeDf) {
  util::Rng rng(103);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);
  const auto fit = stats::fit_student_t(xs);
  EXPECT_GT(fit.df, 25.0);
}

TEST(Fitting, TPreferenceDetectsHeavyTails) {
  util::Rng rng(104);
  std::vector<double> heavy(5000);
  std::vector<double> light(5000);
  for (auto& x : heavy) x = rng.student_t(3.0);
  for (auto& x : light) x = rng.normal();
  EXPECT_GT(stats::t_vs_normal_preference(heavy), 0.01);
  EXPECT_LT(std::fabs(stats::t_vs_normal_preference(light)), 0.01);
}

TEST(Fitting, KsStatisticSmallForCorrectModel) {
  util::Rng rng(105);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);
  const double ks_good = stats::ks_statistic(stats::Normal(0.0, 1.0), xs);
  const double ks_bad = stats::ks_statistic(stats::Normal(1.0, 1.0), xs);
  EXPECT_LT(ks_good, 0.03);
  EXPECT_GT(ks_bad, 0.2);
}

TEST(Histogram, CountsAndClamping) {
  stats::Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps into bin 0
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, DensityIntegratesToOne) {
  util::Rng rng(106);
  stats::Histogram h(-4.0, 4.0, 32);
  for (int i = 0; i < 20000; ++i) h.add(rng.normal());
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    integral += h.density(b) * (h.bin_hi(b) - h.bin_lo(b));
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, BinEdgesMonotone) {
  stats::Histogram h(1.0, 2.0, 4);
  for (std::size_t b = 0; b < h.bins(); ++b) {
    EXPECT_LT(h.bin_lo(b), h.bin_hi(b));
    EXPECT_NEAR(h.bin_center(b), 0.5 * (h.bin_lo(b) + h.bin_hi(b)), 1e-12);
  }
}

TEST(Histogram, LogBinEdges) {
  const auto edges = stats::log_bin_edges(1.0, 1e6, 6);
  ASSERT_EQ(edges.size(), 7u);
  EXPECT_NEAR(edges[0], 1.0, 1e-9);
  EXPECT_NEAR(edges[3], 1e3, 1e-6);
  EXPECT_NEAR(edges[6], 1e6, 1e-3);
}

TEST(Histogram, BinCountsWithEdges) {
  const std::vector<double> edges = {0.0, 1.0, 10.0};
  const std::vector<double> xs = {0.5, 0.9, 5.0, -3.0, 42.0};
  const auto counts = stats::bin_counts(xs, edges);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 3u);  // 0.5, 0.9, -3.0 (clamped)
  EXPECT_EQ(counts[1], 2u);  // 5.0, 42.0 (clamped)
}

TEST(Bootstrap, CiCoversTrueMean) {
  util::Rng rng(107);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  const auto res = stats::bootstrap_ci(
      xs, [](std::span<const double> s) { return stats::mean(s); }, 500, 0.95,
      rng);
  EXPECT_LT(res.lo, 10.0 + 0.3);
  EXPECT_GT(res.hi, 10.0 - 0.3);
  EXPECT_LT(res.lo, res.point);
  EXPECT_GT(res.hi, res.point);
}

TEST(Bootstrap, RejectsBadInput) {
  util::Rng rng(108);
  const auto stat = [](std::span<const double> s) { return stats::mean(s); };
  EXPECT_THROW(stats::bootstrap_ci({}, stat, 10, 0.95, rng),
               std::invalid_argument);
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(stats::bootstrap_ci(xs, stat, 10, 1.5, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace iotax
