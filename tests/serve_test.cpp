// The serving stack: frame codec, bounded MPMC queue, and the daemon
// end to end over a real Unix socket — golden bit-identity against
// offline predictions at IOTAX_THREADS 1 and 4, truncation at every
// byte boundary, admission control, and graceful-drain accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "src/data/matrix.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/registry.hpp"
#include "src/serve/client.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"
#include "src/util/frame.hpp"
#include "src/util/mpmc.hpp"
#include "src/util/quarantine.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

using util::FrameDecode;
using util::FrameHeader;
using util::FrameType;
using util::Reason;

// -- frame codec ------------------------------------------------------------

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Frame, PrimitivesRoundTripBitExact) {
  std::string buf;
  util::put_u16(&buf, 0xBEEF);
  util::put_u32(&buf, 0xDEADBEEFu);
  util::put_u64(&buf, 0x0123456789ABCDEFull);
  util::put_f64(&buf, -0.0);
  util::put_f64(&buf, 1e-308);  // subnormal territory survives transport
  std::size_t pos = 0;
  std::uint16_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
  double d = 0.0, e = 0.0;
  ASSERT_TRUE(util::get_u16(as_bytes(buf), &pos, &a));
  ASSERT_TRUE(util::get_u32(as_bytes(buf), &pos, &b));
  ASSERT_TRUE(util::get_u64(as_bytes(buf), &pos, &c));
  ASSERT_TRUE(util::get_f64(as_bytes(buf), &pos, &d));
  ASSERT_TRUE(util::get_f64(as_bytes(buf), &pos, &e));
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFull);
  EXPECT_TRUE(std::signbit(d));  // -0.0, not 0.0
  EXPECT_EQ(e, 1e-308);
  EXPECT_EQ(pos, buf.size());
  // Reads past the end fail without moving the cursor.
  EXPECT_FALSE(util::get_u16(as_bytes(buf), &pos, &a));
  EXPECT_EQ(pos, buf.size());
}

TEST(Frame, EncodeDecodeRoundTrip) {
  const auto wire = util::encode_frame(FrameType::kPredictRequest,
                                       util::kFlagPredictDist, 42, "payload");
  ASSERT_EQ(wire.size(), FrameHeader::kWireSize + 7);
  const auto dec = util::decode_frame(as_bytes(wire));
  ASSERT_EQ(dec.status, FrameDecode::Status::kOk);
  EXPECT_EQ(dec.header.version, FrameHeader::kVersion);
  EXPECT_EQ(dec.header.type,
            static_cast<std::uint8_t>(FrameType::kPredictRequest));
  EXPECT_EQ(dec.header.flags, util::kFlagPredictDist);
  EXPECT_EQ(dec.header.request_id, 42u);
  EXPECT_EQ(dec.header.payload_len, 7u);
  EXPECT_EQ(dec.consumed, wire.size());
}

TEST(Frame, EveryPrefixNeedsMore) {
  const auto wire =
      util::encode_frame(FrameType::kPredictRequest, 0, 7, "abcdef");
  for (std::size_t n = 0; n < wire.size(); ++n) {
    const auto dec = util::decode_frame(as_bytes(wire).subspan(0, n));
    EXPECT_EQ(dec.status, FrameDecode::Status::kNeedMore) << "prefix " << n;
  }
}

TEST(Frame, BadMagicRejectedFromFirstByte) {
  auto wire = util::encode_frame(FrameType::kPing, 0, 1, "");
  wire[0] = 'X';
  // A wrong protocol is detected on the very first byte, before a full
  // header ever accumulates.
  const auto dec = util::decode_frame(as_bytes(wire).subspan(0, 1));
  EXPECT_EQ(dec.status, FrameDecode::Status::kBad);
  EXPECT_EQ(dec.reason, Reason::kBadMagic);
}

TEST(Frame, BadVersionRejected) {
  auto wire = util::encode_frame(FrameType::kPing, 0, 1, "");
  wire[4] = 9;  // version field, little-endian low byte
  const auto dec = util::decode_frame(as_bytes(wire));
  EXPECT_EQ(dec.status, FrameDecode::Status::kBad);
  EXPECT_EQ(dec.reason, Reason::kBadVersion);
}

TEST(Frame, ImplausiblePayloadLengthRejected) {
  auto wire = util::encode_frame(FrameType::kPing, 0, 1, "");
  const std::uint32_t huge = FrameHeader::kMaxPayload + 1;
  std::memcpy(wire.data() + 16, &huge, sizeof(huge));
  const auto dec = util::decode_frame(as_bytes(wire));
  EXPECT_EQ(dec.status, FrameDecode::Status::kBad);
  EXPECT_EQ(dec.reason, Reason::kImplausibleSize);
}

TEST(Frame, ControlCodecRoundTripAndDefects) {
  serve::ControlRequest req;
  req.request_id = 77;
  req.op = serve::ControlOp::kPromote;
  req.model_index = 3;
  req.min_shadow_requests = 1000;
  const auto wire = serve::encode_control_request(req);
  auto dec = util::decode_frame(as_bytes(wire));
  ASSERT_EQ(dec.status, FrameDecode::Status::kOk);
  ASSERT_EQ(dec.header.type,
            static_cast<std::uint8_t>(FrameType::kControlRequest));
  serve::ControlRequest got;
  serve::ErrorResponse err;
  ASSERT_TRUE(serve::decode_control_request(
      dec.header, as_bytes(wire).subspan(FrameHeader::kWireSize), &got, &err));
  EXPECT_EQ(got.request_id, 77u);
  EXPECT_EQ(got.op, serve::ControlOp::kPromote);
  EXPECT_EQ(got.model_index, 3);
  EXPECT_EQ(got.min_shadow_requests, 1000u);

  serve::ControlResponse resp;
  resp.request_id = 77;
  resp.ok = true;
  resp.generation = 9;
  resp.shadow_requests = 1234;
  resp.shadow_diverged = 5;
  resp.max_abs_divergence = 0.125;
  resp.detail = "promoted candidate.gbt as generation 9";
  const auto rwire = serve::encode_control_response(resp);
  dec = util::decode_frame(as_bytes(rwire));
  ASSERT_EQ(dec.status, FrameDecode::Status::kOk);
  serve::ControlResponse rgot;
  ASSERT_TRUE(serve::decode_control_response(
      dec.header, as_bytes(rwire).subspan(FrameHeader::kWireSize), &rgot));
  EXPECT_TRUE(rgot.ok);
  EXPECT_EQ(rgot.generation, 9u);
  EXPECT_EQ(rgot.shadow_requests, 1234u);
  EXPECT_EQ(rgot.shadow_diverged, 5u);
  EXPECT_EQ(rgot.max_abs_divergence, 0.125);
  EXPECT_EQ(rgot.detail, resp.detail);

  // Defects carry typed reasons, like every other payload codec.
  {  // Short payload: the fixed fields do not even fit.
    const auto bad = util::encode_frame(FrameType::kControlRequest, 0, 1,
                                        std::string(7, '\0'));
    dec = util::decode_frame(as_bytes(bad));
    ASSERT_EQ(dec.status, FrameDecode::Status::kOk);
    EXPECT_FALSE(serve::decode_control_request(
        dec.header, as_bytes(bad).subspan(FrameHeader::kWireSize), &got,
        &err));
    EXPECT_EQ(err.reason, Reason::kTruncated);
  }
  {  // Trailing garbage after the fixed fields.
    const auto bad = util::encode_frame(FrameType::kControlRequest, 0, 1,
                                        std::string(13, '\0'));
    dec = util::decode_frame(as_bytes(bad));
    EXPECT_FALSE(serve::decode_control_request(
        dec.header, as_bytes(bad).subspan(FrameHeader::kWireSize), &got,
        &err));
    EXPECT_EQ(err.reason, Reason::kSizeMismatch);
  }
  {  // Unknown op (0 and one past kStatus are both outside the enum).
    for (const std::uint16_t op : {std::uint16_t{0}, std::uint16_t{4}}) {
      std::string payload;
      util::put_u16(&payload, op);
      util::put_u16(&payload, 0);
      util::put_u64(&payload, 0);
      const auto bad =
          util::encode_frame(FrameType::kControlRequest, 0, 1, payload);
      dec = util::decode_frame(as_bytes(bad));
      EXPECT_FALSE(serve::decode_control_request(
          dec.header, as_bytes(bad).subspan(FrameHeader::kWireSize), &got,
          &err));
      EXPECT_EQ(err.reason, Reason::kBadNumber) << "op " << op;
    }
  }
}

TEST(Frame, ReasonNamesRoundTrip) {
  Reason r = Reason::kBadChecksum;
  ASSERT_TRUE(util::reason_from_name("truncated", &r));
  EXPECT_EQ(r, Reason::kTruncated);
  EXPECT_FALSE(util::reason_from_name("no-such-reason", &r));
  EXPECT_EQ(r, Reason::kTruncated);  // untouched on failure
}

// -- bounded MPMC queue -----------------------------------------------------

TEST(BoundedQueue, BackpressureAndClose) {
  util::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: caller sheds
  auto batch = q.pop_batch(8, std::chrono::microseconds(0));
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  q.close();
  EXPECT_FALSE(q.try_push(4));  // closed: no new work
  EXPECT_TRUE(q.pop_batch(8, std::chrono::microseconds(0)).empty());
}

TEST(BoundedQueue, BatchGatherRespectsMaxN) {
  util::BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(i));
  const auto first = q.pop_batch(3, std::chrono::microseconds(0));
  EXPECT_EQ(first, (std::vector<int>{0, 1, 2}));
  const auto rest = q.pop_batch(3, std::chrono::microseconds(0));
  EXPECT_EQ(rest, (std::vector<int>{3, 4}));
}

TEST(BoundedQueue, ConcurrentProducersDrainCompletely) {
  util::BoundedQueue<int> q(16);
  constexpr int kPerProducer = 500;
  std::atomic<int> pushed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&q, &pushed] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!q.try_push(i)) std::this_thread::yield();
        pushed.fetch_add(1);
      }
    });
  }
  std::atomic<int> popped{0};
  std::thread consumer([&q, &popped] {
    while (true) {
      const auto batch = q.pop_batch(8, std::chrono::microseconds(50));
      if (batch.empty()) return;  // closed and drained
      popped.fetch_add(static_cast<int>(batch.size()));
    }
  });
  for (auto& t : producers) t.join();
  q.close();
  consumer.join();
  EXPECT_EQ(pushed.load(), 3 * kPerProducer);
  EXPECT_EQ(popped.load(), 3 * kPerProducer);
}

// -- daemon end to end ------------------------------------------------------

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

Xy make_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(n, 5);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 5; ++c) d.x(i, c) = rng.uniform(-3.0, 3.0);
    d.y[i] = std::sin(d.x(i, 0)) + 0.3 * d.x(i, 1) * d.x(i, 2) +
             rng.normal(0.0, 0.05);
  }
  return d;
}

/// Train a small GBT once, save the checkpoint to a temp file, and hand
/// out servers bound to per-test Unix sockets.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    train_ = new Xy(make_data(400, 11));
    probe_ = new Xy(make_data(64, 12));
    ml::GbtParams p;
    p.n_estimators = 12;
    p.max_depth = 4;
    model_ = new ml::GradientBoostedTrees(p);
    model_->fit(train_->x, train_->y);
    model_path_ = ::testing::TempDir() + "serve_test_model.gbt";
    std::ofstream out(model_path_);
    ASSERT_TRUE(out.is_open());
    model_->save(out);
  }

  static void TearDownTestSuite() {
    delete train_;
    delete probe_;
    delete model_;
    train_ = nullptr;
    probe_ = nullptr;
    model_ = nullptr;
  }

  serve::ServeConfig base_config(const char* tag) const {
    serve::ServeConfig cfg;
    cfg.model_files = {model_path_};
    cfg.unix_socket = ::testing::TempDir() + "serve_test_" + tag + ".sock";
    return cfg;
  }

  static serve::PredictRequest request_for_row(std::size_t row,
                                               std::uint64_t id) {
    serve::PredictRequest req;
    req.request_id = id;
    const auto src = probe_->x.row(row);
    req.features.assign(src.begin(), src.end());
    return req;
  }

  /// Pipeline every probe row through `client` and return predictions
  /// in row order.
  static std::vector<double> query_all(serve::Client& client) {
    const std::size_t n = probe_->x.rows();
    for (std::size_t i = 0; i < n; ++i) {
      client.send_predict(request_for_row(i, i + 1));
    }
    std::vector<double> pred(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      serve::Client::Reply reply;
      EXPECT_TRUE(client.read_reply(&reply));
      EXPECT_EQ(reply.type, FrameType::kPredictResponse);
      EXPECT_EQ(reply.predict.values.size(), 1u);
      const auto row = reply.request_id - 1;
      EXPECT_LT(row, n);
      if (reply.predict.values.size() == 1 && row < n) {
        pred[row] = reply.predict.values[0];
      }
    }
    return pred;
  }

  static Xy* train_;
  static Xy* probe_;
  static ml::GradientBoostedTrees* model_;
  static std::string model_path_;
};

Xy* ServeTest::train_ = nullptr;
Xy* ServeTest::probe_ = nullptr;
ml::GradientBoostedTrees* ServeTest::model_ = nullptr;
std::string ServeTest::model_path_;

/// Bit-pattern equality: the golden guarantee is byte-identity, not
/// almost-equality.
void expect_bit_identical(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    EXPECT_EQ(ba, bb) << "row " << i;
  }
}

TEST_F(ServeTest, GoldenBitIdenticalToOfflineAcrossThreadCounts) {
  // setenv only while no server threads are alive; each pass brings the
  // daemon up under one fixed IOTAX_THREADS.
  const char* old = std::getenv("IOTAX_THREADS");
  const std::string saved = old != nullptr ? old : "";
  for (const char* threads : {"1", "4"}) {
    ::setenv("IOTAX_THREADS", threads, 1);
    const auto offline = model_->predict(probe_->x);
    serve::Server server(base_config("golden"));
    server.start();
    auto client = serve::Client::connect_unix(server.config().unix_socket);
    const auto served = query_all(client);
    client.close();
    server.stop();
    expect_bit_identical(served, offline);
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests, probe_->x.rows());
    EXPECT_EQ(stats.responses, probe_->x.rows());
    EXPECT_GE(stats.batches, 1u);
  }
  if (!saved.empty()) {
    ::setenv("IOTAX_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("IOTAX_THREADS");
  }
}

TEST_F(ServeTest, ServesManyConnectionsOverTcp) {
  auto cfg = base_config("tcp");
  cfg.unix_socket.clear();
  cfg.tcp_port = 0;  // ephemeral
  serve::Server server(cfg);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);
  const auto offline = model_->predict(probe_->x);
  for (int pass = 0; pass < 3; ++pass) {
    auto client = serve::Client::connect_tcp(
        "127.0.0.1", static_cast<std::uint16_t>(server.tcp_port()));
    expect_bit_identical(query_all(client), offline);
  }
  server.stop();
  EXPECT_EQ(server.stats().connections, 3u);
}

TEST_F(ServeTest, TruncationAtEveryByteBoundaryIsQuarantined) {
  serve::Server server(base_config("trunc"));
  server.start();
  const auto wire = serve::encode_predict_request(request_for_row(0, 99));
  std::uint64_t expect_truncated = 0;
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    auto client = serve::Client::connect_unix(server.config().unix_socket);
    client.send_raw(std::string_view(wire).substr(0, cut));
    client.shutdown_write();
    serve::Client::Reply reply;
    if (cut == 0) {
      // A clean close is not a defect.
      EXPECT_FALSE(client.read_reply(&reply));
      continue;
    }
    ++expect_truncated;
    ASSERT_TRUE(client.read_reply(&reply)) << "cut at byte " << cut;
    EXPECT_EQ(reply.type, FrameType::kErrorResponse);
    EXPECT_EQ(reply.error.status, serve::ServeStatus::kBadFrame);
    ASSERT_TRUE(reply.error.reason.has_value());
    EXPECT_EQ(*reply.error.reason, Reason::kTruncated) << "cut " << cut;
    EXPECT_FALSE(client.read_reply(&reply));  // connection then closes
  }
  // The daemon took every partial frame on the chin and still serves.
  auto client = serve::Client::connect_unix(server.config().unix_socket);
  client.send_predict(request_for_row(0, 7));
  serve::Client::Reply reply;
  ASSERT_TRUE(client.read_reply(&reply));
  EXPECT_EQ(reply.type, FrameType::kPredictResponse);
  client.close();
  server.stop();
  EXPECT_EQ(server.quarantine().count(Reason::kTruncated), expect_truncated);
  EXPECT_EQ(server.stats().quarantined, expect_truncated);
}

TEST_F(ServeTest, BadMagicClosesOnlyThatConnection) {
  serve::Server server(base_config("magic"));
  server.start();
  auto bad = serve::Client::connect_unix(server.config().unix_socket);
  bad.send_raw("GET / HTTP/1.1\r\n\r\n");  // wrong protocol entirely
  serve::Client::Reply reply;
  ASSERT_TRUE(bad.read_reply(&reply));
  EXPECT_EQ(reply.type, FrameType::kErrorResponse);
  EXPECT_EQ(reply.error.status, serve::ServeStatus::kBadFrame);
  ASSERT_TRUE(reply.error.reason.has_value());
  EXPECT_EQ(*reply.error.reason, Reason::kBadMagic);
  EXPECT_FALSE(bad.read_reply(&reply));  // that connection is done

  auto good = serve::Client::connect_unix(server.config().unix_socket);
  good.send_ping(5);
  ASSERT_TRUE(good.read_reply(&reply));
  EXPECT_EQ(reply.type, FrameType::kPong);
  EXPECT_EQ(reply.request_id, 5u);
  server.stop();
  EXPECT_EQ(server.quarantine().count(Reason::kBadMagic), 1u);
}

TEST_F(ServeTest, WireDefectsMapToStableReasons) {
  serve::Server server(base_config("defects"));
  server.start();
  serve::Client::Reply reply;

  {  // Unsupported protocol version.
    auto wire = util::encode_frame(FrameType::kPing, 0, 1, "");
    wire[4] = 9;
    auto client = serve::Client::connect_unix(server.config().unix_socket);
    client.send_raw(wire);
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_TRUE(reply.error.reason.has_value());
    EXPECT_EQ(*reply.error.reason, Reason::kBadVersion);
  }
  {  // Server-only frame type arriving at the server.
    auto client = serve::Client::connect_unix(server.config().unix_socket);
    client.send_raw(util::encode_frame(FrameType::kPong, 0, 2, ""));
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_TRUE(reply.error.reason.has_value());
    EXPECT_EQ(*reply.error.reason, Reason::kMalformedHeader);
    // Frame boundaries are intact, so the connection survives.
    client.send_ping(3);
    ASSERT_TRUE(client.read_reply(&reply));
    EXPECT_EQ(reply.type, FrameType::kPong);
  }
  {  // NaN feature: well-framed, semantically poisonous.
    auto req = request_for_row(1, 4);
    req.features[2] = std::nan("");
    auto client = serve::Client::connect_unix(server.config().unix_socket);
    client.send_predict(req);
    ASSERT_TRUE(client.read_reply(&reply));
    EXPECT_EQ(reply.error.status, serve::ServeStatus::kBadRequest);
    ASSERT_TRUE(reply.error.reason.has_value());
    EXPECT_EQ(*reply.error.reason, Reason::kNonFiniteValue);
  }
  {  // Feature width that disagrees with the checkpoint.
    serve::PredictRequest req;
    req.request_id = 5;
    req.features = {1.0, 2.0};  // model expects 5
    auto client = serve::Client::connect_unix(server.config().unix_socket);
    client.send_predict(req);
    ASSERT_TRUE(client.read_reply(&reply));
    EXPECT_EQ(reply.error.status, serve::ServeStatus::kBadRequest);
    ASSERT_TRUE(reply.error.reason.has_value());
    EXPECT_EQ(*reply.error.reason, Reason::kSizeMismatch);
  }
  {  // Model index outside the registry.
    auto req = request_for_row(1, 6);
    req.model_index = 7;
    auto client = serve::Client::connect_unix(server.config().unix_socket);
    client.send_predict(req);
    ASSERT_TRUE(client.read_reply(&reply));
    EXPECT_EQ(reply.error.status, serve::ServeStatus::kUnknownModel);
    EXPECT_FALSE(reply.error.reason.has_value());
    // Recoverable: the same connection can still predict.
    client.send_predict(request_for_row(1, 7));
    ASSERT_TRUE(client.read_reply(&reply));
    EXPECT_EQ(reply.type, FrameType::kPredictResponse);
  }
  server.stop();
  const auto q = server.quarantine();
  EXPECT_EQ(q.count(Reason::kBadVersion), 1u);
  EXPECT_EQ(q.count(Reason::kMalformedHeader), 1u);
  EXPECT_EQ(q.count(Reason::kNonFiniteValue), 1u);
  EXPECT_EQ(q.count(Reason::kSizeMismatch), 1u);
}

TEST_F(ServeTest, AdmissionControlShedsWithTypedBusy) {
  auto cfg = base_config("busy");
  cfg.batch_size = 4;
  cfg.batch_wait_us = 200000;  // hold the batch open: responses can't race
  cfg.max_inflight = 2;
  serve::Server server(cfg);
  server.start();
  auto client = serve::Client::connect_unix(server.config().unix_socket);
  // Three back-to-back requests down one pipe: the reader admits 1 and
  // 2, then inflight == max and 3 must shed.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    client.send_predict(request_for_row(id, id));
  }
  std::map<std::uint64_t, bool> busy;  // id -> was shed
  for (int i = 0; i < 3; ++i) {
    serve::Client::Reply reply;
    ASSERT_TRUE(client.read_reply(&reply));
    if (reply.type == FrameType::kErrorResponse) {
      ASSERT_EQ(reply.error.status, serve::ServeStatus::kBusy);
      busy[reply.request_id] = true;
    } else {
      ASSERT_EQ(reply.type, FrameType::kPredictResponse);
      busy[reply.request_id] = false;
    }
  }
  EXPECT_FALSE(busy[1]);
  EXPECT_FALSE(busy[2]);
  EXPECT_TRUE(busy[3]);
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.responses, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.errors, 0u);  // BUSY is shed, not an error
}

TEST_F(ServeTest, DrainAnswersEverythingAdmitted) {
  auto cfg = base_config("drain");
  cfg.batch_size = 8;
  cfg.batch_wait_us = 5000;
  serve::Server server(cfg);
  server.start();
  auto client = serve::Client::connect_unix(server.config().unix_socket);
  constexpr std::uint64_t kRequests = 40;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    client.send_predict(request_for_row(id % 64, id));
  }
  std::uint64_t answered = 0;
  for (; answered < kRequests; ++answered) {
    serve::Client::Reply reply;
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_EQ(reply.type, FrameType::kPredictResponse);
  }
  server.stop();
  const auto stats = server.stats();
  // The drain invariant: every admitted request was answered.
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.responses, kRequests);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_TRUE(server.quarantine().empty());
  // stop() is idempotent.
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(ServeTest, RegistryServesMultipleModelsByIndex) {
  // Second checkpoint: a deeper GBT with different predictions.
  ml::GbtParams p;
  p.n_estimators = 20;
  p.max_depth = 3;
  ml::GradientBoostedTrees other(p);
  other.fit(train_->x, train_->y);
  const auto other_path = ::testing::TempDir() + "serve_test_other.gbt";
  {
    std::ofstream out(other_path);
    ASSERT_TRUE(out.is_open());
    other.save(out);
  }
  auto cfg = base_config("multi");
  cfg.model_files.push_back(other_path);
  serve::Server server(cfg);
  server.start();
  ASSERT_EQ(server.registry().size(), 2u);
  auto client = serve::Client::connect_unix(server.config().unix_socket);
  const auto expect0 = model_->predict(probe_->x);
  const auto expect1 = other.predict(probe_->x);
  std::vector<double> got0(probe_->x.rows()), got1(probe_->x.rows());
  for (std::size_t i = 0; i < probe_->x.rows(); ++i) {
    auto req = request_for_row(i, 2 * i + 1);
    client.send_predict(req);
    req.request_id = 2 * i + 2;
    req.model_index = 1;
    client.send_predict(req);
  }
  for (std::size_t i = 0; i < 2 * probe_->x.rows(); ++i) {
    serve::Client::Reply reply;
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_EQ(reply.type, FrameType::kPredictResponse);
    const auto row = (reply.request_id - 1) / 2;
    if (reply.request_id % 2 == 1) {
      got0[row] = reply.predict.values[0];
    } else {
      got1[row] = reply.predict.values[0];
    }
  }
  server.stop();
  expect_bit_identical(got0, expect0);
  expect_bit_identical(got1, expect1);
}

// -- shadow deployment and promotion ----------------------------------------

/// Train and save a candidate checkpoint with different hyperparameters
/// (so its predictions visibly diverge from the fixture model's).
std::string save_candidate_checkpoint(const Xy& train, const char* tag) {
  ml::GbtParams p;
  p.n_estimators = 20;
  p.max_depth = 3;
  ml::GradientBoostedTrees candidate(p);
  candidate.fit(train.x, train.y);
  const auto path =
      ::testing::TempDir() + "serve_test_candidate_" + tag + ".gbt";
  std::ofstream out(path);
  EXPECT_TRUE(out.is_open());
  candidate.save(out);
  return path;
}

TEST_F(ServeTest, ShadowScoresBitExactAndPromotionSwapsGenerations) {
  const auto candidate_path = save_candidate_checkpoint(*train_, "promo");
  auto candidate = ml::load_regressor_file(candidate_path);
  const auto offline_prod = model_->predict(probe_->x);
  const auto offline_cand = candidate->predict(probe_->x);

  auto cfg = base_config("shadow");
  cfg.shadow_file = candidate_path;
  serve::Server server(cfg);
  server.start();
  const auto shadow_entry = server.shadow();
  ASSERT_NE(shadow_entry, nullptr);
  EXPECT_EQ(shadow_entry->generation, 0u);  // candidate, not published
  EXPECT_EQ(shadow_entry->source, candidate_path);

  auto client = serve::Client::connect_unix(server.config().unix_socket);
  serve::Client::Reply reply;

  {  // Rollback before any publish is refused, not fatal.
    serve::ControlRequest req;
    req.request_id = 1;
    req.op = serve::ControlOp::kRollback;
    client.send_control(req);
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_EQ(reply.type, FrameType::kControlResponse);
    EXPECT_FALSE(reply.control.ok);
  }
  {  // Promote before the shadow has scored traffic is refused.
    serve::ControlRequest req;
    req.request_id = 2;
    req.op = serve::ControlOp::kPromote;
    req.min_shadow_requests = 1;
    client.send_control(req);
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_EQ(reply.type, FrameType::kControlResponse);
    EXPECT_FALSE(reply.control.ok);
    EXPECT_NE(reply.control.detail.find("scored 0 of required 1"),
              std::string::npos)
        << reply.control.detail;
  }
  {  // Control verbs bounds-check the slot like predict does.
    serve::ControlRequest req;
    req.request_id = 3;
    req.op = serve::ControlOp::kStatus;
    req.model_index = 7;
    client.send_control(req);
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_EQ(reply.type, FrameType::kControlResponse);
    EXPECT_FALSE(reply.control.ok);
  }

  // Shadow-flagged traffic: each reply carries {production, shadow},
  // both bit-identical to the respective offline predictions.
  const std::size_t n = probe_->x.rows();
  std::vector<double> prod(n, 0.0), shad(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    auto req = request_for_row(i, 100 + i);
    req.want_shadow = true;
    client.send_predict(req);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_EQ(reply.type, FrameType::kPredictResponse);
    ASSERT_EQ(reply.predict.values.size(), 2u);
    const auto row = reply.request_id - 100;
    ASSERT_LT(row, n);
    prod[row] = reply.predict.values[0];
    shad[row] = reply.predict.values[1];
  }
  expect_bit_identical(prod, offline_prod);
  expect_bit_identical(shad, offline_cand);

  // The daemon's divergence accounting must equal what the two offline
  // prediction vectors say, bit for bit.
  std::uint64_t expect_diverged = 0;
  double expect_max = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::memcmp(&offline_prod[i], &offline_cand[i], sizeof(double)) != 0) {
      ++expect_diverged;
      expect_max = std::max(expect_max,
                            std::abs(offline_prod[i] - offline_cand[i]));
    }
  }
  ASSERT_GT(expect_diverged, 0u);  // the candidate is genuinely different

  {  // Status reports the accounting without changing anything.
    serve::ControlRequest req;
    req.request_id = 4;
    req.op = serve::ControlOp::kStatus;
    client.send_control(req);
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_EQ(reply.type, FrameType::kControlResponse);
    EXPECT_TRUE(reply.control.ok);
    EXPECT_EQ(reply.control.generation, 1u);
    EXPECT_EQ(reply.control.shadow_requests, n);
    EXPECT_EQ(reply.control.shadow_diverged, expect_diverged);
    EXPECT_EQ(reply.control.max_abs_divergence, expect_max);
  }
  {  // Now the gate is satisfied: promotion publishes generation 2.
    serve::ControlRequest req;
    req.request_id = 5;
    req.op = serve::ControlOp::kPromote;
    req.min_shadow_requests = n;
    client.send_control(req);
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_EQ(reply.type, FrameType::kControlResponse);
    EXPECT_TRUE(reply.control.ok) << reply.control.detail;
    EXPECT_EQ(reply.control.generation, 2u);
    EXPECT_NE(reply.control.detail.find("promoted"), std::string::npos);
  }
  EXPECT_EQ(server.shadow(), nullptr);  // promotion consumed the candidate

  // Post-promotion traffic is served by the candidate, and a shadow
  // flag with no candidate degrades to a single production value.
  expect_bit_identical(query_all(client), offline_cand);
  {
    auto req = request_for_row(0, 900);
    req.want_shadow = true;
    client.send_predict(req);
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_EQ(reply.type, FrameType::kPredictResponse);
    EXPECT_EQ(reply.predict.values.size(), 1u);
  }
  {  // A second promote has nothing left to publish.
    serve::ControlRequest req;
    req.request_id = 6;
    req.op = serve::ControlOp::kPromote;
    client.send_control(req);
    ASSERT_TRUE(client.read_reply(&reply));
    EXPECT_FALSE(reply.control.ok);
    EXPECT_NE(reply.control.detail.find("no shadow candidate"),
              std::string::npos)
        << reply.control.detail;
  }
  {  // Rollback restores the original model under a fresh generation.
    serve::ControlRequest req;
    req.request_id = 7;
    req.op = serve::ControlOp::kRollback;
    client.send_control(req);
    ASSERT_TRUE(client.read_reply(&reply));
    EXPECT_TRUE(reply.control.ok) << reply.control.detail;
    EXPECT_EQ(reply.control.generation, 3u);
  }
  expect_bit_identical(query_all(client), offline_prod);

  client.close();
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.shadow_requests, n);
  EXPECT_EQ(stats.shadow_diverged, expect_diverged);
  EXPECT_EQ(stats.max_abs_divergence, expect_max);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.rollbacks, 1u);
  EXPECT_EQ(stats.requests, stats.responses);
}

TEST_F(ServeTest, HotSwapDropsNoInFlightRequests) {
  const auto candidate_path = save_candidate_checkpoint(*train_, "hotswap");
  auto candidate = ml::load_regressor_file(candidate_path);
  const auto offline_prod = model_->predict(probe_->x);
  const auto offline_cand = candidate->predict(probe_->x);

  auto cfg = base_config("hotswap");
  cfg.shadow_file = candidate_path;
  serve::Server server(cfg);
  server.start();

  // Four clients hammer the slot with sequential round-trips while the
  // main thread promotes and rolls back underneath them. Every reply
  // must be a real prediction, bit-identical to ONE of the two models'
  // offline answers for that row — never an error, never dropped, never
  // a torn value.
  constexpr int kClients = 4;
  constexpr int kPerClient = 200;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto cl = serve::Client::connect_unix(server.config().unix_socket);
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t row =
            static_cast<std::size_t>(c * kPerClient + i) % probe_->x.rows();
        cl.send_predict(request_for_row(row, static_cast<std::uint64_t>(i) + 1));
        serve::Client::Reply reply;
        if (!cl.read_reply(&reply) ||
            reply.type != FrameType::kPredictResponse ||
            reply.predict.values.size() != 1) {
          bad.fetch_add(1);
          continue;
        }
        const double v = reply.predict.values[0];
        const bool is_prod =
            std::memcmp(&v, &offline_prod[row], sizeof(double)) == 0;
        const bool is_cand =
            std::memcmp(&v, &offline_cand[row], sizeof(double)) == 0;
        if (!is_prod && !is_cand) bad.fetch_add(1);
      }
    });
  }

  auto admin = serve::Client::connect_unix(server.config().unix_socket);
  serve::Client::Reply reply;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {  // min_shadow_requests = 0: no traffic floor for this swap.
    serve::ControlRequest req;
    req.request_id = 1;
    req.op = serve::ControlOp::kPromote;
    admin.send_control(req);
    ASSERT_TRUE(admin.read_reply(&reply));
    ASSERT_TRUE(reply.control.ok) << reply.control.detail;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    serve::ControlRequest req;
    req.request_id = 2;
    req.op = serve::ControlOp::kRollback;
    admin.send_control(req);
    ASSERT_TRUE(admin.read_reply(&reply));
    ASSERT_TRUE(reply.control.ok) << reply.control.detail;
  }
  for (auto& t : clients) t.join();
  admin.close();
  server.stop();

  EXPECT_EQ(bad.load(), 0);
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(stats.responses, stats.requests);  // the drain invariant held
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.shed, 0u);
}

}  // namespace
}  // namespace iotax
