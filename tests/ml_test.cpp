#include <gtest/gtest.h>

#include <cmath>

#include "src/data/matrix.hpp"
#include "src/ml/binning.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/linear.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/model.hpp"
#include "src/ml/nas.hpp"
#include "src/ml/nn.hpp"
#include "src/ml/search.hpp"
#include "src/stats/descriptive.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

TEST(Metrics, LogErrorsAreSignedDifferences) {
  const std::vector<double> yt = {1.0, 2.0};
  const std::vector<double> yp = {1.5, 1.5};
  const auto e = ml::log_errors(yt, yp);
  EXPECT_DOUBLE_EQ(e[0], 0.5);
  EXPECT_DOUBLE_EQ(e[1], -0.5);
}

TEST(Metrics, MedianAbsLogError) {
  const std::vector<double> yt = {1.0, 1.0, 1.0};
  const std::vector<double> yp = {1.1, 0.8, 1.0};
  EXPECT_NEAR(ml::median_abs_log_error(yt, yp), 0.1, 1e-12);
}

TEST(Metrics, SymmetricOverUnderEstimate) {
  // Over- and under-estimating by the same ratio gives the same error.
  const std::vector<double> yt = {3.0};
  const std::vector<double> over = {3.0 + std::log10(1.25)};
  const std::vector<double> under = {3.0 - std::log10(1.25)};
  EXPECT_NEAR(ml::mean_abs_log_error(yt, over),
              ml::mean_abs_log_error(yt, under), 1e-12);
}

TEST(Metrics, PercentConversionRoundTrip) {
  for (double pct : {-25.0, -5.0, 0.0, 10.01, 40.0}) {
    EXPECT_NEAR(ml::log_error_to_percent(ml::percent_to_log_error(pct)), pct,
                1e-9);
  }
  EXPECT_THROW(ml::percent_to_log_error(-100.0), std::invalid_argument);
}

TEST(Metrics, RejectsSizeMismatch) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(ml::log_errors(a, b), std::invalid_argument);
}

TEST(MeanRegressor, PredictsTrainMean) {
  data::Matrix x(4, 1);
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  ml::MeanRegressor m;
  m.fit(x, y);
  const auto p = m.predict(x);
  for (double v : p) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(MeanRegressor, ThrowsBeforeFit) {
  ml::MeanRegressor m;
  EXPECT_THROW(m.predict(data::Matrix(1, 1)), std::logic_error);
}

TEST(Binning, CodesRespectOrder) {
  data::Matrix x(100, 1);
  for (std::size_t i = 0; i < 100; ++i) x(i, 0) = static_cast<double>(i);
  ml::BinnedMatrix binned(x, 8);
  EXPECT_LE(binned.n_bins(0), 8u);
  EXPECT_GE(binned.n_bins(0), 2u);
  // Codes must be monotone in the raw value.
  for (std::size_t i = 1; i < 100; ++i) {
    EXPECT_LE(binned.code(i - 1, 0), binned.code(i, 0));
  }
}

TEST(Binning, ConstantColumnGetsSingleBin) {
  data::Matrix x(10, 1, 3.0);
  ml::BinnedMatrix binned(x, 16);
  EXPECT_EQ(binned.n_bins(0), 1u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(binned.code(i, 0), 0);
}

TEST(Binning, EncodeMatchesTrainingCodes) {
  util::Rng rng(1);
  data::Matrix x(200, 1);
  for (std::size_t i = 0; i < 200; ++i) x(i, 0) = rng.normal();
  ml::BinnedMatrix binned(x, 32);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(binned.encode(0, x(i, 0)), binned.code(i, 0));
  }
}

TEST(Binning, ThresholdSplitsConsistently) {
  data::Matrix x(100, 1);
  for (std::size_t i = 0; i < 100; ++i) x(i, 0) = static_cast<double>(i);
  ml::BinnedMatrix binned(x, 8);
  const std::size_t b = 2;
  const double thr = binned.threshold(0, b);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(x(i, 0) <= thr, binned.code(i, 0) <= b);
  }
}

// Synthetic regression problem: y = 2*x0 - x1 + 0.5*x0*x1 + noise.
struct Problem {
  data::Matrix x_train{0, 0};
  std::vector<double> y_train;
  data::Matrix x_test{0, 0};
  std::vector<double> y_test;
};

Problem make_problem(std::size_t n_train, std::size_t n_test, double noise,
                     std::uint64_t seed) {
  util::Rng rng(seed);
  Problem p;
  const auto gen = [&rng, noise](std::size_t n, data::Matrix* x,
                                 std::vector<double>* y) {
    *x = data::Matrix(n, 3);
    y->resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double a = rng.uniform(-2.0, 2.0);
      const double b = rng.uniform(-2.0, 2.0);
      const double c = rng.uniform(-1.0, 1.0);  // irrelevant feature
      (*x)(i, 0) = a;
      (*x)(i, 1) = b;
      (*x)(i, 2) = c;
      (*y)[i] = 2.0 * a - b + 0.5 * a * b + rng.normal(0.0, noise);
    }
  };
  gen(n_train, &p.x_train, &p.y_train);
  gen(n_test, &p.x_test, &p.y_test);
  return p;
}

TEST(Linear, RecoversLinearRelationship) {
  util::Rng rng(2);
  data::Matrix x(500, 2);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < 500; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = 3.0 + 2.0 * x(i, 0) - x(i, 1);
  }
  ml::LinearRegressor lin(1e-6, /*log_transform=*/false);
  lin.fit(x, y);
  const auto p = lin.predict(x);
  EXPECT_LT(ml::rmse_log(y, p), 0.02);
}

TEST(Linear, LogTransformHandlesCounterScales) {
  // y depends on log of a counter spanning 8 orders of magnitude; the
  // default preprocessing makes this learnable by a linear model.
  util::Rng rng(31);
  data::Matrix x(800, 1);
  std::vector<double> y(800);
  for (std::size_t i = 0; i < 800; ++i) {
    const double counter = std::pow(10.0, rng.uniform(1.0, 9.0));
    x(i, 0) = counter;
    y[i] = 0.5 * std::log10(1.0 + counter);
  }
  ml::LinearRegressor lin(1e-6);
  lin.fit(x, y);
  EXPECT_LT(ml::rmse_log(y, lin.predict(x)), 0.02);
}

TEST(Linear, HandlesCollinearFeatures) {
  data::Matrix x(50, 2);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = static_cast<double>(i);  // perfectly collinear
    y[i] = static_cast<double>(i);
  }
  ml::LinearRegressor lin(1.0);
  EXPECT_NO_THROW(lin.fit(x, y));  // ridge keeps the solve well-posed
}

TEST(Gbt, ParamsValidate) {
  ml::GbtParams p;
  p.learning_rate = 0.0;
  EXPECT_THROW(ml::GradientBoostedTrees{p}, std::invalid_argument);
  p = ml::GbtParams{};
  p.subsample = 1.5;
  EXPECT_THROW(ml::GradientBoostedTrees{p}, std::invalid_argument);
}

TEST(Gbt, LearnsNonlinearInteraction) {
  const auto prob = make_problem(2000, 500, 0.05, 3);
  ml::GbtParams params;
  params.n_estimators = 120;
  params.max_depth = 4;
  params.learning_rate = 0.15;
  ml::GradientBoostedTrees gbt(params);
  gbt.fit(prob.x_train, prob.y_train);
  const auto pred = gbt.predict(prob.x_test);
  EXPECT_LT(ml::rmse_log(prob.y_test, pred), 0.18);
}

TEST(Gbt, BeatsLinearOnInteractions) {
  const auto prob = make_problem(2000, 500, 0.05, 4);
  ml::GradientBoostedTrees gbt({.n_estimators = 120,
                                .max_depth = 4,
                                .learning_rate = 0.15});
  gbt.fit(prob.x_train, prob.y_train);
  ml::LinearRegressor lin(1.0);
  lin.fit(prob.x_train, prob.y_train);
  EXPECT_LT(ml::rmse_log(prob.y_test, gbt.predict(prob.x_test)),
            ml::rmse_log(prob.y_test, lin.predict(prob.x_test)));
}

TEST(Gbt, DeterministicForSameSeed) {
  const auto prob = make_problem(500, 100, 0.05, 5);
  ml::GbtParams params;
  params.n_estimators = 20;
  params.subsample = 0.7;
  params.colsample = 0.7;
  ml::GradientBoostedTrees a(params);
  ml::GradientBoostedTrees b(params);
  a.fit(prob.x_train, prob.y_train);
  b.fit(prob.x_train, prob.y_train);
  const auto pa = a.predict(prob.x_test);
  const auto pb = b.predict(prob.x_test);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(Gbt, MoreTreesReduceTrainError) {
  const auto prob = make_problem(1000, 100, 0.02, 6);
  ml::GradientBoostedTrees small({.n_estimators = 5, .max_depth = 3});
  ml::GradientBoostedTrees large({.n_estimators = 80, .max_depth = 3});
  small.fit(prob.x_train, prob.y_train);
  large.fit(prob.x_train, prob.y_train);
  EXPECT_LT(ml::rmse_log(prob.y_train, large.predict(prob.x_train)),
            ml::rmse_log(prob.y_train, small.predict(prob.x_train)));
}

TEST(Gbt, IrrelevantFeatureGetsLowImportance) {
  const auto prob = make_problem(2000, 100, 0.02, 7);
  ml::GradientBoostedTrees gbt({.n_estimators = 60, .max_depth = 4});
  gbt.fit(prob.x_train, prob.y_train);
  const auto imp = gbt.feature_importances();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[1], imp[2]);
  EXPECT_LT(imp[2], 0.05);
  EXPECT_NEAR(imp[0] + imp[1] + imp[2], 1.0, 1e-9);
}

TEST(Gbt, SubsampleAndColsampleStillLearn) {
  const auto prob = make_problem(2000, 400, 0.05, 8);
  ml::GradientBoostedTrees gbt({.n_estimators = 150,
                                .max_depth = 4,
                                .learning_rate = 0.1,
                                .subsample = 0.6,
                                .colsample = 0.7});
  gbt.fit(prob.x_train, prob.y_train);
  EXPECT_LT(ml::rmse_log(prob.y_test, gbt.predict(prob.x_test)), 0.25);
}

TEST(Gbt, PredictRejectsWrongWidth) {
  const auto prob = make_problem(200, 10, 0.05, 9);
  ml::GradientBoostedTrees gbt({.n_estimators = 5});
  gbt.fit(prob.x_train, prob.y_train);
  EXPECT_THROW(gbt.predict(data::Matrix(3, 7)), std::invalid_argument);
  ml::GradientBoostedTrees unfitted;
  EXPECT_THROW(unfitted.predict(prob.x_test), std::logic_error);
}

TEST(Mlp, ParamsValidate) {
  ml::MlpParams p;
  p.dropout = 1.0;
  EXPECT_THROW(ml::Mlp{p}, std::invalid_argument);
  p = ml::MlpParams{};
  p.hidden = {0};
  EXPECT_THROW(ml::Mlp{p}, std::invalid_argument);
}

TEST(Mlp, LearnsNonlinearFunction) {
  const auto prob = make_problem(2000, 500, 0.05, 10);
  ml::MlpParams params;
  params.hidden = {32, 32};
  params.epochs = 60;
  params.learning_rate = 3e-3;
  ml::Mlp mlp(params);
  mlp.fit(prob.x_train, prob.y_train);
  EXPECT_LT(ml::rmse_log(prob.y_test, mlp.predict(prob.x_test)), 0.25);
}

TEST(Mlp, DeterministicForSameSeed) {
  const auto prob = make_problem(300, 50, 0.05, 11);
  ml::MlpParams params;
  params.hidden = {16};
  params.epochs = 5;
  ml::Mlp a(params);
  ml::Mlp b(params);
  a.fit(prob.x_train, prob.y_train);
  b.fit(prob.x_train, prob.y_train);
  const auto pa = a.predict(prob.x_test);
  const auto pb = b.predict(prob.x_test);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(Mlp, DropoutStillLearns) {
  const auto prob = make_problem(2000, 300, 0.05, 12);
  ml::MlpParams params;
  params.hidden = {48, 48};
  params.epochs = 120;
  params.learning_rate = 3e-3;
  params.dropout = 0.1;
  ml::Mlp mlp(params);
  mlp.fit(prob.x_train, prob.y_train);
  EXPECT_LT(ml::rmse_log(prob.y_test, mlp.predict(prob.x_test)), 0.4);
}

TEST(Mlp, NllHeadEstimatesNoiseLevel) {
  // Heteroscedastic data: noise depends on x0's sign.
  util::Rng rng(13);
  const std::size_t n = 4000;
  data::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    const double sigma = x(i, 0) > 0.0 ? 0.5 : 0.05;
    y[i] = x(i, 0) + rng.normal(0.0, sigma);
  }
  ml::MlpParams params;
  params.hidden = {32, 32};
  params.epochs = 80;
  params.learning_rate = 3e-3;
  params.nll_head = true;
  ml::Mlp mlp(params);
  mlp.fit(x, y);

  data::Matrix probe(2, 1);
  probe(0, 0) = 0.7;
  probe(1, 0) = -0.7;
  const auto pred = mlp.predict_dist(probe);
  // The noisy side should get clearly larger predicted variance.
  EXPECT_GT(pred.variance[0], 3.0 * pred.variance[1]);
}

TEST(Mlp, PredictDistRequiresNllHead) {
  const auto prob = make_problem(100, 10, 0.05, 14);
  ml::MlpParams params;
  params.epochs = 1;
  ml::Mlp mlp(params);
  mlp.fit(prob.x_train, prob.y_train);
  EXPECT_THROW(mlp.predict_dist(prob.x_test), std::logic_error);
}

TEST(Search, GridSearchFindsReasonableConfig) {
  const auto prob = make_problem(800, 300, 0.05, 15);
  ml::GbtGrid grid;
  grid.n_estimators = {5, 40};
  grid.max_depth = {2, 5};
  grid.subsample = {1.0};
  grid.colsample = {1.0};
  std::size_t calls = 0;
  const auto res = ml::grid_search(
      grid, prob.x_train, prob.y_train, prob.x_test, prob.y_test,
      [&calls](const ml::SearchPoint&) { ++calls; });
  EXPECT_EQ(res.evaluated.size(), 4u);
  EXPECT_EQ(calls, 4u);
  // Best should be the larger model on this nonlinear problem.
  EXPECT_EQ(res.best.params.n_estimators, 40u);
  for (const auto& pt : res.evaluated) {
    EXPECT_GE(pt.val_error, res.best.val_error);
  }
}

TEST(Search, RandomSearchSamplesFromGrid) {
  const auto prob = make_problem(400, 100, 0.05, 16);
  ml::GbtGrid grid;
  grid.n_estimators = {5, 10};
  grid.max_depth = {2, 3};
  util::Rng rng(17);
  const auto res = ml::random_search(grid, 6, prob.x_train, prob.y_train,
                                     prob.x_test, prob.y_test, rng);
  EXPECT_EQ(res.evaluated.size(), 6u);
  for (const auto& pt : res.evaluated) {
    EXPECT_TRUE(pt.params.n_estimators == 5 || pt.params.n_estimators == 10);
  }
}

TEST(Nas, SearchImprovesOverGenerations) {
  const auto prob = make_problem(800, 300, 0.05, 18);
  ml::NasParams nas;
  nas.population = 6;
  nas.generations = 3;
  nas.epochs = 12;
  nas.widths = {8, 16, 32};
  nas.seed = 19;
  const auto res = ml::nas_search(nas, prob.x_train, prob.y_train, prob.x_test,
                                  prob.y_test);
  EXPECT_EQ(res.history.size(), 6u + 2u * 3u);  // pop + 2 gens x 3 children
  // Best-so-far curve is non-increasing and the flagged candidates match.
  double best = std::numeric_limits<double>::infinity();
  for (const auto& cand : res.history) {
    EXPECT_EQ(cand.improved_best, cand.val_error < best);
    best = std::min(best, cand.val_error);
  }
  EXPECT_DOUBLE_EQ(best, res.best.val_error);
  EXPECT_LT(res.best.val_error, 0.4);
}

TEST(Nas, RejectsBadParams) {
  const auto prob = make_problem(50, 10, 0.05, 20);
  ml::NasParams nas;
  nas.population = 1;
  EXPECT_THROW(ml::nas_search(nas, prob.x_train, prob.y_train, prob.x_test,
                              prob.y_test),
               std::invalid_argument);
}

TEST(Ensemble, EpistemicHigherOutOfDistribution) {
  // Train on x in [-1, 1]; probe far outside.
  util::Rng rng(21);
  const std::size_t n = 1500;
  data::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    y[i] = std::sin(2.0 * x(i, 0)) + rng.normal(0.0, 0.05);
  }
  ml::EnsembleParams params;
  params.size = 5;
  params.epochs = 30;
  params.space.widths = {16, 32};
  ml::DeepEnsemble ens(params);
  ens.fit(x, y);

  data::Matrix probe(2, 1);
  probe(0, 0) = 0.3;   // in-distribution
  probe(1, 0) = 30.0;  // far out
  const auto pred = ens.predict_uncertainty(probe);
  EXPECT_GT(pred.epistemic[1], 5.0 * pred.epistemic[0]);
}

TEST(Ensemble, AleatoryTracksNoise) {
  util::Rng rng(22);
  const std::size_t n = 3000;
  data::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    const double sigma = x(i, 0) > 0.0 ? 0.4 : 0.05;
    y[i] = x(i, 0) + rng.normal(0.0, sigma);
  }
  ml::EnsembleParams params;
  params.size = 4;
  params.epochs = 40;
  ml::DeepEnsemble ens(params);
  ens.fit(x, y);
  data::Matrix probe(2, 1);
  probe(0, 0) = 0.6;
  probe(1, 0) = -0.6;
  const auto pred = ens.predict_uncertainty(probe);
  EXPECT_GT(pred.aleatory[0], 2.0 * pred.aleatory[1]);
}

TEST(Ensemble, UsesNasHistoryArchitectures) {
  const auto prob = make_problem(300, 50, 0.05, 23);
  std::vector<ml::NasCandidate> history(3);
  history[0].params.hidden = {24};
  history[0].val_error = 0.1;
  history[1].params.hidden = {8};
  history[1].val_error = 0.3;
  history[2].params.hidden = {40, 40};
  history[2].val_error = 0.2;
  ml::EnsembleParams params;
  params.size = 2;
  params.epochs = 2;
  params.nas_history = history;
  ml::DeepEnsemble ens(params);
  ens.fit(prob.x_train, prob.y_train);
  // Members seeded from the two best candidates (by val error).
  EXPECT_EQ(ens.member(0).params().hidden, std::vector<std::size_t>{24});
  EXPECT_EQ(ens.member(1).params().hidden,
            (std::vector<std::size_t>{40, 40}));
}

TEST(Ensemble, RejectsTooSmall) {
  ml::EnsembleParams params;
  params.size = 1;
  EXPECT_THROW(ml::DeepEnsemble{params}, std::invalid_argument);
}

}  // namespace
}  // namespace iotax
