// The burst classifier's contracts: classification metrics against
// hand-computed values, the threshold-adapter/logistic label
// equivalence (the decision layer is exactly monotone in the booster
// score), byte-stable persistence through the shared checkpoint magic,
// thread-count bit-identity, and a truthful "no continuation" claim.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include "src/data/matrix.hpp"
#include "src/ml/classifier.hpp"
#include "src/ml/model.hpp"
#include "src/ml/registry.hpp"
#include "src/stats/classification.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

// Separable-with-overlap binary data: label from a noisy linear score.
Xy binary_data(std::uint64_t seed, std::size_t n = 400) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(n, 3);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) d.x(i, c) = rng.uniform(-1.0, 1.0);
    const double score =
        2.0 * d.x(i, 0) - d.x(i, 1) + rng.normal(0.0, 0.3);
    d.y[i] = score > 0.0 ? 1.0 : 0.0;
  }
  return d;
}

ml::GbtParams small_gbt() {
  ml::GbtParams p;
  p.n_estimators = 20;
  p.max_depth = 3;
  return p;
}

TEST(ClassificationMetrics, ConfusionAndRatiosHandComputed) {
  //                 y:  1  1  1  0  0  0  1  0
  //              pred:  1  0  1  0  1  0  1  0
  const std::vector<double> y = {1, 1, 1, 0, 0, 0, 1, 0};
  const std::vector<double> p = {1, 0, 1, 0, 1, 0, 1, 0};
  const auto c = stats::confusion_counts(y, p);
  EXPECT_EQ(c.tp, 3u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 3u);
  EXPECT_EQ(c.total(), 8u);
  EXPECT_DOUBLE_EQ(stats::accuracy(c), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(stats::precision(c), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(stats::recall(c), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(stats::f1_score(c), 3.0 / 4.0);  // p == r
}

TEST(ClassificationMetrics, DegenerateRatiosAreZeroNotNan) {
  const std::vector<double> y = {1, 1, 0};
  const std::vector<double> none = {0, 0, 0};  // no positive predictions
  EXPECT_DOUBLE_EQ(stats::precision(y, none), 0.0);
  EXPECT_DOUBLE_EQ(stats::recall(y, none), 0.0);
  EXPECT_DOUBLE_EQ(stats::f1_score(y, none), 0.0);
}

TEST(ClassificationMetrics, RejectsNonBinaryLabels) {
  const std::vector<double> y = {1.0, 0.5};
  const std::vector<double> p = {1.0, 0.0};
  EXPECT_THROW(stats::confusion_counts(y, p), std::invalid_argument);
  EXPECT_THROW(stats::confusion_counts(p, y), std::invalid_argument);
  EXPECT_THROW(stats::confusion_counts({}, {}), std::invalid_argument);
}

TEST(ClassificationMetrics, AucHandComputedWithTies) {
  // Scores: positives {0.9, 0.5}, negatives {0.5, 0.1}.
  // Pairs: (0.9 vs 0.5) win, (0.9 vs 0.1) win, (0.5 vs 0.5) half,
  // (0.5 vs 0.1) win -> U = 3.5 of 4.
  const std::vector<double> y = {1, 1, 0, 0};
  const std::vector<double> s = {0.9, 0.5, 0.5, 0.1};
  EXPECT_DOUBLE_EQ(stats::roc_auc(y, s), 3.5 / 4.0);
  // Perfect separation and perfect inversion.
  const std::vector<double> sep = {0.8, 0.7, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(stats::roc_auc(y, sep), 1.0);
  const std::vector<double> inv = {0.1, 0.2, 0.7, 0.8};
  EXPECT_DOUBLE_EQ(stats::roc_auc(y, inv), 0.0);
  // Input order must not matter (average-rank ties).
  const std::vector<double> y2 = {0, 1, 0, 1};
  const std::vector<double> s2 = {0.5, 0.5, 0.1, 0.9};
  EXPECT_DOUBLE_EQ(stats::roc_auc(y2, s2), 3.5 / 4.0);
}

TEST(ClassificationMetrics, AucUndefinedForOneClass) {
  const std::vector<double> ones = {1, 1};
  const std::vector<double> s = {0.1, 0.9};
  EXPECT_THROW(stats::roc_auc(ones, s), std::invalid_argument);
}

TEST(ClassifierParams, ValidateRejectsBadConfigs) {
  ml::ClassifierParams p;
  p.gbt = small_gbt();
  EXPECT_NO_THROW(p.validate());
  p.threshold = 1.0;  // logistic threshold is a probability
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.threshold = 0.5;
  p.gbt.loss = ml::GbtLoss::kQuantile;  // labels are squared-loss targets
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(BurstClassifier, FitRejectsNonBinaryAndOneClassTargets) {
  const auto d = binary_data(11);
  ml::ClassifierParams p;
  p.gbt = small_gbt();
  ml::BurstClassifier clf(p);
  auto bad = d.y;
  bad[0] = 0.25;
  EXPECT_THROW(clf.fit(d.x, bad), std::invalid_argument);
  const std::vector<double> ones(d.y.size(), 1.0);
  EXPECT_THROW(clf.fit(d.x, ones), std::invalid_argument);
}

TEST(BurstClassifier, LearnsAndCalibrates) {
  const auto train = binary_data(3);
  const auto test = binary_data(4);
  ml::ClassifierParams p;
  p.gbt = small_gbt();
  ml::BurstClassifier clf(p);
  clf.fit(train.x, train.y);
  EXPECT_GT(clf.platt_a(), 0.0);  // calibration must not invert the score
  const auto prob = clf.predict(test.x);
  for (const double v : prob) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  const auto labels = clf.predict_labels(test.x);
  EXPECT_GT(stats::accuracy(test.y, labels), 0.85);
  EXPECT_GT(stats::roc_auc(test.y, prob), 0.9);
}

TEST(BurstClassifier, ThresholdAdapterEquivalentToLogisticLabels) {
  // The logistic decision at probability p is (a*s + b >= logit(p)),
  // i.e. a pure score threshold at t = (logit(p) - b) / a when a > 0.
  // A threshold-kind classifier over the identical booster must
  // therefore produce the exact same labels — the decision layers are
  // two parameterisations of one monotone rule.
  const auto train = binary_data(5);
  const auto test = binary_data(6);

  ml::ClassifierParams lp;
  lp.kind = ml::ClassifierKind::kLogistic;
  lp.threshold = 0.35;  // off 0.5 so b alone doesn't decide
  lp.gbt = small_gbt();
  ml::BurstClassifier logistic(lp);
  logistic.fit(train.x, train.y);
  ASSERT_GT(logistic.platt_a(), 0.0);

  const double logit = std::log(lp.threshold / (1.0 - lp.threshold));
  ml::ClassifierParams tp;
  tp.kind = ml::ClassifierKind::kThreshold;
  tp.threshold = (logit - logistic.platt_b()) / logistic.platt_a();
  tp.gbt = small_gbt();
  ml::BurstClassifier threshold(tp);
  threshold.fit(train.x, train.y);  // same data + params -> same booster

  const auto la = logistic.predict_labels(test.x);
  const auto lb = threshold.predict_labels(test.x);
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);
  // Probabilities differ by design (calibrated vs clamped raw scores) —
  // but both kinds must rank identically (same underlying scores).
  EXPECT_DOUBLE_EQ(stats::roc_auc(test.y, logistic.predict(test.x)),
                   stats::roc_auc(test.y, threshold.predict(test.x)));
}

TEST(BurstClassifier, SaveLoadRoundTripIsByteStable) {
  const auto train = binary_data(7);
  const auto test = binary_data(8);
  ml::ClassifierParams p;
  p.gbt = small_gbt();
  ml::BurstClassifier clf(p);
  clf.fit(train.x, train.y);

  std::ostringstream first;
  clf.save(first);
  std::istringstream in(first.str());
  const auto loaded = ml::BurstClassifier::load(in);

  EXPECT_EQ(loaded.params().kind, p.kind);
  EXPECT_DOUBLE_EQ(loaded.params().threshold, p.threshold);
  EXPECT_DOUBLE_EQ(loaded.platt_a(), clf.platt_a());
  EXPECT_DOUBLE_EQ(loaded.platt_b(), clf.platt_b());
  EXPECT_EQ(loaded.n_features(), clf.n_features());

  const auto a = clf.predict(test.x);
  const auto b = loaded.predict(test.x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  const auto la = clf.predict_labels(test.x);
  const auto lb = loaded.predict_labels(test.x);
  for (std::size_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);

  // Re-serialising the loaded model reproduces the checkpoint verbatim.
  std::ostringstream second;
  loaded.save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(BurstClassifier, LoadsThroughTheSharedCheckpointDispatch) {
  const auto& magics = ml::known_model_magics();
  EXPECT_NE(std::find(magics.begin(), magics.end(), "iotax-classifier"),
            magics.end());

  const auto train = binary_data(9);
  ml::ClassifierParams p;
  p.gbt = small_gbt();
  ml::BurstClassifier clf(p);
  clf.fit(train.x, train.y);
  std::ostringstream out;
  clf.save(out);
  std::istringstream in(out.str());
  const auto generic = ml::Regressor::load(in);
  ASSERT_NE(generic, nullptr);
  ASSERT_NE(dynamic_cast<ml::BurstClassifier*>(generic.get()), nullptr);
  const auto a = clf.predict(train.x);
  const auto b = generic->predict(train.x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(BurstClassifier, RegistryBuildsAndRejectsUnknownKeys) {
  const auto names = ml::regressor_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "classifier"),
            names.end());

  const auto model = ml::make_regressor(
      "classifier",
      R"({"kind": "threshold", "threshold": 0.4,
          "gbt": {"n_estimators": 10, "max_depth": 2}})");
  const auto* clf = dynamic_cast<ml::BurstClassifier*>(model.get());
  ASSERT_NE(clf, nullptr);
  EXPECT_EQ(clf->params().kind, ml::ClassifierKind::kThreshold);
  EXPECT_DOUBLE_EQ(clf->params().threshold, 0.4);
  EXPECT_EQ(clf->params().gbt.n_estimators, 10u);

  EXPECT_THROW(ml::make_regressor("classifier", R"({"kid": "logistic"})"),
               std::invalid_argument);
  EXPECT_THROW(
      ml::make_regressor("classifier", R"({"gbt": {"n_trees": 10}})"),
      std::invalid_argument);
  EXPECT_THROW(ml::make_regressor("classifier", R"({"kind": "svm"})"),
               std::invalid_argument);
}

TEST(BurstClassifier, ContinuationClaimIsTruthful) {
  const auto train = binary_data(10);
  ml::ClassifierParams p;
  p.gbt = small_gbt();
  ml::BurstClassifier clf(p);
  EXPECT_FALSE(clf.fit_continue_info().supported);
  clf.fit(train.x, train.y);
  EXPECT_FALSE(clf.fit_continue_info().supported);
  EXPECT_THROW(clf.fit_continue(train.x, train.y, 1), std::logic_error);
}

TEST(BurstClassifier, ThreadCountBitIdentity) {
  const auto train = binary_data(12);
  const auto test = binary_data(13);
  const auto run = [&] {
    ml::ClassifierParams p;
    p.gbt = small_gbt();
    ml::BurstClassifier clf(p);
    clf.fit(train.x, train.y);
    auto prob = clf.predict(test.x);
    const auto labels = clf.predict_labels(test.x);
    prob.insert(prob.end(), labels.begin(), labels.end());
    std::ostringstream ckpt;
    clf.save(ckpt);
    return std::make_pair(std::move(prob), ckpt.str());
  };
  const char* old = std::getenv("IOTAX_THREADS");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;
  ::setenv("IOTAX_THREADS", "1", 1);
  const auto serial = run();
  ::setenv("IOTAX_THREADS", "4", 1);
  const auto threaded = run();
  if (had) {
    ::setenv("IOTAX_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("IOTAX_THREADS");
  }
  ASSERT_EQ(serial.first.size(), threaded.first.size());
  for (std::size_t i = 0; i < serial.first.size(); ++i) {
    EXPECT_EQ(serial.first[i], threaded.first[i]);  // exact, not NEAR
  }
  EXPECT_EQ(serial.second, threaded.second);  // checkpoint bytes too
}

}  // namespace
}  // namespace iotax
