// Calibration regression tests: the preset systems must keep matching
// the dataset statistics the paper reports (§V-VI, §IX). These lock the
// numbers EXPERIMENTS.md cites — if a simulator change moves them, these
// tests say so before a bench does.
#include <gtest/gtest.h>

#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/litmus.hpp"

namespace iotax {
namespace {

class ThetaCalibration : public ::testing::Test {
 protected:
  static const sim::SimulationResult& result() {
    static const sim::SimulationResult res =
        sim::simulate(sim::theta_like());
    return res;
  }
};

TEST_F(ThetaCalibration, DuplicateFractionNearPaper) {
  // Paper: 23.5% of Theta jobs are duplicates.
  const auto bound = taxonomy::litmus_application_bound(result().dataset);
  EXPECT_GT(bound.stats.duplicate_fraction, 0.19);
  EXPECT_LT(bound.stats.duplicate_fraction, 0.30);
}

TEST_F(ThetaCalibration, NoiseBandNearPaper) {
  // Paper: +-5.71% (68%) / +-10.56% (95%).
  const auto noise = taxonomy::litmus_noise_bound(result().dataset, 1.0);
  EXPECT_GT(noise.band68_pct, 4.0);
  EXPECT_LT(noise.band68_pct, 7.5);
  EXPECT_GT(noise.band95_pct, 8.0);
  EXPECT_LT(noise.band95_pct, 15.0);
}

TEST_F(ThetaCalibration, ConcurrentSetsAreMostlyPairs) {
  // Paper: 70% of same-start sets have 2 jobs; 96% have <= 6.
  const auto noise = taxonomy::litmus_noise_bound(result().dataset, 1.0);
  EXPECT_GT(noise.frac_sets_of_two, 0.6);
  EXPECT_GT(noise.frac_sets_leq_six, 0.9);
}

TEST_F(ThetaCalibration, ConcurrentErrorsHeavierThanNormal) {
  const auto noise = taxonomy::litmus_noise_bound(result().dataset, 1.0);
  EXPECT_LT(noise.t_fit.df, 80.0);
  EXPECT_GE(noise.t_preference, 0.0);
}

TEST_F(ThetaCalibration, NoLmtCollected) {
  EXPECT_FALSE(result().dataset.features.has_column("LMT_OSS_CPU_MEAN"));
}

class CoriCalibration : public ::testing::Test {
 protected:
  static const sim::SimulationResult& result() {
    static const sim::SimulationResult res = sim::simulate(sim::cori_like());
    return res;
  }
};

TEST_F(CoriCalibration, DuplicateFractionNearPaper) {
  // Paper: 54% of Cori jobs are duplicates.
  const auto bound = taxonomy::litmus_application_bound(result().dataset);
  EXPECT_GT(bound.stats.duplicate_fraction, 0.45);
  EXPECT_LT(bound.stats.duplicate_fraction, 0.65);
}

TEST_F(CoriCalibration, NoiseBandNearPaper) {
  // Paper: +-7.21% (68%) / +-14.99% (95%).
  const auto noise = taxonomy::litmus_noise_bound(result().dataset, 1.0);
  EXPECT_GT(noise.band68_pct, 5.2);
  EXPECT_LT(noise.band68_pct, 9.2);
}

TEST_F(CoriCalibration, CoriNoisierThanTheta) {
  // The paper's headline ordering: Cori's noise band exceeds Theta's.
  const auto cori = taxonomy::litmus_noise_bound(result().dataset, 1.0);
  const auto theta_res = sim::simulate(sim::theta_like());
  const auto theta = taxonomy::litmus_noise_bound(theta_res.dataset, 1.0);
  EXPECT_GT(cori.band68_pct, theta.band68_pct);
}

TEST_F(CoriCalibration, LmtCollected) {
  EXPECT_TRUE(result().dataset.features.has_column("LMT_OSS_CPU_MEAN"));
  EXPECT_EQ(result().dataset.features.n_cols(), 48u + 48u + 5u + 37u);
}

TEST_F(CoriCalibration, MoreJobsThanTheta) {
  const auto theta_res = sim::simulate(sim::theta_like());
  EXPECT_GT(result().dataset.size(), theta_res.dataset.size());
}

}  // namespace
}  // namespace iotax
