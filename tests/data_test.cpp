#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/data/dataset.hpp"
#include "src/data/matrix.hpp"
#include "src/data/scaler.hpp"
#include "src/data/split.hpp"
#include "src/data/table.hpp"
#include "src/data/table_io.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

data::Table make_table() {
  data::Table t({"a", "b"});
  t.add_row(std::vector<double>{1.0, 10.0});
  t.add_row(std::vector<double>{2.0, 20.0});
  t.add_row(std::vector<double>{3.0, 30.0});
  return t;
}

TEST(Table, BasicShape) {
  const auto t = make_table();
  EXPECT_EQ(t.n_rows(), 3u);
  EXPECT_EQ(t.n_cols(), 2u);
  EXPECT_TRUE(t.has_column("a"));
  EXPECT_FALSE(t.has_column("z"));
  EXPECT_EQ(t.index_of("b"), 1u);
  EXPECT_THROW(t.index_of("z"), std::out_of_range);
  EXPECT_DOUBLE_EQ(t.at(1, 1), 20.0);
}

TEST(Table, RejectsDuplicateColumn) {
  data::Table t({"a"});
  EXPECT_THROW(t.add_column("a", {}), std::invalid_argument);
  EXPECT_THROW(data::Table({"x", "x"}), std::invalid_argument);
}

TEST(Table, AddColumnChecksRowCount) {
  auto t = make_table();
  EXPECT_THROW(t.add_column("c", {1.0}), std::invalid_argument);
  t.add_column("c", {7.0, 8.0, 9.0});
  EXPECT_DOUBLE_EQ(t.col("c")[2], 9.0);
}

TEST(Table, AddRowChecksColumnCount) {
  auto t = make_table();
  EXPECT_THROW(t.add_row(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Table, SelectReordersColumns) {
  const auto t = make_table();
  const std::vector<std::string> names = {"b", "a"};
  const auto s = t.select(names);
  EXPECT_EQ(s.names()[0], "b");
  EXPECT_DOUBLE_EQ(s.at(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 1.0);
}

TEST(Table, TakeRows) {
  const auto t = make_table();
  const std::vector<std::size_t> rows = {2, 0};
  const auto s = t.take(rows);
  EXPECT_EQ(s.n_rows(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.at(1, 0), 1.0);
}

TEST(Table, HcatAndVcat) {
  const auto t = make_table();
  data::Table extra({"c"});
  extra.add_row(std::vector<double>{5.0});
  extra.add_row(std::vector<double>{6.0});
  extra.add_row(std::vector<double>{7.0});
  const auto wide = t.hcat(extra);
  EXPECT_EQ(wide.n_cols(), 3u);
  EXPECT_DOUBLE_EQ(wide.at(2, 2), 7.0);

  const auto tall = t.vcat(t);
  EXPECT_EQ(tall.n_rows(), 6u);
  EXPECT_DOUBLE_EQ(tall.at(4, 0), 2.0);

  data::Table mismatch({"zzz"});
  EXPECT_THROW(t.vcat(mismatch), std::invalid_argument);
}

TEST(Matrix, ToMatrixMatchesTable) {
  const auto t = make_table();
  const auto m = data::to_matrix(t);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 30.0);
}

TEST(Matrix, RowSpanAndTakeRows) {
  data::Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.row(1)[2], 5.0);
  const std::vector<std::size_t> rows = {1};
  const auto s = m.take_rows(rows);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_DOUBLE_EQ(s(0, 2), 5.0);
}

TEST(Matrix, ColExtraction) {
  const auto m = data::to_matrix(make_table());
  const auto col = m.col(1);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col[1], 20.0);
  EXPECT_THROW(m.col(5), std::out_of_range);
}

TEST(Scaler, StandardizesColumns) {
  const auto m = data::to_matrix(make_table());
  data::StandardScaler scaler;
  const auto z = scaler.fit_transform(m);
  // Column means ~0, population stddev ~1.
  for (std::size_t c = 0; c < z.cols(); ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < z.rows(); ++r) mean += z(r, c);
    EXPECT_NEAR(mean / 3.0, 0.0, 1e-12);
  }
  EXPECT_NEAR(z(0, 0), -1.2247, 1e-3);
}

TEST(Scaler, ConstantColumnMapsToZero) {
  data::Matrix m(3, 1, 5.0);
  data::StandardScaler scaler;
  const auto z = scaler.fit_transform(m);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(z(r, 0), 0.0);
}

TEST(Scaler, TransformBeforeFitThrows) {
  data::StandardScaler scaler;
  EXPECT_THROW(scaler.transform(data::Matrix(1, 1)), std::logic_error);
}

TEST(Scaler, SignedLog1p) {
  data::Matrix m(1, 3);
  m(0, 0) = 0.0;
  m(0, 1) = 999.0;
  m(0, 2) = -999.0;
  const auto z = data::signed_log1p(m);
  EXPECT_DOUBLE_EQ(z(0, 0), 0.0);
  EXPECT_NEAR(z(0, 1), 3.0, 1e-9);
  EXPECT_NEAR(z(0, 2), -3.0, 1e-9);
}

data::Dataset make_dataset(std::size_t n) {
  data::Dataset ds;
  ds.system_name = "test";
  data::Table t({"f1"});
  for (std::size_t i = 0; i < n; ++i) {
    t.add_row(std::vector<double>{static_cast<double>(i)});
    data::JobMeta m;
    m.job_id = i;
    m.app_id = i % 5;
    m.config_id = i % 10;
    m.start_time = static_cast<double>(i) * 100.0;
    m.end_time = m.start_time + 50.0;
    m.log_fa = 2.0;
    m.log_fg = 0.1;
    m.log_fl = -0.05;
    m.log_fn = 0.01;
    ds.meta.push_back(m);
    ds.target.push_back(m.log_throughput());
  }
  ds.features = t;
  return ds;
}

TEST(Dataset, ValidatePassesOnConsistentData) {
  const auto ds = make_dataset(20);
  EXPECT_NO_THROW(ds.validate());
}

TEST(Dataset, ValidateCatchesBadTarget) {
  auto ds = make_dataset(5);
  ds.target[2] += 1.0;
  EXPECT_THROW(ds.validate(), std::logic_error);
}

TEST(Dataset, ValidateCatchesSizeMismatch) {
  auto ds = make_dataset(5);
  ds.target.pop_back();
  EXPECT_THROW(ds.validate(), std::logic_error);
}

TEST(Dataset, TakeSubsets) {
  const auto ds = make_dataset(10);
  const std::vector<std::size_t> rows = {7, 1};
  const auto sub = ds.take(rows);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.meta[0].job_id, 7u);
  EXPECT_DOUBLE_EQ(sub.features.at(1, 0), 1.0);
}

TEST(Dataset, RowsInWindow) {
  const auto ds = make_dataset(10);
  const auto rows = ds.rows_in_window(200.0, 500.0);
  ASSERT_EQ(rows.size(), 3u);  // jobs starting at 200, 300, 400
  EXPECT_EQ(rows[0], 2u);
}

TEST(Split, RandomSplitPartitions) {
  util::Rng rng(1);
  const auto s = data::random_split(100, 0.6, 0.2, rng);
  EXPECT_EQ(s.train.size(), 60u);
  EXPECT_EQ(s.val.size(), 20u);
  EXPECT_EQ(s.test.size(), 20u);
  std::vector<bool> seen(100, false);
  for (auto idx : {s.train, s.val, s.test}) {
    for (auto i : idx) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
}

TEST(Split, RandomSplitRejectsBadFractions) {
  util::Rng rng(2);
  EXPECT_THROW(data::random_split(10, 0.8, 0.4, rng), std::invalid_argument);
  EXPECT_THROW(data::random_split(10, -0.1, 0.4, rng), std::invalid_argument);
}

TEST(Split, TimeSplitRespectsBoundaries) {
  const auto ds = make_dataset(10);  // starts at 0,100,...,900
  const auto s = data::time_split(ds, 500.0, 700.0);
  EXPECT_EQ(s.train.size(), 5u);
  EXPECT_EQ(s.val.size(), 2u);
  EXPECT_EQ(s.test.size(), 3u);
  for (auto i : s.train) EXPECT_LT(ds.meta[i].start_time, 500.0);
  for (auto i : s.test) EXPECT_GE(ds.meta[i].start_time, 700.0);
}

TEST(Split, TimeSplitFractions) {
  const auto ds = make_dataset(10);
  const auto s = data::time_split_fractions(ds, 0.5, 0.2);
  EXPECT_EQ(s.train.size() + s.val.size() + s.test.size(), 10u);
  EXPECT_GE(s.train.size(), 4u);
}

TEST(Split, GroupedSplitKeepsDuplicateSetsTogether) {
  const auto ds = make_dataset(100);  // 10 distinct (app,config) groups...
  util::Rng rng(3);
  const auto s = data::grouped_random_split(ds, 0.6, 0.2, rng);
  EXPECT_EQ(s.train.size() + s.val.size() + s.test.size(), 100u);
  // Build group -> side map and check no group straddles sides.
  auto side_of = [&](std::size_t row) {
    for (auto i : s.train) {
      if (i == row) return 0;
    }
    for (auto i : s.val) {
      if (i == row) return 1;
    }
    return 2;
  };
  for (std::size_t a = 0; a < ds.size(); ++a) {
    for (std::size_t b = a + 1; b < ds.size(); ++b) {
      if (ds.meta[a].app_id == ds.meta[b].app_id &&
          ds.meta[a].config_id == ds.meta[b].config_id) {
        EXPECT_EQ(side_of(a), side_of(b));
      }
    }
  }
}

TEST(TableIo, TableRoundTrip) {
  const auto t = make_table();
  const auto path = std::filesystem::temp_directory_path() / "iotax_tbl.csv";
  data::write_table_csv(path.string(), t);
  const auto back = data::read_table_csv(path.string());
  EXPECT_EQ(back.names(), t.names());
  ASSERT_EQ(back.n_rows(), t.n_rows());
  for (std::size_t r = 0; r < t.n_rows(); ++r) {
    for (std::size_t c = 0; c < t.n_cols(); ++c) {
      EXPECT_DOUBLE_EQ(back.at(r, c), t.at(r, c));
    }
  }
  std::filesystem::remove(path);
}

TEST(TableIo, DatasetRoundTrip) {
  const auto ds = make_dataset(25);
  const auto path = std::filesystem::temp_directory_path() / "iotax_ds.csv";
  data::write_dataset_csv(path.string(), ds);
  const auto back = data::read_dataset_csv(path.string(), "test");
  EXPECT_EQ(back.size(), ds.size());
  EXPECT_NO_THROW(back.validate());
  EXPECT_EQ(back.meta[7].job_id, 7u);
  EXPECT_DOUBLE_EQ(back.meta[3].start_time, 300.0);
  EXPECT_EQ(back.features.names(), ds.features.names());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace iotax
