// End-to-end corruption matrix: every fault class, in both archive
// formats, through parse + ingest in every tolerant mode — no crash,
// quarantine counts exactly equal to the injector's ground truth — and
// the taxonomy pipeline degrading gracefully (per-step health instead
// of an abort) when fed quarantine-thinned data.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/data/store.hpp"
#include "src/faults/injector.hpp"
#include "src/faults/plan.hpp"
#include "src/sim/dataset_builder.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/pipeline.hpp"
#include "src/taxonomy/report_io.hpp"
#include "src/telemetry/binary_log.hpp"
#include "src/telemetry/darshan_log.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

const sim::SimulationResult& fixture() {
  static const auto* res =
      new sim::SimulationResult(sim::simulate(sim::tiny_system(5)));
  return *res;
}

std::vector<telemetry::JobLogRecord> fixture_records(std::size_t n) {
  auto records = fixture().records;
  records.resize(std::min(records.size(), n));
  return records;
}

struct MatrixCase {
  const char* name;
  double faults::FaultPlan::* rate;
  double value;
};

const MatrixCase kMatrix[] = {
    {"truncate", &faults::FaultPlan::truncate, 0.10},
    {"mangle", &faults::FaultPlan::mangle, 0.08},
    {"drop", &faults::FaultPlan::drop, 0.05},
    {"duplicate", &faults::FaultPlan::duplicate, 0.08},
    {"zero_counters", &faults::FaultPlan::zero_counters, 0.05},
    {"bad_throughput", &faults::FaultPlan::bad_throughput, 0.08},
    {"clock_skew", &faults::FaultPlan::clock_skew, 0.10},
    {"reorder", &faults::FaultPlan::reorder, 0.10},
};

faults::FaultPlan single_class_plan(const MatrixCase& c) {
  faults::FaultPlan plan;
  plan.*(c.rate) = c.value;
  plan.seed = 1234;
  return plan;
}

telemetry::ParseOutcome parse_bytes(const std::string& bytes, bool binary) {
  std::istringstream in(bytes);
  return binary ? telemetry::read_binary_archive_outcome(in)
                : telemetry::parse_archive_outcome(in);
}

TEST(CorruptionMatrix, EveryFaultClassEveryFormatEveryTolerantMode) {
  const auto records = fixture_records(400);
  for (const auto& c : kMatrix) {
    const auto plan = single_class_plan(c);
    for (const bool binary : {false, true}) {
      const auto out = faults::inject_archive_bytes(records, plan, binary);
      const auto outcome = parse_bytes(out.bytes, binary);
      ASSERT_TRUE(outcome.ok)
          << c.name << (binary ? " binary: " : " text: ") << outcome.error;
      for (const auto mode :
           {sim::IngestMode::kLenient, sim::IngestMode::kRepair}) {
        sim::IngestResult ingest;
        ASSERT_NO_THROW(ingest = sim::build_dataset_ingest(
                            outcome.records, nullptr, "matrix", nullptr,
                            mode))
            << c.name;
        util::QuarantineReport combined = outcome.quarantine;
        combined.merge(ingest.quarantine);
        for (std::size_t i = 0; i < util::kReasonCount; ++i) {
          const auto reason = static_cast<util::Reason>(i);
          EXPECT_EQ(combined.count(reason), out.report.expected(reason))
              << c.name << (binary ? " binary " : " text ")
              << util::reason_name(reason);
        }
        EXPECT_EQ(ingest.dataset.size(),
                  outcome.records.size() - ingest.quarantine.total());
        EXPECT_NO_THROW(ingest.dataset.validate());
      }
    }
  }
}

TEST(CorruptionMatrix, StrictModeRefusesEveryDetectableFaultClass) {
  const auto records = fixture_records(400);
  for (const auto& c : kMatrix) {
    const auto plan = single_class_plan(c);
    const auto out = faults::inject_archive_bytes(records, plan, true);
    if (out.report.expected_total() == 0) continue;  // silent class
    const auto outcome = parse_bytes(out.bytes, true);
    const bool parse_caught = !outcome.quarantine.empty();
    bool ingest_threw = false;
    try {
      sim::build_dataset_ingest(outcome.records, nullptr, "matrix", nullptr,
                                sim::IngestMode::kStrict);
    } catch (const sim::IngestError&) {
      ingest_threw = true;
    }
    // Every detectable fault is refused somewhere: at the parse layer
    // (truncation, checksum) or by strict ingest (throughput, duplicates).
    EXPECT_TRUE(parse_caught || ingest_threw) << c.name;
  }
}

taxonomy::PipelineConfig trimmed_config() {
  taxonomy::PipelineConfig cfg;
  cfg.grid = {.n_estimators = {16},
              .max_depth = {4},
              .subsample = {0.9},
              .colsample = {0.9},
              .base = {}};
  cfg.run_uq = false;  // shows up as step health "none", by design
  return cfg;
}

TEST(CorruptionMatrix, TaxonomyDegradesGracefullyOnCorruptedTelemetry) {
  const auto records = fixture().records;
  faults::FaultPlan plan;
  plan.truncate = 0.05;
  plan.mangle = 0.03;
  plan.drop = 0.03;
  plan.duplicate = 0.03;
  plan.bad_throughput = 0.03;
  plan.clock_skew = 0.05;
  plan.reorder = 0.05;
  plan.seed = 77;

  const auto clean_ingest = sim::build_dataset_ingest(
      records, nullptr, "clean", nullptr, sim::IngestMode::kLenient);
  const auto out = faults::inject_archive_bytes(records, plan, true);
  const auto outcome = parse_bytes(out.bytes, true);
  ASSERT_TRUE(outcome.ok);
  const auto corrupt_ingest = sim::build_dataset_ingest(
      outcome.records, nullptr, "corrupt", nullptr, sim::IngestMode::kLenient);
  ASSERT_GT(corrupt_ingest.dataset.size(), 0u);
  ASSERT_LT(corrupt_ingest.dataset.size(), clean_ingest.dataset.size());

  const auto cfg = trimmed_config();
  taxonomy::TaxonomyReport clean_report;
  taxonomy::TaxonomyReport corrupt_report;
  ASSERT_NO_THROW(clean_report = taxonomy::run_taxonomy(clean_ingest.dataset,
                                                        cfg));
  ASSERT_NO_THROW(corrupt_report =
                      taxonomy::run_taxonomy(corrupt_ingest.dataset, cfg));

  // One health entry per step, in pipeline order, and the degradation is
  // flagged (UQ disabled => ood has confidence "none").
  ASSERT_EQ(corrupt_report.health.size(), 7u);
  EXPECT_EQ(corrupt_report.health.front().step, "baseline");
  ASSERT_NE(corrupt_report.step_health("ood"), nullptr);
  EXPECT_EQ(corrupt_report.step_health("ood")->confidence, "none");
  EXPECT_TRUE(corrupt_report.degraded());
  const auto rendered = taxonomy::render_report(corrupt_report);
  EXPECT_NE(rendered.find("step health"), std::string::npos);

  // Quarantine-thinned data moves the headline number only boundedly.
  const double clean_err = clean_report.baseline_error;
  const double corrupt_err = corrupt_report.baseline_error;
  EXPECT_TRUE(std::isfinite(corrupt_err));
  EXPECT_LE(std::fabs(corrupt_err - clean_err),
            std::max(0.5 * clean_err, 0.05))
      << "clean " << clean_err << " corrupt " << corrupt_err;
}

TEST(CorruptionMatrix, TinyDatasetDegradesInsteadOfCrashing) {
  const auto& res = fixture();
  std::vector<std::size_t> rows(30);
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  auto ds = res.dataset.take(rows);
  // Uniquify the duplicate-set key so steps 2.1 and 5 cannot run.
  for (std::size_t i = 0; i < ds.meta.size(); ++i) {
    ds.meta[i].config_id = 100000 + i;
  }
  taxonomy::TaxonomyReport report;
  ASSERT_NO_THROW(report = taxonomy::run_taxonomy(ds, trimmed_config()));
  ASSERT_NE(report.step_health("app_bound"), nullptr);
  EXPECT_EQ(report.step_health("app_bound")->confidence, "none");
  ASSERT_NE(report.step_health("noise_bound"), nullptr);
  EXPECT_EQ(report.step_health("noise_bound")->confidence, "none");
  ASSERT_NE(report.step_health("baseline"), nullptr);
  EXPECT_EQ(report.step_health("baseline")->confidence, "reduced");
  EXPECT_TRUE(report.degraded());
  // Share arithmetic stays sane without the skipped steps' numbers.
  EXPECT_GE(report.share_app, 0.0);
  EXPECT_GE(report.share_aleatory, 0.0);
  EXPECT_EQ(report.share_aleatory, 0.0);
  EXPECT_NO_THROW(taxonomy::render_report(report));
}

TEST(CorruptionMatrix, EmptyDatasetIsTheOnlyHardFailure) {
  const auto& res = fixture();
  const auto empty = res.dataset.take(std::vector<std::size_t>{});
  EXPECT_THROW(taxonomy::run_taxonomy(empty, trimmed_config()),
               std::invalid_argument);
}

TEST(CorruptionMatrix, HealthRowsSurviveReportCsvRoundTrip) {
  const auto& res = fixture();
  std::vector<std::size_t> rows(60);
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const auto ds = res.dataset.take(rows);
  const auto report = taxonomy::run_taxonomy(ds, trimmed_config());
  ASSERT_FALSE(report.health.empty());
  const std::string path = (std::filesystem::temp_directory_path() /
                            "iotax_health_report.csv")
                               .string();
  taxonomy::write_report_csv(path, report);
  const auto back = taxonomy::read_report_csv(path);
  std::filesystem::remove(path);
  ASSERT_EQ(back.health.size(), report.health.size());
  for (const auto& h : report.health) {
    const auto* rt = back.step_health(h.step);
    ASSERT_NE(rt, nullptr) << h.step;
    EXPECT_EQ(rt->confidence, h.confidence) << h.step;
    EXPECT_EQ(rt->n_samples, h.n_samples) << h.step;
    EXPECT_EQ(rt->reason, h.reason) << h.step;
    EXPECT_EQ(rt->ran, h.ran) << h.step;
    EXPECT_EQ(rt->degraded, h.degraded) << h.step;
  }
  EXPECT_EQ(back.degraded(), report.degraded());
}

// ------------------------------------------- column-store truncation

// A small dataset (3 feature columns) keeps the manifest short enough to
// truncate at *every* byte offset in reasonable time.
data::Dataset tiny_store_dataset(std::size_t rows) {
  data::Dataset ds;
  ds.system_name = "trunc";
  util::Rng rng(31);
  for (const char* name : {"A", "B", "C"}) {
    std::vector<double> col(rows);
    for (auto& v : col) v = rng.uniform(-5.0, 5.0);
    ds.features.add_column(name, std::move(col));
  }
  ds.meta.resize(rows);
  ds.target.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    ds.meta[r].job_id = r + 1;
    ds.meta[r].app_id = 10 + r % 3;
    ds.meta[r].config_id = 100 + r % 5;
    ds.meta[r].start_time = 1000.0 * static_cast<double>(r);
    ds.meta[r].end_time = ds.meta[r].start_time + 500.0;
    ds.meta[r].nodes = 4;
    ds.meta[r].log_fa = rng.uniform(0.0, 3.0);
    ds.target[r] = ds.meta[r].log_throughput();
  }
  return ds;
}

std::string file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_bytes(const std::filesystem::path& path, const std::string& bytes,
                 std::size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(n));
}

TEST(CorruptionMatrix, StoreManifestTruncatedAtEveryByteNeverCrashes) {
  const auto ds = tiny_store_dataset(24);
  const auto dir = std::filesystem::temp_directory_path() /
                   "iotax_store_manifest_trunc";
  std::filesystem::remove_all(dir);
  data::pack_dataset(dir.string(), ds);
  const auto manifest_path = dir / "manifest.json";
  const auto manifest = file_bytes(manifest_path);
  ASSERT_GT(manifest.size(), 2u);

  for (std::size_t n = 0; n < manifest.size(); ++n) {
    write_bytes(manifest_path, manifest, n);
    data::ColumnStore::OpenOutcome outcome;
    ASSERT_NO_THROW(outcome = data::ColumnStore::open(dir.string(), true))
        << "manifest truncated to " << n << " byte(s)";
    // The manifest ends in a single newline; cutting only that leaves a
    // complete JSON document, which is the one prefix allowed to open.
    if (n + 1 < manifest.size()) {
      ASSERT_FALSE(outcome.ok())
          << "manifest truncated to " << n << " byte(s) opened";
      ASSERT_FALSE(outcome.quarantine.empty());
      EXPECT_NE(outcome.first_error().find("manifest.json"),
                std::string::npos)
          << outcome.first_error();
    }
  }
  write_bytes(manifest_path, manifest, manifest.size());
  ASSERT_TRUE(data::ColumnStore::open(dir.string(), true).ok());
  std::filesystem::remove_all(dir);
}

TEST(CorruptionMatrix, StoreColumnTruncatedAtEveryByteNeverCrashes) {
  const auto ds = tiny_store_dataset(16);
  const auto dir =
      std::filesystem::temp_directory_path() / "iotax_store_col_trunc";
  std::filesystem::remove_all(dir);
  data::pack_dataset(dir.string(), ds);
  const auto col_path = dir / "c1.f64";
  const auto col = file_bytes(col_path);
  ASSERT_EQ(col.size(), ds.size() * sizeof(double));

  for (std::size_t n = 0; n < col.size(); ++n) {
    write_bytes(col_path, col, n);
    data::ColumnStore::OpenOutcome outcome;
    ASSERT_NO_THROW(outcome = data::ColumnStore::open(dir.string(), true))
        << "column truncated to " << n << " byte(s)";
    ASSERT_FALSE(outcome.ok())
        << "column truncated to " << n << " byte(s) opened";
    EXPECT_GE(outcome.quarantine.count(util::Reason::kTruncated), 1u)
        << "column truncated to " << n << " byte(s)";
    EXPECT_NE(outcome.first_error().find("c1.f64"), std::string::npos)
        << outcome.first_error();
  }
  write_bytes(col_path, col, col.size());
  ASSERT_TRUE(data::ColumnStore::open(dir.string(), true).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace iotax
