// Property-based suites for the ML layer: invariants that must hold
// across hyperparameter settings, not just the defaults.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/ml/binning.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/linear.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/nn.hpp"
#include "src/stats/descriptive.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

Xy make_data(std::size_t n, std::uint64_t seed, double noise = 0.05) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(n, 4);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    const double c = rng.uniform(0.0, 1.0);
    d.x(i, 0) = a;
    d.x(i, 1) = b;
    d.x(i, 2) = c;
    d.x(i, 3) = rng.normal();  // pure noise feature
    d.y[i] = std::sin(a) + 0.5 * a * b - c * c + rng.normal(0.0, noise);
  }
  return d;
}

// ------------------------------------------------------------------ GBT

class GbtHyperProperty
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, double, double>> {};

TEST_P(GbtHyperProperty, FitsBetterThanMeanAndIsDeterministic) {
  const auto [trees, depth, subsample, colsample] = GetParam();
  const auto train = make_data(1200, 1);
  const auto test = make_data(400, 2);
  ml::GbtParams p;
  p.n_estimators = trees;
  p.max_depth = depth;
  p.subsample = subsample;
  p.colsample = colsample;
  ml::GradientBoostedTrees a(p);
  a.fit(train.x, train.y);
  const auto pred = a.predict(test.x);
  // Better than predicting the mean.
  std::vector<double> mean_pred(test.y.size(),
                                stats::mean(std::span(train.y)));
  EXPECT_LT(ml::rmse_log(test.y, pred), ml::rmse_log(test.y, mean_pred));
  // Deterministic.
  ml::GradientBoostedTrees b(p);
  b.fit(train.x, train.y);
  const auto pred_b = b.predict(test.x);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    ASSERT_DOUBLE_EQ(pred[i], pred_b[i]);
  }
  // Importances normalised.
  const auto imp = a.feature_importances();
  double total = 0.0;
  for (const auto v : imp) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GbtHyperProperty,
    ::testing::Values(std::tuple{10ul, 3ul, 1.0, 1.0},
                      std::tuple{50ul, 6ul, 1.0, 1.0},
                      std::tuple{50ul, 6ul, 0.7, 0.7},
                      std::tuple{100ul, 2ul, 0.9, 0.5},
                      std::tuple{30ul, 12ul, 0.5, 1.0}));

// ------------------------------------------------------------------ MLP

class MlpHyperProperty
    : public ::testing::TestWithParam<
          std::tuple<std::vector<std::size_t>, double, bool>> {};

TEST_P(MlpHyperProperty, TrainsAndBeatsMean) {
  const auto [hidden, dropout, nll] = GetParam();
  const auto train = make_data(1500, 3);
  const auto test = make_data(400, 4);
  ml::MlpParams p;
  p.hidden = hidden;
  p.dropout = dropout;
  p.nll_head = nll;
  p.epochs = 40;
  p.learning_rate = 3e-3;
  ml::Mlp model(p);
  model.fit(train.x, train.y);
  const auto pred = model.predict(test.x);
  std::vector<double> mean_pred(test.y.size(),
                                stats::mean(std::span(train.y)));
  EXPECT_LT(ml::rmse_log(test.y, pred),
            0.9 * ml::rmse_log(test.y, mean_pred));
  if (nll) {
    const auto dist = model.predict_dist(test.x);
    for (const auto v : dist.variance) {
      EXPECT_GT(v, 0.0);
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MlpHyperProperty,
    ::testing::Values(
        std::tuple{std::vector<std::size_t>{16}, 0.0, false},
        std::tuple{std::vector<std::size_t>{32, 32}, 0.0, false},
        std::tuple{std::vector<std::size_t>{32, 32}, 0.1, false},
        std::tuple{std::vector<std::size_t>{24, 24, 24}, 0.0, true},
        std::tuple{std::vector<std::size_t>{64}, 0.05, true}));

// -------------------------------------------------------------- Binning

class BinningProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BinningProperty, EncodePreservesOrderAndParity) {
  const std::size_t bins = GetParam();
  util::Rng rng(77);
  data::Matrix x(500, 2);
  for (std::size_t i = 0; i < 500; ++i) {
    x(i, 0) = rng.student_t(3.0);
    x(i, 1) = std::floor(rng.uniform(0.0, 5.0));  // low cardinality
  }
  const ml::BinnedMatrix binned(x, bins);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_LE(binned.n_bins(c), bins);
    for (std::size_t i = 0; i < 500; ++i) {
      ASSERT_EQ(binned.encode(c, x(i, c)), binned.code(i, c));
    }
    // Monotone: larger raw value -> bin code not smaller.
    for (std::size_t i = 0; i < 499; ++i) {
      for (std::size_t j = i + 1; j < std::min<std::size_t>(i + 5, 500);
           ++j) {
        if (x(i, c) <= x(j, c)) {
          ASSERT_LE(binned.encode(c, x(i, c)), binned.encode(c, x(j, c)));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BinningProperty,
                         ::testing::Values(2u, 4u, 16u, 64u, 256u, 1024u));

// -------------------------------------------------------------- Metrics

class MetricsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricsProperty, MedianLeqMeanForAbsErrors) {
  util::Rng rng(GetParam());
  std::vector<double> yt(300);
  std::vector<double> yp(300);
  for (std::size_t i = 0; i < 300; ++i) {
    yt[i] = rng.uniform(1.0, 5.0);
    yp[i] = yt[i] + 0.1 * rng.student_t(3.0);  // heavy-tailed errors
  }
  // Heavy tails: median below mean (the paper's reason for medians, §V).
  EXPECT_LE(ml::median_abs_log_error(yt, yp),
            ml::mean_abs_log_error(yt, yp) + 1e-12);
  EXPECT_LE(ml::mean_abs_log_error(yt, yp), ml::rmse_log(yt, yp) + 1e-12);
}

TEST_P(MetricsProperty, ScaleInvarianceOfRatioError) {
  util::Rng rng(GetParam() + 500);
  std::vector<double> yt(100);
  std::vector<double> yp(100);
  for (std::size_t i = 0; i < 100; ++i) {
    yt[i] = rng.uniform(1.0, 5.0);
    yp[i] = yt[i] + rng.normal(0.0, 0.2);
  }
  // Adding a constant in log space (multiplying throughputs by a factor)
  // shifts both equally and leaves the error unchanged.
  auto yt2 = yt;
  auto yp2 = yp;
  for (auto& v : yt2) v += 3.0;
  for (auto& v : yp2) v += 3.0;
  EXPECT_NEAR(ml::median_abs_log_error(yt, yp),
              ml::median_abs_log_error(yt2, yp2), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty,
                         ::testing::Values(21u, 22u, 23u, 24u));

}  // namespace
}  // namespace iotax
