// Edge-case hardening across modules: the inputs a production deployment
// will eventually feed the library.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/data/split.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/kmeans.hpp"
#include "src/sim/weather.hpp"
#include "src/stats/descriptive.hpp"
#include "src/stats/histogram.hpp"
#include "src/taxonomy/duplicates.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

TEST(EdgeCases, SingleElementStatistics) {
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(stats::mean(one), 42.0);
  EXPECT_DOUBLE_EQ(stats::median(one), 42.0);
  EXPECT_DOUBLE_EQ(stats::quantile(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(stats::quantile(one, 1.0), 42.0);
  EXPECT_DOUBLE_EQ(stats::mad(one), 0.0);
  const auto s = stats::summarize(one);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(EdgeCases, AllEqualSamples) {
  const std::vector<double> flat(100, 3.0);
  EXPECT_DOUBLE_EQ(stats::variance(flat), 0.0);
  EXPECT_DOUBLE_EQ(stats::mad(flat), 0.0);
  // Correlation of a constant with anything is defined as 0 here.
  std::vector<double> ramp(100);
  for (std::size_t i = 0; i < 100; ++i) ramp[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(stats::correlation(flat, ramp), 0.0);
}

TEST(EdgeCases, GbtOnConstantTarget) {
  data::Matrix x(50, 2);
  util::Rng rng(1);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
  }
  const std::vector<double> y(50, 2.5);
  ml::GradientBoostedTrees model({.n_estimators = 10});
  model.fit(x, y);
  for (const double p : model.predict(x)) EXPECT_NEAR(p, 2.5, 1e-9);
  // Importances are all zero (no split ever gains) and stay normalisable.
  for (const double v : model.feature_importances()) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(EdgeCases, GbtOnConstantFeatures) {
  data::Matrix x(60, 3, 1.0);  // every feature constant
  std::vector<double> y(60);
  util::Rng rng(2);
  for (auto& v : y) v = rng.normal(5.0, 1.0);
  ml::GradientBoostedTrees model({.n_estimators = 5});
  model.fit(x, y);
  const auto pred = model.predict(x);
  // Nothing to split on: every prediction equals the target mean.
  for (const double p : pred) EXPECT_NEAR(p, stats::mean(y), 1e-9);
}

TEST(EdgeCases, DuplicateSetsOnAllUniqueAndAllSame) {
  data::Dataset unique;
  unique.system_name = "u";
  data::Table t1({"f"});
  for (std::size_t i = 0; i < 10; ++i) {
    t1.add_row(std::vector<double>{static_cast<double>(i)});
    data::JobMeta m;
    m.job_id = i;
    m.app_id = i;
    m.config_id = i;
    m.end_time = 1.0;
    unique.meta.push_back(m);
    unique.target.push_back(0.0);
  }
  unique.features = t1;
  EXPECT_TRUE(taxonomy::find_duplicate_sets(unique).empty());

  data::Dataset same = unique;
  for (auto& m : same.meta) {
    m.app_id = 1;
    m.config_id = 1;
  }
  const auto sets = taxonomy::find_duplicate_sets(same);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].rows.size(), 10u);
}

TEST(EdgeCases, WeatherSingleEpochNoDegradations) {
  sim::WeatherParams params;
  params.horizon = 86400.0;
  params.n_epochs = 1;
  params.degradations_per_year = 0.0;
  params.seasonal_amplitude = 0.0;
  util::Rng rng(3);
  const sim::GlobalWeather w(params, rng);
  EXPECT_TRUE(w.epoch_boundaries().empty());
  // Offset is a single constant over the whole horizon.
  EXPECT_DOUBLE_EQ(w.log_offset(0.0), w.log_offset(86000.0));
  EXPECT_FALSE(w.degraded(1000.0));
}

TEST(EdgeCases, HistogramSingleBin) {
  stats::Histogram h(0.0, 1.0, 1);
  h.add(0.5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_DOUBLE_EQ(h.density(0), 3.0 / 3.0);
}

TEST(EdgeCases, SplitsOnTinyDatasets) {
  util::Rng rng(4);
  const auto s = data::random_split(1, 0.5, 0.25, rng);
  EXPECT_EQ(s.train.size() + s.val.size() + s.test.size(), 1u);
  const auto s0 = data::random_split(0, 0.5, 0.25, rng);
  EXPECT_TRUE(s0.train.empty());
  EXPECT_TRUE(s0.test.empty());
}

TEST(EdgeCases, KMeansWithKEqualToRows) {
  data::Matrix x(4, 1);
  for (std::size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i * 10);
  ml::KMeansParams params;
  params.k = 4;
  ml::KMeans km(params);
  km.fit(x);
  // Each point gets its own cluster; inertia ~ 0.
  EXPECT_NEAR(km.inertia(), 0.0, 1e-9);
  EXPECT_THROW(
      [] {
        data::Matrix tiny(2, 1);
        ml::KMeansParams p;
        p.k = 4;
        ml::KMeans bad(p);
        bad.fit(tiny);
      }(),
      std::invalid_argument);
}

TEST(EdgeCases, RngExtremeRanges) {
  util::Rng rng(5);
  EXPECT_EQ(rng.uniform_int(std::numeric_limits<std::int64_t>::min(),
                            std::numeric_limits<std::int64_t>::min()),
            std::numeric_limits<std::int64_t>::min());
  // Full-range draws don't hang or throw.
  for (int i = 0; i < 10; ++i) {
    (void)rng.uniform_int(std::numeric_limits<std::int64_t>::min(),
                          std::numeric_limits<std::int64_t>::max());
  }
}

TEST(EdgeCases, WeightedQuantileSingleNonZeroWeight) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> w = {0.0, 1.0, 0.0};
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(stats::weighted_quantile(xs, w, q), 2.0);
  }
}

}  // namespace
}  // namespace iotax
