#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/descriptive.hpp"
#include "src/taxonomy/duplicates.hpp"
#include "src/taxonomy/feature_sets.hpp"
#include "src/taxonomy/litmus.hpp"
#include "src/taxonomy/pipeline.hpp"

namespace iotax {
namespace {

// A hand-built dataset with known duplicate structure.
data::Dataset toy_dataset() {
  data::Dataset ds;
  ds.system_name = "toy";
  data::Table t({"f"});
  const auto add = [&](std::uint64_t app, std::uint64_t cfg, double start,
                       double target) {
    t.add_row(std::vector<double>{static_cast<double>(cfg)});
    data::JobMeta m;
    m.job_id = ds.meta.size();
    m.app_id = app;
    m.config_id = cfg;
    m.start_time = start;
    m.end_time = start + 10.0;
    m.log_fa = target;  // attribute everything to fa for simplicity
    ds.meta.push_back(m);
    ds.target.push_back(target);
  };
  // Set A: 3 duplicates of (app 1, cfg 1), spread over time.
  add(1, 1, 0.0, 2.0);
  add(1, 1, 100.0, 2.2);
  add(1, 1, 200.0, 1.8);
  // Set B: 2 concurrent duplicates of (app 2, cfg 7).
  add(2, 7, 50.0, 3.0);
  add(2, 7, 50.4, 3.1);
  // Unique jobs.
  add(3, 9, 10.0, 1.0);
  add(4, 11, 20.0, 1.5);
  ds.features = t;
  return ds;
}

TEST(Duplicates, FindsSetsOfTwoOrMore) {
  const auto ds = toy_dataset();
  const auto sets = taxonomy::find_duplicate_sets(ds);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].rows.size(), 3u);
  EXPECT_NEAR(sets[0].mean_target, 2.0, 1e-12);
  EXPECT_EQ(sets[1].rows.size(), 2u);
  EXPECT_NEAR(sets[1].mean_target, 3.05, 1e-12);
}

TEST(Duplicates, StatsMatchPaperDefinitions) {
  const auto ds = toy_dataset();
  const auto sets = taxonomy::find_duplicate_sets(ds);
  const auto stats = taxonomy::duplicate_stats(ds, sets);
  EXPECT_EQ(stats.n_sets, 2u);
  EXPECT_EQ(stats.n_duplicate_jobs, 5u);
  EXPECT_NEAR(stats.duplicate_fraction, 5.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.largest_set, 3u);
}

TEST(Duplicates, ErrorsApplyBesselCorrection) {
  const auto ds = toy_dataset();
  const auto sets = taxonomy::find_duplicate_sets(ds);
  const auto errors = taxonomy::duplicate_errors(ds, sets);
  ASSERT_EQ(errors.size(), 5u);
  // Set A: raw deviations 0, +0.2, -0.2; Bessel factor sqrt(3/2).
  EXPECT_NEAR(errors[0], 0.0, 1e-12);
  EXPECT_NEAR(errors[1], 0.2 * std::sqrt(1.5), 1e-12);
  EXPECT_NEAR(errors[2], -0.2 * std::sqrt(1.5), 1e-12);
  // Set B: deviations -0.05/+0.05; factor sqrt(2).
  EXPECT_NEAR(errors[3], -0.05 * std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(errors[4], 0.05 * std::sqrt(2.0), 1e-12);
}

TEST(Duplicates, PairsWeightedPerSet) {
  const auto ds = toy_dataset();
  const auto sets = taxonomy::find_duplicate_sets(ds);
  const auto pairs = taxonomy::duplicate_pairs(ds, sets);
  ASSERT_EQ(pairs.size(), 3u + 1u);  // C(3,2) + C(2,2)
  double weight_a = 0.0;
  double weight_b = 0.0;
  for (const auto& p : pairs) {
    if (ds.meta[p.row_a].app_id == 1) {
      weight_a += p.weight;
    } else {
      weight_b += p.weight;
    }
  }
  // Each set contributes total weight 1 regardless of size.
  EXPECT_NEAR(weight_a, 1.0, 1e-12);
  EXPECT_NEAR(weight_b, 1.0, 1e-12);
}

TEST(Duplicates, PairDtAndDphi) {
  const auto ds = toy_dataset();
  const auto sets = taxonomy::find_duplicate_sets(ds);
  const auto pairs = taxonomy::duplicate_pairs(ds, sets);
  const auto* concurrent = &pairs[0];
  for (const auto& p : pairs) {
    if (ds.meta[p.row_a].app_id == 2) concurrent = &p;
  }
  EXPECT_NEAR(concurrent->dt, 0.4, 1e-9);
  EXPECT_NEAR(std::fabs(concurrent->dphi), 0.1, 1e-9);
}

TEST(Duplicates, ConcurrentSubsetsSplitByWindow) {
  const auto ds = toy_dataset();
  const auto sets = taxonomy::find_duplicate_sets(ds);
  const auto conc = taxonomy::concurrent_subsets(ds, sets, 1.0);
  // Only set B has members within 1 s of each other.
  ASSERT_EQ(conc.size(), 1u);
  EXPECT_EQ(conc[0].app_id, 2u);
  EXPECT_EQ(conc[0].rows.size(), 2u);
  // A wide window captures set A too.
  const auto wide = taxonomy::concurrent_subsets(ds, sets, 500.0);
  EXPECT_EQ(wide.size(), 2u);
}

TEST(Duplicates, LargeSetPairsAreSubsampled) {
  data::Dataset ds;
  ds.system_name = "big";
  data::Table t({"f"});
  for (std::size_t i = 0; i < 500; ++i) {
    t.add_row(std::vector<double>{1.0});
    data::JobMeta m;
    m.job_id = i;
    m.app_id = 1;
    m.config_id = 1;
    m.start_time = static_cast<double>(i);
    m.end_time = m.start_time + 1.0;
    m.log_fa = 2.0;
    ds.meta.push_back(m);
    ds.target.push_back(2.0);
  }
  ds.features = t;
  const auto sets = taxonomy::find_duplicate_sets(ds);
  const auto pairs = taxonomy::duplicate_pairs(ds, sets, 200);
  EXPECT_EQ(pairs.size(), 499u);  // consecutive pairs, not C(500,2)
}

TEST(FeatureSets, SelectsRequestedColumns) {
  const auto res = sim::simulate(sim::tiny_system(3));
  const auto cols = taxonomy::feature_columns(
      res.dataset, {taxonomy::FeatureSet::kPosix});
  EXPECT_EQ(cols.size(), 48u);
  const auto m = taxonomy::feature_matrix(
      res.dataset,
      {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kStartTimeOnly});
  EXPECT_EQ(m.cols(), 49u);
  EXPECT_EQ(m.rows(), res.dataset.size());
  // The last column must be the start time.
  EXPECT_DOUBLE_EQ(m(0, 48), res.dataset.meta[0].start_time);
}

TEST(FeatureSets, RowSubsetting) {
  const auto res = sim::simulate(sim::tiny_system(3));
  const std::vector<std::size_t> rows = {5, 2};
  const auto m = taxonomy::feature_matrix(res.dataset,
                                          {taxonomy::FeatureSet::kCobalt},
                                          rows);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 2), res.dataset.meta[2].start_time);
  const auto y = taxonomy::targets(res.dataset, rows);
  EXPECT_DOUBLE_EQ(y[0], res.dataset.target[5]);
}

TEST(FeatureSets, MissingGroupThrows) {
  const auto cfg = sim::tiny_system(3);
  auto no_lmt = cfg;
  no_lmt.platform.lmt_enabled = false;
  const auto res = sim::simulate(no_lmt);
  EXPECT_THROW(
      taxonomy::feature_columns(res.dataset, {taxonomy::FeatureSet::kLmt}),
      std::invalid_argument);
}

TEST(LitmusApp, BoundPositiveAndBelowBaselineSpread) {
  const auto res = sim::simulate(sim::tiny_system(3));
  const auto bound = taxonomy::litmus_application_bound(res.dataset);
  EXPECT_GT(bound.stats.n_sets, 10u);
  EXPECT_GT(bound.median_abs_error, 0.001);
  EXPECT_LT(bound.median_abs_error, 0.2);
  EXPECT_GE(bound.mean_abs_error, bound.median_abs_error * 0.5);
}

TEST(LitmusApp, ThrowsWithoutDuplicates) {
  data::Dataset ds;
  ds.system_name = "unique";
  data::Table t({"f"});
  for (std::size_t i = 0; i < 5; ++i) {
    t.add_row(std::vector<double>{static_cast<double>(i)});
    data::JobMeta m;
    m.job_id = i;
    m.app_id = i;
    m.config_id = i;
    m.end_time = 1.0;
    m.log_fa = 1.0;
    ds.meta.push_back(m);
    ds.target.push_back(1.0);
  }
  ds.features = t;
  EXPECT_THROW(taxonomy::litmus_application_bound(ds), std::invalid_argument);
}

TEST(LitmusOod, AttributesErrorAboveThreshold) {
  const std::vector<double> eu = {0.01, 0.02, 0.5, 0.6, 0.015};
  const std::vector<double> err = {0.1, 0.1, 0.4, 0.6, 0.1};
  const auto res = taxonomy::litmus_ood(eu, err, 0.4);
  EXPECT_EQ(res.n_ood, 2u);
  EXPECT_NEAR(res.frac_ood, 0.4, 1e-12);
  EXPECT_NEAR(res.error_share_ood, 1.0 / 1.3, 1e-9);
  EXPECT_TRUE(res.is_ood[2]);
  EXPECT_TRUE(res.is_ood[3]);
  EXPECT_FALSE(res.is_ood[0]);
  EXPECT_GT(res.error_ratio, 1.5);
}

TEST(LitmusOod, AutomaticShoulderThreshold) {
  // 100 low-EU low-error jobs plus 2 high-EU high-error outliers.
  std::vector<double> eu(100, 0.01);
  std::vector<double> err(100, 0.05);
  eu.push_back(0.9);
  err.push_back(1.0);
  eu.push_back(0.8);
  err.push_back(1.0);
  const auto res = taxonomy::litmus_ood(eu, err, std::nullopt, 0.2);
  EXPECT_EQ(res.n_ood, 2u);
  EXPECT_GT(res.error_ratio, 5.0);
}

TEST(LitmusOod, RejectsBadInput) {
  const std::vector<double> eu = {0.1};
  const std::vector<double> err = {0.1, 0.2};
  EXPECT_THROW(taxonomy::litmus_ood(eu, err), std::invalid_argument);
  EXPECT_THROW(taxonomy::litmus_ood({}, {}), std::invalid_argument);
}

// --- Ground-truth validation: the headline property of this repo. ---

class NoiseLitmusTest : public ::testing::Test {
 protected:
  static const sim::SimulationResult& result() {
    static const sim::SimulationResult res = [] {
      auto cfg = sim::tiny_system(9);
      cfg.workload.n_jobs = 3000;
      cfg.workload.batch_prob = 0.12;  // plenty of concurrent duplicates
      return sim::simulate(cfg);
    }();
    return res;
  }
};

TEST_F(NoiseLitmusTest, RecoversConfiguredNoiseLevel) {
  const auto& res = result();
  const auto noise = taxonomy::litmus_noise_bound(res.dataset, 1.0);
  EXPECT_GT(noise.n_sets, 20u);
  // The estimated sigma must bracket the configured platform noise.
  // (App noise sensitivities average slightly above 1, and concurrent
  // duplicates see small contention differences, so the estimate sits a
  // bit above the configured base sigma.)
  const double base = res.config.platform.noise_sigma_log10;
  EXPECT_GT(noise.sigma_log10, 0.7 * base);
  EXPECT_LT(noise.sigma_log10, 2.5 * base);
}

TEST_F(NoiseLitmusTest, BandsAreConsistent) {
  const auto& res = result();
  const auto noise = taxonomy::litmus_noise_bound(res.dataset, 1.0);
  EXPECT_GT(noise.band68_pct, 0.0);
  EXPECT_GT(noise.band95_pct, noise.band68_pct * 1.5);
  EXPECT_LT(noise.band95_pct, noise.band68_pct * 2.5);
}

TEST_F(NoiseLitmusTest, SmallSetsDominateConcurrentDuplicates) {
  const auto& res = result();
  const auto noise = taxonomy::litmus_noise_bound(res.dataset, 1.0);
  // Paper (§IX.A): 70% of same-start sets have 2 jobs, 96% have <= 6.
  EXPECT_GT(noise.frac_sets_of_two, 0.4);
  EXPECT_GT(noise.frac_sets_leq_six, 0.85);
}

TEST_F(NoiseLitmusTest, NoiseBoundBelowAppBound) {
  // Concurrent duplicates exclude weather drift, so their bound must sit
  // below the all-duplicates application bound.
  const auto& res = result();
  const auto noise = taxonomy::litmus_noise_bound(res.dataset, 1.0);
  const auto app = taxonomy::litmus_application_bound(res.dataset);
  EXPECT_LT(noise.median_abs_error, app.median_abs_error * 1.05);
}

TEST_F(NoiseLitmusTest, ExcludeMaskRemovesRows) {
  const auto& res = result();
  std::vector<bool> exclude(res.dataset.size(), false);
  // Exclude everything -> too few sets -> throws.
  for (auto b : {true}) {
    std::fill(exclude.begin(), exclude.end(), b);
  }
  EXPECT_THROW(taxonomy::litmus_noise_bound(res.dataset, 1.0, &exclude),
               std::invalid_argument);
}

TEST(DtBins, SpreadGrowsWithSeparationUnderWeather) {
  // Amplify weather so the separated-pair spread must exceed the
  // concurrent-pair spread (noise only) clearly.
  auto cfg = sim::tiny_system(9);
  cfg.workload.n_jobs = 3000;
  cfg.workload.batch_prob = 0.12;
  cfg.weather.degradations_per_year = 60.0;
  cfg.weather.degradation_min_severity = 0.10;
  cfg.weather.degradation_max_severity = 0.35;
  cfg.weather.epoch_offset_sigma = 0.06;
  cfg.weather.n_epochs = 6;
  const auto res = sim::simulate(cfg);
  const std::vector<double> edges = {1.0, 3600.0, 86400.0, 864000.0,
                                     8640000.0};
  const auto bins = taxonomy::dt_binned_distributions(res.dataset, edges);
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_GT(bins[0].n_pairs, 10u);
  ASSERT_GT(bins[3].n_pairs, 10u);
  // Concurrent pairs: noise only. Week+-separated pairs: noise + weather.
  EXPECT_GT(bins[3].stddev, bins[0].stddev * 1.1);
  // Quantiles are ordered in every populated bin.
  for (const auto& b : bins) {
    if (b.n_pairs < 10) continue;
    EXPECT_LE(b.p05, b.p25);
    EXPECT_LE(b.p25, b.median);
    EXPECT_LE(b.median, b.p75);
    EXPECT_LE(b.p75, b.p95);
  }
}

TEST(LitmusSystem, TimeFeatureReducesErrorDuringWeather) {
  // Strong weather, modest noise: the start-time golden model must win.
  auto cfg = sim::tiny_system(12);
  cfg.weather.degradations_per_year = 40.0;
  cfg.weather.degradation_min_severity = 0.15;
  cfg.weather.degradation_max_severity = 0.35;
  cfg.weather.epoch_offset_sigma = 0.05;
  const auto res = sim::simulate(cfg);
  const auto split = data::time_split_fractions(res.dataset, 0.6, 0.2);
  ml::GbtParams params;
  params.n_estimators = 64;
  params.max_depth = 8;
  const auto bound = taxonomy::litmus_system_bound(
      res.dataset, split, {taxonomy::FeatureSet::kPosix}, params);
  EXPECT_LT(bound.err_with_time, bound.err_app_only);
  EXPECT_GT(bound.reduction_frac, 0.05);
}

TEST(Pipeline, RunsEndToEndAndRenders) {
  auto cfg = sim::tiny_system(15);
  cfg.workload.n_jobs = 2500;
  const auto res = sim::simulate(cfg);
  taxonomy::PipelineConfig pc;
  pc.run_uq = false;  // UQ exercised separately; keep this test fast
  pc.grid.n_estimators = {32, 64};
  pc.grid.max_depth = {6, 10};
  const auto report = taxonomy::run_taxonomy(res.dataset, pc);

  EXPECT_GT(report.baseline_error, 0.0);
  EXPECT_GT(report.app_bound.median_abs_error, 0.0);
  EXPECT_LE(report.tuned_error, report.baseline_error * 1.15);
  EXPECT_GT(report.noise.median_abs_error, 0.0);
  // Segment sanity: all in [0,1]; noise floor below the app bound.
  for (double share :
       {report.share_app, report.share_system, report.share_ood,
        report.share_aleatory, report.share_unexplained}) {
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0);
  }
  EXPECT_LE(report.noise.median_abs_error,
            report.app_bound.median_abs_error * 1.05);

  const auto text = taxonomy::render_report(report);
  EXPECT_NE(text.find("taxonomy report"), std::string::npos);
  EXPECT_NE(text.find("Step 5"), std::string::npos);
  EXPECT_NE(text.find("unexplained"), std::string::npos);
}

}  // namespace
}  // namespace iotax
