#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <unordered_map>

#include "src/sim/app_model.hpp"
#include "src/sim/contention.hpp"
#include "src/sim/lmt_gen.hpp"
#include "src/sim/platform.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/weather.hpp"
#include "src/sim/workload.hpp"
#include "src/stats/descriptive.hpp"

namespace iotax {
namespace {

TEST(Platform, PresetsValidate) {
  EXPECT_NO_THROW(sim::theta_platform().validate());
  EXPECT_NO_THROW(sim::cori_platform().validate());
  EXPECT_FALSE(sim::theta_platform().lmt_enabled);
  EXPECT_TRUE(sim::cori_platform().lmt_enabled);
}

TEST(Platform, RejectsBadConfig) {
  auto p = sim::theta_platform();
  p.peak_bandwidth_mib = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

telemetry::IoSignature basic_signature() {
  telemetry::IoSignature sig;
  sig.bytes_read = 1e10;
  sig.bytes_written = 1e10;
  sig.n_procs = 256;
  sig.read_size_frac[6] = 1.0;
  sig.write_size_frac[6] = 1.0;
  sig.seq_read_frac = 0.9;
  sig.seq_write_frac = 0.9;
  return sig;
}

TEST(AppModel, IdealThroughputIsDeterministic) {
  const auto p = sim::theta_platform();
  const auto sig = basic_signature();
  EXPECT_DOUBLE_EQ(sim::ideal_log_throughput(sig, p),
                   sim::ideal_log_throughput(sig, p));
}

TEST(AppModel, LargerAccessesAreFaster) {
  const auto p = sim::theta_platform();
  auto large = basic_signature();
  auto small = basic_signature();
  small.read_size_frac = {};
  small.read_size_frac[1] = 1.0;
  small.write_size_frac = {};
  small.write_size_frac[1] = 1.0;
  EXPECT_GT(sim::ideal_log_throughput(large, p),
            sim::ideal_log_throughput(small, p) + 0.5);
}

TEST(AppModel, SequentialBeatsRandom) {
  const auto p = sim::theta_platform();
  auto seq = basic_signature();
  auto rnd = basic_signature();
  rnd.seq_read_frac = 0.0;
  rnd.seq_write_frac = 0.0;
  EXPECT_GT(sim::ideal_log_throughput(seq, p),
            sim::ideal_log_throughput(rnd, p));
}

TEST(AppModel, MoreProcsMoreBandwidthUntilSaturation) {
  const auto p = sim::theta_platform();
  auto few = basic_signature();
  few.n_procs = 4;
  auto many = basic_signature();
  many.n_procs = 512;
  auto huge = basic_signature();
  huge.n_procs = 200000;
  const double t_few = sim::ideal_log_throughput(few, p);
  const double t_many = sim::ideal_log_throughput(many, p);
  const double t_huge = sim::ideal_log_throughput(huge, p);
  EXPECT_GT(t_many, t_few + 0.5);
  // Saturation: going from 512 procs to 200k gains far less than 4->512.
  EXPECT_LT(t_huge - t_many, (t_many - t_few) / 2.0);
}

TEST(AppModel, SharedFilesHurtAtScale) {
  const auto p = sim::theta_platform();
  auto priv = basic_signature();
  auto shared = basic_signature();
  shared.files_shared_frac = 1.0;
  EXPECT_GT(sim::ideal_log_throughput(priv, p),
            sim::ideal_log_throughput(shared, p) + 0.1);
}

TEST(AppModel, CollectiveIoRescuesSmallAccesses) {
  const auto p = sim::theta_platform();
  auto indep = basic_signature();
  indep.read_size_frac = {};
  indep.read_size_frac[1] = 1.0;
  indep.write_size_frac = {};
  indep.write_size_frac[1] = 1.0;
  auto coll = indep;
  coll.uses_mpiio = true;
  coll.coll_frac = 1.0;
  EXPECT_GT(sim::ideal_log_throughput(coll, p),
            sim::ideal_log_throughput(indep, p) + 0.2);
}

TEST(AppModel, CatalogIsDeterministic) {
  const auto p = sim::theta_platform();
  sim::CatalogParams params;
  params.n_apps = 20;
  util::Rng a(5);
  util::Rng b(5);
  const auto cat1 = sim::generate_catalog(params, p, a);
  const auto cat2 = sim::generate_catalog(params, p, b);
  ASSERT_EQ(cat1.size(), cat2.size());
  for (std::size_t i = 0; i < cat1.size(); ++i) {
    ASSERT_EQ(cat1[i].configs.size(), cat2[i].configs.size());
    for (std::size_t c = 0; c < cat1[i].configs.size(); ++c) {
      EXPECT_EQ(cat1[i].configs[c].signature.content_hash(),
                cat2[i].configs[c].signature.content_hash());
    }
  }
}

TEST(AppModel, CatalogHasBenchmarkAndNovelApps) {
  const auto p = sim::theta_platform();
  sim::CatalogParams params;
  params.n_apps = 50;
  params.novel_app_frac = 0.2;
  params.novel_after = 1000.0;
  params.horizon = 2000.0;
  util::Rng rng(6);
  const auto cat = sim::generate_catalog(params, p, rng);
  ASSERT_EQ(cat.size(), 50u);
  EXPECT_EQ(cat[0].name, "iobench");
  EXPECT_DOUBLE_EQ(cat[0].popularity, 0.0);
  std::size_t novel = 0;
  for (const auto& app : cat) {
    if (app.introduced_at > 1000.0) ++novel;
    for (const auto& cfg : app.configs) {
      EXPECT_NO_THROW(cfg.signature.validate());
      EXPECT_GE(cfg.nodes, 1u);
    }
  }
  EXPECT_EQ(novel, 10u);
}

TEST(Weather, OffsetIsDeterministicAndBounded) {
  sim::WeatherParams params;
  params.horizon = 86400.0 * 100;
  util::Rng rng(7);
  const sim::GlobalWeather w(params, rng);
  for (double t = 0; t < params.horizon; t += 86400.0 * 3) {
    const double o1 = w.log_offset(t);
    const double o2 = w.log_offset(t);
    EXPECT_DOUBLE_EQ(o1, o2);
    EXPECT_LT(std::fabs(o1), 0.8);
  }
}

TEST(Weather, DegradationsLowerThroughput) {
  sim::WeatherParams params;
  params.horizon = 86400.0 * 365;
  params.degradations_per_year = 20.0;
  params.epoch_offset_sigma = 0.0001;
  params.seasonal_amplitude = 0.0;
  util::Rng rng(8);
  const sim::GlobalWeather w(params, rng);
  ASSERT_FALSE(w.degradations().empty());
  const auto& d = w.degradations().front();
  const double mid = d.start + d.duration / 2.0;
  // During a (long enough) degradation the offset should dip clearly.
  if (d.duration > 6.0 * d.ramp) {
    EXPECT_LT(w.log_offset(mid), -0.5 * d.severity);
  }
}

TEST(Weather, EpochsCreateStepChanges) {
  sim::WeatherParams params;
  params.horizon = 86400.0 * 365;
  params.degradations_per_year = 0.0;
  params.seasonal_amplitude = 0.0;
  params.n_epochs = 2;
  params.epoch_offset_sigma = 0.05;
  util::Rng rng(9);
  const sim::GlobalWeather w(params, rng);
  ASSERT_EQ(w.epoch_boundaries().size(), 1u);
  const double b = w.epoch_boundaries()[0];
  EXPECT_NE(w.log_offset(b - 10.0), w.log_offset(b + 10.0));
}

TEST(Contention, LoadTimelineAccumulates) {
  sim::LoadTimeline load(1000.0, 100.0);
  load.add_demand(0.0, 500.0, 50.0, 100.0);   // 0.5 of peak
  load.add_demand(250.0, 500.0, 50.0, 100.0); // overlaps second half
  EXPECT_NEAR(load.load_at(100.0), 0.5, 1e-12);
  EXPECT_NEAR(load.load_at(400.0), 1.0, 1e-12);
  EXPECT_NEAR(load.load_at(600.0), 0.5, 1e-12);
  EXPECT_NEAR(load.load_at(900.0), 0.0, 1e-12);
}

TEST(Contention, MeanLoadOverWindow) {
  sim::LoadTimeline load(1000.0, 100.0);
  load.add_demand(0.0, 1000.0, 100.0, 100.0);
  EXPECT_NEAR(load.mean_load(0.0, 999.0), 1.0, 1e-12);
}

TEST(Contention, ImpactIsMonotoneInLoadAndSensitivity) {
  const auto p = sim::theta_platform();
  const double light = sim::contention_log_impact(0.1, 1.0, 0.5, p);
  const double heavy = sim::contention_log_impact(1.5, 1.0, 0.5, p);
  EXPECT_LT(heavy, light);
  EXPECT_LE(light, 0.0);
  const double sensitive = sim::contention_log_impact(1.0, 2.0, 0.5, p);
  const double tolerant = sim::contention_log_impact(1.0, 0.5, 0.5, p);
  EXPECT_LT(sensitive, tolerant);
}

TEST(Contention, WiderPlacementHurtsMore) {
  const auto p = sim::theta_platform();
  const double tight = sim::contention_log_impact(1.0, 1.0, 0.0, p);
  const double wide = sim::contention_log_impact(1.0, 1.0, 1.0, p);
  EXPECT_LT(wide, tight);
  EXPECT_LT(tight, 0.0);
}

TEST(Contention, NegativeLoadTreatedAsZero) {
  const auto p = sim::theta_platform();
  EXPECT_DOUBLE_EQ(sim::contention_log_impact(-1.0, 1.0, 0.5, p), 0.0);
}

TEST(Workload, GeneratesRequestedJobsSorted) {
  const auto p = sim::theta_platform();
  sim::CatalogParams cp;
  cp.n_apps = 20;
  util::Rng crng(10);
  const auto cat = sim::generate_catalog(cp, p, crng);
  sim::WorkloadParams wp;
  wp.n_jobs = 2000;
  wp.horizon = 86400.0 * 90;
  util::Rng wrng(11);
  const auto jobs = sim::generate_workload(wp, cat, p, wrng);
  EXPECT_GE(jobs.size(), 2000u);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_LE(jobs[i - 1].start_time, jobs[i].start_time);
  }
  for (const auto& j : jobs) {
    EXPECT_GT(j.duration, 0.0);
    EXPECT_GE(j.start_time, 0.0);
    EXPECT_LE(j.start_time, wp.horizon + 1.0);
  }
}

TEST(Workload, NovelAppsNeverRunBeforeIntroduction) {
  const auto p = sim::theta_platform();
  sim::CatalogParams cp;
  cp.n_apps = 30;
  cp.novel_app_frac = 0.3;
  cp.novel_after = 86400.0 * 45;
  cp.horizon = 86400.0 * 90;
  util::Rng crng(12);
  const auto cat = sim::generate_catalog(cp, p, crng);
  sim::WorkloadParams wp;
  wp.n_jobs = 3000;
  wp.horizon = 86400.0 * 90;
  util::Rng wrng(13);
  const auto jobs = sim::generate_workload(wp, cat, p, wrng);
  std::unordered_map<std::uint64_t, double> intro;
  for (const auto& app : cat) intro[app.app_id] = app.introduced_at;
  for (const auto& j : jobs) {
    EXPECT_GE(j.start_time, intro.at(j.app_id));
  }
}

TEST(Workload, BatchMembersShareConfigAndTime) {
  const auto p = sim::theta_platform();
  sim::CatalogParams cp;
  cp.n_apps = 10;
  util::Rng crng(14);
  const auto cat = sim::generate_catalog(cp, p, crng);
  sim::WorkloadParams wp;
  wp.n_jobs = 3000;
  wp.horizon = 86400.0 * 90;
  wp.batch_prob = 0.5;
  util::Rng wrng(15);
  const auto jobs = sim::generate_workload(wp, cat, p, wrng);
  // Group by config_uid; members of one group must share app and
  // signature hash, and batches must start within a second.
  std::map<std::uint64_t, std::vector<const sim::PlannedJob*>> groups;
  for (const auto& j : jobs) groups[j.config_uid].push_back(&j);
  std::size_t multi = 0;
  for (const auto& [uid, members] : groups) {
    if (members.size() < 2) continue;
    ++multi;
    for (const auto* m : members) {
      EXPECT_EQ(m->app_id, members[0]->app_id);
      EXPECT_EQ(m->config.signature.content_hash(),
                members[0]->config.signature.content_hash());
    }
  }
  EXPECT_GT(multi, 50u);
}

TEST(LmtGen, SignalsTrackLoadAndWeather) {
  const auto p = sim::cori_platform();
  sim::LoadTimeline load(86400.0 * 10, 900.0);
  load.add_demand(86400.0 * 2, 86400.0 * 2, 0.8 * p.peak_bandwidth_mib,
                  p.peak_bandwidth_mib);
  sim::WeatherParams wparams;
  wparams.horizon = 86400.0 * 10;
  wparams.degradations_per_year = 0.0;
  wparams.epoch_offset_sigma = 1e-6;
  wparams.seasonal_amplitude = 0.0;
  util::Rng wrng(16);
  const sim::GlobalWeather weather(wparams, wrng);
  util::Rng lrng(17);
  const auto tl =
      sim::generate_lmt_timeline(load, weather, p, 86400.0 * 10, lrng);
  EXPECT_GT(tl.size(), 1000u);
  // CPU and transfer rates higher inside the loaded window than outside.
  const auto busy = tl.aggregate(86400.0 * 2.5, 86400.0 * 3.5);
  const auto idle = tl.aggregate(86400.0 * 7.0, 86400.0 * 8.0);
  const auto& names = telemetry::lmt_feature_names();
  const auto idx = [&names](const std::string& n) {
    return static_cast<std::size_t>(
        std::find(names.begin(), names.end(), n) - names.begin());
  };
  EXPECT_GT(busy[idx("LMT_OSS_CPU_MEAN")], idle[idx("LMT_OSS_CPU_MEAN")]);
  EXPECT_GT(busy[idx("LMT_OST_READ_RATE_MEAN")] +
                busy[idx("LMT_OST_WRITE_RATE_MEAN")],
            idle[idx("LMT_OST_READ_RATE_MEAN")] +
                idle[idx("LMT_OST_WRITE_RATE_MEAN")]);
}

class SimulatorTest : public ::testing::Test {
 protected:
  static const sim::SimulationResult& result() {
    static const sim::SimulationResult res =
        sim::simulate(sim::tiny_system(3));
    return res;
  }
};

TEST_F(SimulatorTest, ProducesConsistentDataset) {
  const auto& res = result();
  EXPECT_GE(res.dataset.size(), 1500u);
  EXPECT_NO_THROW(res.dataset.validate());
  EXPECT_EQ(res.dataset.size(), res.records.size());
  EXPECT_EQ(res.dataset.size(), res.truth.size());
}

TEST_F(SimulatorTest, FeatureColumnsIncludeLmtWhenEnabled) {
  const auto& res = result();
  EXPECT_EQ(res.dataset.features.n_cols(), 48u + 48u + 5u + 37u);
  EXPECT_TRUE(res.dataset.features.has_column("LMT_OSS_CPU_MEAN"));
  EXPECT_TRUE(res.dataset.features.has_column("COBALT_START_TIME"));
}

TEST_F(SimulatorTest, GroundTruthDecomposesThroughput) {
  const auto& res = result();
  for (std::size_t i = 0; i < res.dataset.size(); i += 37) {
    const auto& m = res.dataset.meta[i];
    EXPECT_NEAR(m.log_throughput(), res.dataset.target[i], 1e-9);
    EXPECT_LE(m.log_fl, 1e-12);  // contention can only hurt
  }
}

TEST_F(SimulatorTest, DuplicateSetsShareFeatureRows) {
  const auto& res = result();
  // Find two jobs with the same (app, config) and verify their POSIX
  // feature slices are identical while start times differ.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::size_t>>
      sets;
  for (std::size_t i = 0; i < res.dataset.size(); ++i) {
    sets[{res.dataset.meta[i].app_id, res.dataset.meta[i].config_id}]
        .push_back(i);
  }
  std::size_t checked = 0;
  for (const auto& [key, rows] : sets) {
    if (rows.size() < 2) continue;
    const auto& t = res.dataset.features;
    for (std::size_t c = 0; c < 48; ++c) {  // POSIX block
      EXPECT_DOUBLE_EQ(t.at(rows[0], c), t.at(rows[1], c));
    }
    ++checked;
    if (checked > 10) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(SimulatorTest, NovelAppsOnlyAfterCutoff) {
  const auto& res = result();
  std::size_t novel = 0;
  for (const auto& m : res.dataset.meta) {
    if (m.novel_app) {
      ++novel;
      EXPECT_GE(m.start_time, res.train_cutoff_time);
    }
  }
  EXPECT_GT(novel, 0u);
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  const auto& res = result();
  const auto res2 = sim::simulate(sim::tiny_system(3));
  ASSERT_EQ(res.dataset.size(), res2.dataset.size());
  for (std::size_t i = 0; i < res.dataset.size(); i += 101) {
    EXPECT_DOUBLE_EQ(res.dataset.target[i], res2.dataset.target[i]);
  }
}

TEST_F(SimulatorTest, SeedChangesData) {
  const auto& res = result();
  const auto res2 = sim::simulate(sim::tiny_system(4));
  bool any_diff = res.dataset.size() != res2.dataset.size();
  for (std::size_t i = 0; !any_diff && i < res.dataset.size(); ++i) {
    any_diff = res.dataset.target[i] != res2.dataset.target[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(SimulatorTest, ThroughputsArePhysicallyPlausible) {
  const auto& res = result();
  for (std::size_t i = 0; i < res.dataset.size(); ++i) {
    const double mib = std::pow(10.0, res.dataset.target[i]);
    EXPECT_GT(mib, 0.1);
    EXPECT_LT(mib, res.config.platform.peak_bandwidth_mib);
  }
}

TEST_F(SimulatorTest, RecordsRoundTripThroughLogFormat) {
  const auto& res = result();
  std::ostringstream out;
  for (std::size_t i = 0; i < 50; ++i) {
    telemetry::write_record(out, res.records[i]);
  }
  std::istringstream in(out.str());
  const auto parsed = telemetry::parse_archive(in);
  ASSERT_EQ(parsed.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(parsed[i].job_id, res.records[i].job_id);
    EXPECT_EQ(parsed[i].posix, res.records[i].posix);
  }
}

// Calibration diagnostics: verify the preset datasets exhibit the
// structural statistics the paper reports (duplicate fractions).
double duplicate_fraction(const data::Dataset& ds) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> counts;
  for (const auto& m : ds.meta) ++counts[{m.app_id, m.config_id}];
  std::size_t dup_jobs = 0;
  for (const auto& [k, n] : counts) {
    if (n >= 2) dup_jobs += n;
  }
  return static_cast<double>(dup_jobs) / static_cast<double>(ds.size());
}

TEST(SimCalibration, TinySystemHasDuplicates) {
  const auto res = sim::simulate(sim::tiny_system(5));
  const double frac = duplicate_fraction(res.dataset);
  EXPECT_GT(frac, 0.10);
  EXPECT_LT(frac, 0.70);
}

}  // namespace
}  // namespace iotax
