// Fault-plan and injector properties: zero-rate passthrough is
// byte-identical, identical (plan, seed) gives identical bytes on any
// thread setting, per-class streams are independent, and the injector's
// expected-quarantine ground truth matches what the hardened pipeline
// actually reports.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "src/faults/injector.hpp"
#include "src/faults/plan.hpp"
#include "src/sim/dataset_builder.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/telemetry/binary_log.hpp"
#include "src/telemetry/darshan_log.hpp"

namespace iotax {
namespace {

const std::vector<telemetry::JobLogRecord>& fixture_records() {
  static const auto* records = [] {
    auto* r = new std::vector<telemetry::JobLogRecord>(
        sim::simulate(sim::tiny_system(11)).records);
    r->resize(std::min<std::size_t>(r->size(), 300));
    return r;
  }();
  return *records;
}

faults::FaultPlan mixed_plan() {
  faults::FaultPlan plan;
  plan.truncate = 0.1;
  plan.mangle = 0.05;
  plan.drop = 0.03;
  plan.duplicate = 0.05;
  plan.zero_counters = 0.04;
  plan.bad_throughput = 0.05;
  plan.clock_skew = 0.1;
  plan.reorder = 0.1;
  plan.seed = 99;
  return plan;
}

TEST(FaultPlan, JsonRoundTrip) {
  const auto plan = mixed_plan();
  const auto back = faults::FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(back.to_json().dump(), plan.to_json().dump());
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_DOUBLE_EQ(back.mangle, plan.mangle);
}

TEST(FaultPlan, UnknownKeyRejected) {
  auto doc = util::Json::object();
  doc.set("mange", 0.1);  // typo must not silently run a zero-fault plan
  EXPECT_THROW(faults::FaultPlan::from_json(doc), std::invalid_argument);
}

TEST(FaultPlan, OutOfRangeRateRejected) {
  auto doc = util::Json::object();
  doc.set("truncate", 1.0);
  EXPECT_THROW(faults::FaultPlan::from_json(doc), std::invalid_argument);
  faults::FaultPlan plan;
  plan.drop = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, DefaultsAreAllZero) {
  EXPECT_TRUE(faults::FaultPlan{}.all_zero());
  EXPECT_FALSE(mixed_plan().all_zero());
}

TEST(Injector, ZeroPlanIsByteIdenticalPassthrough) {
  const auto& records = fixture_records();
  {
    std::ostringstream clean;
    for (const auto& rec : records) telemetry::write_record(clean, rec);
    const auto out =
        faults::inject_archive_bytes(records, {}, /*binary=*/false);
    EXPECT_EQ(out.bytes, clean.str());
    EXPECT_EQ(out.report.injected_total(), 0u);
    EXPECT_EQ(out.report.expected_total(), 0u);
  }
  {
    std::ostringstream clean(std::ios::binary);
    telemetry::write_binary_archive(clean, records);
    const auto out =
        faults::inject_archive_bytes(records, {}, /*binary=*/true);
    EXPECT_EQ(out.bytes, clean.str());
    EXPECT_EQ(out.report.expected_total(), 0u);
  }
}

TEST(Injector, DeterministicAcrossThreadSettings) {
  const auto& records = fixture_records();
  const auto plan = mixed_plan();
  for (const bool binary : {false, true}) {
    setenv("IOTAX_THREADS", "1", 1);
    const auto a = faults::inject_archive_bytes(records, plan, binary);
    setenv("IOTAX_THREADS", "4", 1);
    const auto b = faults::inject_archive_bytes(records, plan, binary);
    unsetenv("IOTAX_THREADS");
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.report.to_json().dump(), b.report.to_json().dump());
  }
}

TEST(Injector, SeedChangesOutput) {
  const auto& records = fixture_records();
  auto plan = mixed_plan();
  const auto a = faults::inject_archive_bytes(records, plan, false);
  plan.seed += 1;
  const auto b = faults::inject_archive_bytes(records, plan, false);
  EXPECT_NE(a.bytes, b.bytes);
}

TEST(Injector, FaultClassStreamsAreIndependent) {
  // Turning a second class on must not change which records the first
  // class picked (each class forks its own RNG stream).
  const auto& records = fixture_records();
  faults::FaultPlan only_tp;
  only_tp.bad_throughput = 0.2;
  auto with_skew = only_tp;
  with_skew.clock_skew = 0.5;
  const auto a = faults::inject_archive_bytes(records, only_tp, false);
  const auto b = faults::inject_archive_bytes(records, with_skew, false);
  EXPECT_EQ(a.report.bad_throughput, b.report.bad_throughput);
  EXPECT_EQ(a.report.expected(util::Reason::kBadThroughput),
            b.report.expected(util::Reason::kBadThroughput));
}

TEST(Injector, ExpectedQuarantineMatchesPipeline) {
  const auto& records = fixture_records();
  const auto plan = mixed_plan();
  for (const bool binary : {false, true}) {
    const auto out = faults::inject_archive_bytes(records, plan, binary);
    std::istringstream in(out.bytes);
    const auto outcome = binary
                             ? telemetry::read_binary_archive_outcome(in)
                             : telemetry::parse_archive_outcome(in);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    const auto ingest = sim::build_dataset_ingest(
        outcome.records, nullptr, "faults-test", nullptr,
        sim::IngestMode::kLenient);
    util::QuarantineReport combined = outcome.quarantine;
    combined.merge(ingest.quarantine);
    for (std::size_t i = 0; i < util::kReasonCount; ++i) {
      const auto reason = static_cast<util::Reason>(i);
      EXPECT_EQ(combined.count(reason), out.report.expected(reason))
          << (binary ? "binary" : "text") << " reason "
          << util::reason_name(reason);
    }
  }
}

TEST(InjectionReport, JsonRoundTrip) {
  const auto& records = fixture_records();
  const auto out =
      faults::inject_archive_bytes(records, mixed_plan(), /*binary=*/true);
  const auto back =
      faults::InjectionReport::from_json(out.report.to_json());
  EXPECT_EQ(back.to_json().dump(), out.report.to_json().dump());
  EXPECT_EQ(back.expected_total(), out.report.expected_total());
}

}  // namespace
}  // namespace iotax
