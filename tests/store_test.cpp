// The out-of-core columnar store: pack -> open must be value-exact, and
// every pipeline consumer (binning, GBT fit/predict, halving search, the
// five-step taxonomy) must produce byte-identical results whether the
// dataset lives on the heap (CSV path) or in mapped column files
// (--store path), in-RAM or out-of-core, at any thread count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/data/footprint.hpp"
#include "src/data/ooc.hpp"
#include "src/data/store.hpp"
#include "src/data/table_io.hpp"
#include "src/ml/binning.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/search.hpp"
#include "src/sim/dataset_builder.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/feature_sets.hpp"
#include "src/taxonomy/pipeline.hpp"
#include "src/taxonomy/report_io.hpp"
#include "src/telemetry/darshan_log.hpp"

namespace iotax {
namespace {

const sim::SimulationResult& fixture() {
  static const auto* res =
      new sim::SimulationResult(sim::simulate(sim::tiny_system(11)));
  return *res;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Save/restore the process-wide out-of-core policy around a test.
struct OocGuard {
  data::ooc::Settings saved = data::ooc::settings();
  ~OocGuard() { data::ooc::settings() = saved; }
};

void force_ooc(std::size_t chunk_rows, std::size_t spill_bytes) {
  auto& s = data::ooc::settings();
  s.enabled = true;
  s.chunk_rows = chunk_rows;
  s.spill_threshold_bytes = spill_bytes;
}

// Run `fn` under IOTAX_THREADS=t and restore the old value afterwards.
template <typename F>
auto with_threads(const char* t, F&& fn) {
  const char* old = std::getenv("IOTAX_THREADS");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;
  ::setenv("IOTAX_THREADS", t, 1);
  auto result = fn();
  if (had) {
    ::setenv("IOTAX_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("IOTAX_THREADS");
  }
  return result;
}

std::string save_model(const ml::GradientBoostedTrees& model) {
  std::ostringstream out;
  model.save(out);
  return out.str();
}

// ---------------------------------------------------------- round trip

TEST(ColumnStore, PackOpenRoundTripIsValueExact) {
  const auto& ds = fixture().dataset;
  const auto dir = fresh_dir("iotax_store_rt");
  data::pack_dataset(dir.string(), ds);

  auto outcome = data::ColumnStore::open(dir.string());
  ASSERT_TRUE(outcome.ok()) << outcome.first_error();
  const auto& back = outcome.store->dataset();
  ASSERT_EQ(back.size(), ds.size());
  ASSERT_EQ(back.features.names(), ds.features.names());
  EXPECT_EQ(back.system_name, ds.system_name);
  EXPECT_TRUE(back.features.has_external_columns());
  for (std::size_t c = 0; c < ds.features.n_cols(); ++c) {
    const auto a = ds.features.col(c);
    const auto b = back.features.col(c);
    for (std::size_t r = 0; r < ds.size(); ++r) {
      ASSERT_EQ(a[r], b[r]) << "col " << c << " row " << r;
    }
  }
  for (std::size_t r = 0; r < ds.size(); ++r) {
    EXPECT_EQ(back.meta[r].job_id, ds.meta[r].job_id);
    EXPECT_EQ(back.meta[r].app_id, ds.meta[r].app_id);
    EXPECT_EQ(back.meta[r].config_id, ds.meta[r].config_id);
    EXPECT_EQ(back.meta[r].start_time, ds.meta[r].start_time);
    EXPECT_EQ(back.meta[r].end_time, ds.meta[r].end_time);
    EXPECT_EQ(back.meta[r].nodes, ds.meta[r].nodes);
    EXPECT_EQ(back.meta[r].novel_app, ds.meta[r].novel_app);
    EXPECT_EQ(back.meta[r].log_fa, ds.meta[r].log_fa);
    EXPECT_EQ(back.meta[r].log_fn, ds.meta[r].log_fn);
    EXPECT_EQ(back.target[r], ds.target[r]);
  }
  EXPECT_NO_THROW(back.validate());
  std::filesystem::remove_all(dir);
}

TEST(ColumnStore, StreamingWriterMatchesPackDataset) {
  const auto& ds = fixture().dataset;
  const auto one = fresh_dir("iotax_store_one");
  const auto chunked = fresh_dir("iotax_store_chunked");
  data::pack_dataset(one.string(), ds);
  {
    // Ragged chunk sizes: the writer is append-only, so any chunking
    // must produce the same bytes.
    data::StoreWriter w(chunked.string(), ds.features.names(),
                        ds.system_name);
    std::size_t row = 0;
    std::size_t step = 1;
    while (row < ds.size()) {
      const auto n = std::min(step, ds.size() - row);
      w.append_rows(ds, row, n);
      row += n;
      step = step * 2 + 1;
    }
    w.finish();
    EXPECT_EQ(w.rows_written(), ds.size());
  }
  EXPECT_EQ(slurp(one / "manifest.json"), slurp(chunked / "manifest.json"));
  for (const auto& entry : std::filesystem::directory_iterator(one)) {
    const auto name = entry.path().filename();
    EXPECT_EQ(slurp(entry.path()), slurp(chunked / name)) << name;
  }
  std::filesystem::remove_all(one);
  std::filesystem::remove_all(chunked);
}

// -------------------------------------------------- footprint gauges

TEST(ColumnStore, MappedPoolTracksStoreLifetime) {
  const auto& ds = fixture().dataset;
  const auto dir = fresh_dir("iotax_store_fp");
  data::pack_dataset(dir.string(), ds);
  const auto before = data::footprint::mapped_bytes();
  {
    auto outcome = data::ColumnStore::open(dir.string());
    ASSERT_TRUE(outcome.ok()) << outcome.first_error();
    const auto n_cols = outcome.store->n_columns();
    EXPECT_EQ(data::footprint::mapped_bytes() - before,
              ds.size() * n_cols * sizeof(double));
    EXPECT_EQ(outcome.store->mapped_bytes(),
              ds.size() * n_cols * sizeof(double));
  }
  EXPECT_EQ(data::footprint::mapped_bytes(), before);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------- out-of-core bit-identity

TEST(ColumnStore, OutOfCoreBinningBitIdentical) {
  const auto& ds = fixture().dataset;
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  std::vector<std::size_t> cs, rs;
  const auto x = taxonomy::feature_view(ds, feats, &cs, &rs);

  const ml::BinnedMatrix in_ram(x, 64);
  ASSERT_FALSE(in_ram.spilled());

  OocGuard guard;
  force_ooc(/*chunk_rows=*/97, /*spill_bytes=*/0);  // chunked sweep + spill
  const ml::BinnedMatrix ooc(x, 64);
  EXPECT_TRUE(ooc.spilled());

  ASSERT_EQ(ooc.rows(), in_ram.rows());
  ASSERT_EQ(ooc.cols(), in_ram.cols());
  for (std::size_t c = 0; c < in_ram.cols(); ++c) {
    ASSERT_EQ(ooc.n_bins(c), in_ram.n_bins(c)) << "feature " << c;
    for (std::size_t b = 0; b + 1 < in_ram.n_bins(c); ++b) {
      ASSERT_EQ(ooc.threshold(c, b), in_ram.threshold(c, b))
          << "feature " << c << " bin " << b;
    }
    const auto a = in_ram.col_codes(c);
    const auto b = ooc.col_codes(c);
    for (std::size_t r = 0; r < in_ram.rows(); ++r) {
      ASSERT_EQ(a[r], b[r]) << "feature " << c << " row " << r;
    }
  }
  for (std::size_t r = 0; r < in_ram.rows(); ++r) {
    const auto a = in_ram.row_codes(r);
    const auto b = ooc.row_codes(r);
    for (std::size_t c = 0; c < in_ram.cols(); ++c) ASSERT_EQ(a[c], b[c]);
  }

  // Copies of a spilled matrix share the mapping and read the same codes.
  const ml::BinnedMatrix copy(ooc);
  EXPECT_TRUE(copy.spilled());
  EXPECT_EQ(copy.code(5, 3), in_ram.code(5, 3));
}

TEST(ColumnStore, GbtAndHalvingBitIdenticalThroughStore) {
  const auto& ds = fixture().dataset;
  const auto dir = fresh_dir("iotax_store_gbt");
  data::pack_dataset(dir.string(), ds);
  auto outcome = data::ColumnStore::open(dir.string());
  ASSERT_TRUE(outcome.ok()) << outcome.first_error();
  const auto& dsb = outcome.store->dataset();

  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  std::vector<std::size_t> train_rows, val_rows;
  for (std::size_t i = 0; i < 400; ++i) train_rows.push_back(i);
  for (std::size_t i = 400; i < 520; ++i) val_rows.push_back(i);

  const auto run = [&](const data::Dataset& d) {
    std::vector<std::size_t> tc, tr, vc, vr;
    const auto xt = taxonomy::feature_view(d, feats, &tc, &tr, train_rows);
    const auto xv = taxonomy::feature_view(d, feats, &vc, &vr, val_rows);
    const auto yt = taxonomy::targets(d, train_rows);
    const auto yv = taxonomy::targets(d, val_rows);
    ml::GradientBoostedTrees model({.n_estimators = 24, .max_depth = 5});
    model.fit(xt, yt);
    ml::GbtGrid grid;
    grid.n_estimators = {8, 16};
    grid.max_depth = {3, 6};
    grid.subsample = {1.0};
    grid.colsample = {1.0};
    ml::HalvingParams hp;
    hp.initial_configs = 6;
    const auto search =
        ml::successive_halving(grid, hp, xt, yt, xv, yv);
    std::ostringstream key;
    key.precision(17);
    key << save_model(model) << '\n';
    for (const auto p : model.predict(xv)) key << p << ',';
    key << '\n' << search.best.val_error << ' '
        << search.best.params.n_estimators << ' '
        << search.best.params.max_depth;
    for (const auto& pt : search.evaluated) key << ';' << pt.val_error;
    return key.str();
  };

  for (const char* threads : {"1", "4"}) {
    const auto heap_key = with_threads(threads, [&] { return run(ds); });
    const auto store_key = with_threads(threads, [&] {
      OocGuard guard;
      force_ooc(/*chunk_rows=*/64, /*spill_bytes=*/0);
      return run(dsb);
    });
    EXPECT_EQ(heap_key, store_key) << "IOTAX_THREADS=" << threads;
  }
  std::filesystem::remove_all(dir);
}

TEST(ColumnStore, TaxonomyReportBitIdenticalThroughStore) {
  const auto& ds = fixture().dataset;
  const auto dir = fresh_dir("iotax_store_tax");
  data::pack_dataset(dir.string(), ds);
  auto outcome = data::ColumnStore::open(dir.string());
  ASSERT_TRUE(outcome.ok()) << outcome.first_error();
  const auto& dsb = outcome.store->dataset();

  taxonomy::PipelineConfig cfg;
  cfg.grid = {.n_estimators = {16},
              .max_depth = {4},
              .subsample = {0.9},
              .colsample = {0.9},
              .base = {}};
  cfg.run_uq = true;

  const auto report_csv = [&](const data::Dataset& d, const char* tag) {
    const auto path =
        (std::filesystem::temp_directory_path() /
         (std::string("iotax_store_report_") + tag + ".csv"))
            .string();
    const auto report = taxonomy::run_taxonomy(d, cfg);
    taxonomy::write_report_csv(path, report);
    const auto bytes = slurp(path);
    std::filesystem::remove(path);
    return bytes;
  };

  for (const char* threads : {"1", "4"}) {
    const auto heap_bytes =
        with_threads(threads, [&] { return report_csv(ds, "heap"); });
    const auto store_bytes = with_threads(threads, [&] {
      OocGuard guard;
      force_ooc(/*chunk_rows=*/64, /*spill_bytes=*/0);
      return report_csv(dsb, "store");
    });
    EXPECT_EQ(heap_bytes, store_bytes) << "IOTAX_THREADS=" << threads;
  }
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ sharded ingest

TEST(ColumnStore, ShardedIngestMatchesSequential) {
  auto records = fixture().records;
  records.resize(360);
  // Cross-shard duplicates: only a merge-phase (global) duplicate check
  // catches these, and the counts must match the sequential single pass.
  records[250] = records[10];
  records[355] = records[120];

  const auto dir = fresh_dir("iotax_store_shards");
  std::filesystem::create_directories(dir);
  std::vector<sim::IngestShard> shards;
  const std::size_t cuts[] = {0, 120, 240, 360};
  for (std::size_t s = 0; s + 1 < std::size(cuts); ++s) {
    const std::vector<telemetry::JobLogRecord> slice(
        records.begin() + static_cast<long>(cuts[s]),
        records.begin() + static_cast<long>(cuts[s + 1]));
    const auto path = (dir / ("shard" + std::to_string(s) + ".txt")).string();
    telemetry::write_archive(path, slice);
    sim::IngestShard shard;
    shard.path = path;
    shards.push_back(shard);
  }

  const auto sequential = sim::build_dataset_ingest(
      records, nullptr, "shards", nullptr, sim::IngestMode::kLenient);
  for (const char* threads : {"1", "4"}) {
    const auto sharded = with_threads(threads, [&] {
      return sim::build_dataset_ingest_sharded(
          shards, nullptr, "shards", nullptr, sim::IngestMode::kLenient);
    });
    ASSERT_EQ(sharded.dataset.size(), sequential.dataset.size())
        << "IOTAX_THREADS=" << threads;
    EXPECT_EQ(sharded.kept_records, sequential.kept_records);
    EXPECT_EQ(sharded.quarantine.total(), sequential.quarantine.total());
    for (std::size_t i = 0; i < util::kReasonCount; ++i) {
      const auto reason = static_cast<util::Reason>(i);
      EXPECT_EQ(sharded.quarantine.count(reason),
                sequential.quarantine.count(reason))
          << util::reason_name(reason);
    }
    for (std::size_t c = 0; c < sequential.dataset.features.n_cols(); ++c) {
      const auto a = sequential.dataset.features.col(c);
      const auto b = sharded.dataset.features.col(c);
      for (std::size_t r = 0; r < sequential.dataset.size(); ++r) {
        ASSERT_EQ(a[r], b[r]) << "col " << c << " row " << r;
      }
    }
    for (std::size_t r = 0; r < sequential.dataset.size(); ++r) {
      EXPECT_EQ(sharded.dataset.meta[r].job_id,
                sequential.dataset.meta[r].job_id);
      EXPECT_EQ(sharded.dataset.target[r], sequential.dataset.target[r]);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(ColumnStore, ShardedPackMatchesWholeArchivePack) {
  auto records = fixture().records;
  records.resize(300);
  const auto dir = fresh_dir("iotax_store_packcmp");
  std::filesystem::create_directories(dir);

  const auto pack_from = [&](const std::vector<sim::IngestShard>& shards,
                             const std::string& out) {
    std::unique_ptr<data::StoreWriter> writer;
    sim::ingest_shards(shards, nullptr, "pack", nullptr,
                       sim::IngestMode::kLenient,
                       [&](data::Dataset&& chunk) {
                         if (!writer) {
                           writer = std::make_unique<data::StoreWriter>(
                               out, chunk.features.names(),
                               chunk.system_name);
                         }
                         writer->append(chunk);
                       });
    ASSERT_NE(writer, nullptr);
    writer->finish();
  };

  const auto whole = (dir / "whole.txt").string();
  telemetry::write_archive(whole, records);
  std::vector<sim::IngestShard> one;
  {
    sim::IngestShard s;
    s.path = whole;
    one.push_back(s);
  }
  std::vector<sim::IngestShard> three;
  const std::size_t cuts[] = {0, 100, 200, 300};
  for (std::size_t s = 0; s + 1 < std::size(cuts); ++s) {
    const std::vector<telemetry::JobLogRecord> slice(
        records.begin() + static_cast<long>(cuts[s]),
        records.begin() + static_cast<long>(cuts[s + 1]));
    const auto path = (dir / ("p" + std::to_string(s) + ".txt")).string();
    telemetry::write_archive(path, slice);
    sim::IngestShard shard;
    shard.path = path;
    three.push_back(shard);
  }
  pack_from(one, (dir / "store_one").string());
  pack_from(three, (dir / "store_three").string());
  EXPECT_EQ(slurp(dir / "store_one" / "manifest.json"),
            slurp(dir / "store_three" / "manifest.json"));
  for (const auto& entry :
       std::filesystem::directory_iterator(dir / "store_one")) {
    const auto name = entry.path().filename();
    EXPECT_EQ(slurp(entry.path()), slurp(dir / "store_three" / name))
        << name;
  }
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------- corruption mapping

TEST(ColumnStore, OpenDiagnosticsNameFileAndField) {
  const auto& ds = fixture().dataset;
  const auto dir = fresh_dir("iotax_store_diag");
  data::pack_dataset(dir.string(), ds);

  const auto reopen = [&](bool verify = false) {
    return data::ColumnStore::open(dir.string(), verify);
  };
  const auto manifest = slurp(dir / "manifest.json");
  const auto restore = [&] {
    std::ofstream out(dir / "manifest.json", std::ios::binary);
    out << manifest;
  };

  {  // missing store directory entirely
    const auto gone = data::ColumnStore::open(
        (std::filesystem::temp_directory_path() / "iotax_no_such_store")
            .string());
    EXPECT_FALSE(gone.ok());
    EXPECT_EQ(gone.quarantine.count(util::Reason::kBadMagic), 1u);
    EXPECT_NE(gone.first_error().find("manifest.json"), std::string::npos);
  }
  {  // malformed manifest JSON
    std::ofstream out(dir / "manifest.json", std::ios::binary);
    out << "{ not json";
  }
  {
    const auto bad = reopen();
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.quarantine.count(util::Reason::kMalformedHeader), 1u);
  }
  restore();
  {  // wrong format marker
    std::ofstream out(dir / "manifest.json", std::ios::binary);
    std::string doctored = manifest;
    const auto pos = doctored.find("iotax-store");
    ASSERT_NE(pos, std::string::npos);
    doctored.replace(pos, 11, "iotax-other");
    out << doctored;
  }
  {
    const auto bad = reopen();
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.quarantine.count(util::Reason::kBadMagic), 1u);
    EXPECT_NE(bad.first_error().find("format"), std::string::npos);
  }
  restore();
  {  // unsupported version
    std::ofstream out(dir / "manifest.json", std::ios::binary);
    std::string doctored = manifest;
    const auto pos = doctored.find("\"version\": 1");
    ASSERT_NE(pos, std::string::npos);
    doctored.replace(pos, 12, "\"version\": 9");
    out << doctored;
  }
  {
    const auto bad = reopen();
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.quarantine.count(util::Reason::kBadVersion), 1u);
  }
  restore();
  {  // truncated column file
    const auto col = dir / "c2.f64";
    std::filesystem::resize_file(col, ds.size() * sizeof(double) - 9);
    const auto bad = reopen();
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.quarantine.count(util::Reason::kTruncated), 1u);
    EXPECT_NE(bad.first_error().find("c2.f64"), std::string::npos);
  }
  {  // trailing bytes after repair-to-longer
    const auto col = dir / "c2.f64";
    std::filesystem::resize_file(col, ds.size() * sizeof(double) + 5);
    const auto bad = reopen();
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.quarantine.count(util::Reason::kTrailingBytes), 1u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace iotax
