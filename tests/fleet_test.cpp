// The fault-tolerant serving fleet: backoff/deadline primitives, the
// consistent-hash slot function, chaos-plan parsing, the retrying
// backhaul client against live and misbehaving shards, and the router
// end to end over static replica groups — failover mid-load with zero
// client-visible failures and bit-identity to offline predictions.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/data/matrix.hpp"
#include "src/faults/chaos.hpp"
#include "src/ml/gbt.hpp"
#include "src/serve/client.hpp"
#include "src/serve/fleet.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/retrying_client.hpp"
#include "src/serve/server.hpp"
#include "src/util/backoff.hpp"
#include "src/util/frame.hpp"
#include "src/util/json.hpp"
#include "src/util/quarantine.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

using util::FrameDecode;
using util::FrameHeader;
using util::FrameType;
using util::Reason;

// -- backoff and deadline ---------------------------------------------------

TEST(FleetBackoff, ExactScheduleWithoutJitter) {
  util::BackoffPolicy p;
  p.initial_ms = 10;
  p.max_ms = 100;
  p.multiplier = 2.0;
  p.jitter = 0.0;
  util::Rng rng(1);
  EXPECT_EQ(util::backoff_delay_ms(p, 0, rng), 10u);
  EXPECT_EQ(util::backoff_delay_ms(p, 1, rng), 20u);
  EXPECT_EQ(util::backoff_delay_ms(p, 2, rng), 40u);
  EXPECT_EQ(util::backoff_delay_ms(p, 3, rng), 80u);
  EXPECT_EQ(util::backoff_delay_ms(p, 4, rng), 100u);  // capped
  EXPECT_EQ(util::backoff_delay_ms(p, 40, rng), 100u);  // stays capped
}

TEST(FleetBackoff, JitterIsDeterministicPerSeedAndBounded) {
  util::BackoffPolicy p;
  p.initial_ms = 8;
  p.max_ms = 64;
  p.jitter = 0.5;
  std::vector<std::uint64_t> a, b;
  util::Rng ra(42), rb(42);
  for (std::size_t k = 0; k < 16; ++k) {
    a.push_back(util::backoff_delay_ms(p, k, ra));
    b.push_back(util::backoff_delay_ms(p, k, rb));
  }
  // Same seed -> the exact same delay sequence: chaos tests replay.
  EXPECT_EQ(a, b);
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_LE(a[k], static_cast<std::uint64_t>(64 * 1.5) + 1) << "k=" << k;
  }
  // A different seed diverges somewhere (jitter is real).
  util::Rng rc(43);
  std::vector<std::uint64_t> c;
  for (std::size_t k = 0; k < 16; ++k) {
    c.push_back(util::backoff_delay_ms(p, k, rc));
  }
  EXPECT_NE(a, c);
}

TEST(FleetBackoff, PolicyValidation) {
  util::BackoffPolicy ok;
  EXPECT_NO_THROW(ok.validate());
  util::BackoffPolicy bad = ok;
  bad.multiplier = 0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.jitter = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.initial_ms = 100;
  bad.max_ms = 10;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(FleetBackoff, DeadlineSlicesTheBudget) {
  const auto inf = util::Deadline::infinite();
  EXPECT_TRUE(inf.is_infinite());
  EXPECT_FALSE(inf.expired());
  EXPECT_EQ(inf.remaining_ms(), ~0ULL);
  EXPECT_EQ(inf.slice_ms(5), 5u);    // cap applies even to forever
  EXPECT_EQ(inf.slice_ms(0), ~0ULL);  // no cap: the full remainder

  const auto d = util::Deadline::after_ms(200);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_LE(d.remaining_ms(), 200u);
  EXPECT_LE(d.slice_ms(50), 50u);
  EXPECT_LE(d.slice_ms(0), 200u);  // uncapped slice == remainder

  const auto tiny = util::Deadline::after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(tiny.expired());
  EXPECT_EQ(tiny.remaining_ms(), 0u);
  EXPECT_EQ(tiny.slice_ms(50), 0u);
}

// -- consistent-hash slot ---------------------------------------------------

TEST(FleetSlot, DeterministicInRangeAndSpreads) {
  serve::PredictRequest req;
  req.features = {1.5, -2.25, 0.0};
  EXPECT_EQ(serve::fleet_slot(req, 1), 0u);
  const std::size_t s4 = serve::fleet_slot(req, 4);
  EXPECT_LT(s4, 4u);
  EXPECT_EQ(serve::fleet_slot(req, 4), s4);  // pure function of the request

  // The model index participates in the routing identity.
  serve::PredictRequest other = req;
  other.model_index = 1;
  // (Different identity; equal slots are possible but both in range.)
  EXPECT_LT(serve::fleet_slot(other, 4), 4u);

  // 256 random rows across 4 groups must touch every group — an empty
  // group would mean the hash is degenerate.
  util::Rng rng(7);
  std::vector<std::size_t> hits(4, 0);
  for (int i = 0; i < 256; ++i) {
    serve::PredictRequest r;
    for (int c = 0; c < 5; ++c) r.features.push_back(rng.uniform(-3.0, 3.0));
    ++hits[serve::fleet_slot(r, 4)];
  }
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_GT(hits[g], 0u) << "group " << g << " never hit";
  }
}

TEST(FleetSlot, RoutesByBitPatternNotValue) {
  // -0.0 == 0.0 as values but not as bit patterns; the slot must follow
  // the bits, mirroring how the answer itself is computed.
  serve::PredictRequest pos, neg;
  pos.features = {0.0, 1.0};
  neg.features = {-0.0, 1.0};
  bool diverged = false;
  for (std::size_t n = 2; n <= 64 && !diverged; ++n) {
    diverged = serve::fleet_slot(pos, n) != serve::fleet_slot(neg, n);
  }
  EXPECT_TRUE(diverged);
}

// -- chaos plans ------------------------------------------------------------

TEST(FleetChaosPlan, ParsesAndReportsGroundTruth) {
  const auto plan = faults::ChaosPlan::from_json(util::Json::parse(R"({
    "seed": 7, "accept_delay_ms": 2, "events": [
      {"at_request": 100, "action": "kill",  "group": 0, "replica": 1},
      {"at_request": 400, "action": "hang",  "group": 1, "replica": 0},
      {"at_request": 700, "action": "drop",  "group": 0, "replica": 0},
      {"at_request": 900, "action": "delay", "group": 1, "replica": 1,
       "delay_ms": 5}]})"));
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.accept_delay_ms, 2u);
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.expected_restarts(), 2u);  // kill + hang, not drop/delay
  EXPECT_EQ(plan.count(faults::ChaosAction::kKill), 1u);
  EXPECT_EQ(plan.count(faults::ChaosAction::kDrop), 1u);
  EXPECT_NO_THROW(plan.validate(2, 2));
  // Shape checks catch events addressing shards that do not exist.
  EXPECT_THROW(plan.validate(1, 2), std::invalid_argument);
  EXPECT_THROW(plan.validate(2, 1), std::invalid_argument);

  // to_json -> from_json survives the round trip.
  const auto again = faults::ChaosPlan::from_json(plan.to_json());
  ASSERT_EQ(again.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(again.events[i].at_request, plan.events[i].at_request);
    EXPECT_EQ(again.events[i].action, plan.events[i].action);
    EXPECT_EQ(again.events[i].group, plan.events[i].group);
    EXPECT_EQ(again.events[i].replica, plan.events[i].replica);
    EXPECT_EQ(again.events[i].delay_ms, plan.events[i].delay_ms);
  }
}

TEST(FleetChaosPlan, RejectsDefects) {
  const auto parse = [](const char* text) {
    return faults::ChaosPlan::from_json(util::Json::parse(text));
  };
  // A typo must not silently run a zero-chaos plan.
  EXPECT_THROW(parse(R"({"sead": 7})"), std::invalid_argument);
  EXPECT_THROW(
      parse(R"({"events": [{"at_request": 1, "action": "kill", "grup": 0}]})"),
      std::invalid_argument);
  // Unknown action name.
  EXPECT_THROW(parse(R"({"events": [{"at_request": 1, "action": "melt"}]})"),
               std::invalid_argument);
  // at_request is 1-based; 0 would "fire before a request that never
  // happened".
  EXPECT_THROW(parse(R"({"events": [{"at_request": 0, "action": "kill"}]})"),
               std::invalid_argument);
  // Events must arrive sorted so the router can walk one cursor.
  EXPECT_THROW(parse(R"({"events": [
      {"at_request": 9, "action": "kill"},
      {"at_request": 3, "action": "kill"}]})"),
               std::invalid_argument);
  // delay_ms only belongs on delay events.
  EXPECT_THROW(parse(R"({"events": [
      {"at_request": 1, "action": "kill", "delay_ms": 5}]})"),
               std::invalid_argument);
}

// -- a scriptable fake shard ------------------------------------------------

/// Raw unix-socket peer that speaks just enough of the serve protocol
/// to misbehave on demand: answer BUSY n times before serving, or stay
/// silent forever. The real daemon cannot be told to do either
/// deterministically, and determinism is the point of these tests.
class FakeShard {
 public:
  FakeShard(std::string path, std::size_t busy_first_n, bool silent)
      : path_(std::move(path)), busy_left_(busy_first_n), silent_(silent) {
    ::unlink(path_.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listen_fd_, 8) < 0) {
      throw std::runtime_error("fake shard: cannot listen on " + path_);
    }
    thread_ = std::thread([this] { loop(); });
  }

  ~FakeShard() { stop(); }

  void stop() {
    if (stopping_.exchange(true)) return;
    if (thread_.joinable()) thread_.join();
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }

  std::uint64_t served() const { return served_.load(); }
  std::uint64_t busy_sent() const { return busy_sent_.load(); }

  /// The prediction a request id maps to (what the client must see).
  static double value_for(std::uint64_t request_id) {
    return static_cast<double>(request_id) + 0.25;
  }

 private:
  void loop() {
    while (!stopping_.load()) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 20) <= 0) continue;
      const int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd < 0) continue;
      serve_connection(cfd);
      ::close(cfd);
    }
  }

  void serve_connection(int fd) {
    std::vector<std::uint8_t> buf;
    std::size_t start = 0;
    std::uint8_t chunk[4096];
    while (!stopping_.load()) {
      pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 20);
      if (rc < 0) return;
      if (rc == 0) continue;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return;
      buf.insert(buf.end(), chunk, chunk + n);
      while (true) {
        const auto view = std::span<const std::uint8_t>(buf).subspan(start);
        const FrameDecode dec = util::decode_frame(view);
        if (dec.status != FrameDecode::Status::kOk) break;
        handle(fd, dec.header,
               view.subspan(FrameHeader::kWireSize, dec.header.payload_len));
        start += dec.consumed;
      }
    }
  }

  void handle(int fd, const FrameHeader& header,
              std::span<const std::uint8_t> payload) {
    if (silent_) return;  // reads everything, answers nothing
    const auto type = static_cast<FrameType>(header.type);
    if (type == FrameType::kPing) {
      send_all(fd, serve::encode_pong(header.request_id));
      return;
    }
    if (type != FrameType::kPredictRequest) return;
    serve::PredictRequest req;
    serve::ErrorResponse err;
    if (!serve::decode_predict_request(header, payload, &req, &err)) return;
    std::size_t expect = busy_left_.load();
    while (expect > 0 &&
           !busy_left_.compare_exchange_weak(expect, expect - 1)) {
    }
    if (expect > 0) {
      serve::ErrorResponse busy;
      busy.request_id = req.request_id;
      busy.status = serve::ServeStatus::kBusy;
      busy.detail = "scripted shed";
      send_all(fd, serve::encode_error_response(busy));
      busy_sent_.fetch_add(1);
      return;
    }
    serve::PredictResponse resp;
    resp.request_id = req.request_id;
    resp.values = {value_for(req.request_id)};
    send_all(fd, serve::encode_predict_response(resp));
    served_.fetch_add(1);
  }

  static void send_all(int fd, std::string_view bytes) {
    const char* p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
      const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
      if (n <= 0) return;
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  std::string path_;
  std::atomic<std::size_t> busy_left_;
  bool silent_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> busy_sent_{0};
};

// -- fixture: a trained checkpoint and live shard servers -------------------

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

Xy make_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(n, 5);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 5; ++c) d.x(i, c) = rng.uniform(-3.0, 3.0);
    d.y[i] = std::sin(d.x(i, 0)) + 0.3 * d.x(i, 1) * d.x(i, 2) +
             rng.normal(0.0, 0.05);
  }
  return d;
}

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    train_ = new Xy(make_data(300, 21));
    probe_ = new Xy(make_data(48, 22));
    ml::GbtParams p;
    p.n_estimators = 10;
    p.max_depth = 4;
    model_ = new ml::GradientBoostedTrees(p);
    model_->fit(train_->x, train_->y);
    model_path_ = ::testing::TempDir() + "fleet_test_model.gbt";
    std::ofstream out(model_path_);
    ASSERT_TRUE(out.is_open());
    model_->save(out);
  }

  static void TearDownTestSuite() {
    delete train_;
    delete probe_;
    delete model_;
    train_ = nullptr;
    probe_ = nullptr;
    model_ = nullptr;
  }

  static std::string sock_path(const char* tag) {
    return ::testing::TempDir() + "fleet_test_" + tag + ".sock";
  }

  /// A shard: a real in-process daemon on its own unix socket.
  static serve::ServeConfig shard_config(const char* tag) {
    serve::ServeConfig cfg;
    cfg.model_files = {model_path_};
    cfg.unix_socket = sock_path(tag);
    return cfg;
  }

  static serve::PredictRequest request_for_row(std::size_t row,
                                               std::uint64_t id) {
    serve::PredictRequest req;
    req.request_id = id;
    const auto src = probe_->x.row(row);
    req.features.assign(src.begin(), src.end());
    return req;
  }

  /// Fast, test-friendly retry policy: small budget, tight backoff.
  static serve::RetryPolicy test_policy(std::uint64_t deadline_ms = 2000) {
    serve::RetryPolicy policy;
    policy.deadline_ms = deadline_ms;
    policy.try_timeout_ms = 100;
    policy.backoff = {/*initial_ms=*/1, /*max_ms=*/8, /*multiplier=*/2.0,
                      /*jitter=*/0.25};
    return policy;
  }

  static Xy* train_;
  static Xy* probe_;
  static ml::GradientBoostedTrees* model_;
  static std::string model_path_;
};

Xy* FleetTest::train_ = nullptr;
Xy* FleetTest::probe_ = nullptr;
ml::GradientBoostedTrees* FleetTest::model_ = nullptr;
std::string FleetTest::model_path_;

void expect_bit_identical(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    EXPECT_EQ(ba, bb) << "row " << i;
  }
}

// -- retrying client --------------------------------------------------------

TEST_F(FleetTest, ClientRecvTimeoutIsTypedNotHung) {
  // Satellite contract: a daemon that accepts and then goes silent must
  // surface as Client::Timeout (Reason::kDeadlineExpired), not block
  // the caller forever and not read as a vanished peer.
  FakeShard mute(sock_path("mute"), 0, /*silent=*/true);
  auto client = serve::Client::connect_unix(sock_path("mute"));
  client.set_recv_timeout_ms(100);
  client.send_ping(1);
  serve::Client::Reply reply;
  EXPECT_THROW(client.read_reply(&reply), serve::Client::Timeout);
  static_assert(serve::Client::Timeout::kReason == Reason::kDeadlineExpired);
  mute.stop();
}

TEST_F(FleetTest, RetryingClientFailsOverFromDeadReplica) {
  serve::Server live(shard_config("fo_live"));
  live.start();
  // Replica 0 does not exist; the client must fail over to replica 1
  // inside the deadline and still return the real answer.
  serve::RetryCounters counters;
  serve::RetryingClient client(
      {serve::Endpoint::unix_path(sock_path("fo_dead")),
       serve::Endpoint::unix_path(sock_path("fo_live"))},
      test_policy(), util::Rng(3), &counters);
  const auto offline = model_->predict(probe_->x);
  const auto result = client.predict(request_for_row(0, 1));
  ASSERT_TRUE(result.ok) << result.error.detail;
  expect_bit_identical(result.response.values, {offline[0]});
  EXPECT_GE(counters.failovers.load(), 1u);
  EXPECT_EQ(counters.degraded.load(), 0u);
  // Once settled on the live replica, later requests are first-try.
  const auto again = client.predict(request_for_row(1, 2));
  ASSERT_TRUE(again.ok);
  expect_bit_identical(again.response.values, {offline[1]});
  live.stop();
}

TEST_F(FleetTest, RetryingClientAbsorbsBusyOnSameReplica) {
  // Two scripted BUSY sheds, then service. BUSY must be retried on the
  // SAME replica (no failover — the queue needs a moment, the process
  // is fine) and never surface to the caller.
  FakeShard shard(sock_path("busy"), /*busy_first_n=*/2, /*silent=*/false);
  serve::RetryCounters counters;
  serve::RetryingClient client(
      {serve::Endpoint::unix_path(sock_path("busy"))}, test_policy(),
      util::Rng(4), &counters);
  const auto result = client.predict(request_for_row(0, 9));
  ASSERT_TRUE(result.ok) << result.error.detail;
  ASSERT_EQ(result.response.values.size(), 1u);
  EXPECT_EQ(result.response.values[0], FakeShard::value_for(9));
  EXPECT_EQ(counters.busy_retries.load(), 2u);
  EXPECT_EQ(shard.busy_sent(), 2u);
  // The shard thread bumps served() after writing the reply; give its
  // scheduler slice a moment before asserting.
  const auto served_deadline = util::Deadline::after_ms(2000);
  while (shard.served() == 0 && !served_deadline.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(shard.served(), 1u);
  EXPECT_EQ(counters.failovers.load(), 0u);
  shard.stop();
}

TEST_F(FleetTest, RetryingClientDegradesWhenNoReplicaAnswers) {
  serve::RetryCounters counters;
  serve::RetryingClient client(
      {serve::Endpoint::unix_path(sock_path("void_a")),
       serve::Endpoint::unix_path(sock_path("void_b"))},
      test_policy(/*deadline_ms=*/200), util::Rng(5), &counters);
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = client.predict(request_for_row(0, 1));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error.status, serve::ServeStatus::kDegraded);
  EXPECT_EQ(result.error.request_id, 1u);
  ASSERT_TRUE(result.error.reason.has_value());
  EXPECT_EQ(*result.error.reason, Reason::kConnectionReset);
  EXPECT_NE(result.error.detail.find("replica group unavailable"),
            std::string::npos)
      << result.error.detail;
  EXPECT_EQ(counters.degraded.load(), 1u);
  EXPECT_GE(counters.retries.load(), 1u);
  // The deadline bounds the pain: well past 200ms would mean the retry
  // loop ignores its budget. Generous slack for slow CI machines.
  EXPECT_LT(elapsed, 2000);
}

TEST_F(FleetTest, RetryingClientPassesModelVerdictsThrough) {
  serve::Server live(shard_config("verdict"));
  live.start();
  serve::RetryingClient client(
      {serve::Endpoint::unix_path(sock_path("verdict"))}, test_policy(),
      util::Rng(6));
  // Unknown model index: a typed answer, not a transport failure — it
  // must come back on the first attempt, not burn the retry budget.
  auto req = request_for_row(0, 5);
  req.model_index = 7;
  const auto result = client.predict(req);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error.status, serve::ServeStatus::kUnknownModel);
  EXPECT_EQ(result.error.request_id, 5u);
  live.stop();
}

// -- SIGPIPE / half-closed peers --------------------------------------------

TEST_F(FleetTest, ServerSurvivesPeerClosingBeforeTheReply) {
  // Regression for the half-closed-connection death: the peer sends a
  // request and vanishes before the reply is written. The write must
  // fail as EPIPE (SIGPIPE ignored/suppressed), be absorbed, and leave
  // the daemon serving — not kill the process.
  auto cfg = shard_config("halfclosed");
  cfg.batch_wait_us = 50000;  // hold the batch: the reply loses the race
  serve::Server server(cfg);
  server.start();
  {
    auto doomed = serve::Client::connect_unix(cfg.unix_socket);
    doomed.send_predict(request_for_row(0, 1));
    doomed.close();  // gone before the 50ms batch window elapses
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // Still alive and still answering.
  auto client = serve::Client::connect_unix(cfg.unix_socket);
  client.send_predict(request_for_row(1, 2));
  serve::Client::Reply reply;
  ASSERT_TRUE(client.read_reply(&reply));
  EXPECT_EQ(reply.type, FrameType::kPredictResponse);
  client.close();
  server.stop();
  EXPECT_EQ(server.stats().requests, 2u);
}

// -- router over static groups ----------------------------------------------

TEST_F(FleetTest, RouterRoutesBitIdenticalAcrossGroups) {
  serve::Server shard_a(shard_config("route_g0"));
  serve::Server shard_b(shard_config("route_g1"));
  shard_a.start();
  shard_b.start();
  serve::RouterConfig cfg;
  cfg.unix_socket = sock_path("route_front");
  cfg.static_groups = {
      {serve::Endpoint::unix_path(sock_path("route_g0"))},
      {serve::Endpoint::unix_path(sock_path("route_g1"))}};
  serve::Router router(cfg);
  router.start();

  const auto offline = model_->predict(probe_->x);
  const std::size_t n = probe_->x.rows();
  auto client = serve::Client::connect_unix(cfg.unix_socket);
  for (std::size_t i = 0; i < n; ++i) {
    client.send_predict(request_for_row(i, i + 1));
  }
  std::vector<double> served(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    serve::Client::Reply reply;
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_EQ(reply.type, FrameType::kPredictResponse);
    const auto row = reply.request_id - 1;
    ASSERT_LT(row, n);
    served[row] = reply.predict.values[0];
  }
  client.close();
  router.stop();
  // Every answer is bit-identical to offline — the hash decided where a
  // request ran, never what it answered.
  expect_bit_identical(served, offline);
  const auto stats = router.stats();
  EXPECT_EQ(stats.requests, n);
  EXPECT_EQ(stats.responses, n);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  // Both shards saw traffic (the slot function spreads; with 48 varied
  // rows an idle group would mean routing collapsed to one slot).
  EXPECT_GT(shard_a.stats().requests, 0u);
  EXPECT_GT(shard_b.stats().requests, 0u);
  EXPECT_EQ(shard_a.stats().requests + shard_b.stats().requests, n);
  shard_a.stop();
  shard_b.stop();
}

TEST_F(FleetTest, RouterFailsOverMidLoadWithZeroClientFailures) {
  serve::Server replica_a(shard_config("fo_r0"));
  serve::Server replica_b(shard_config("fo_r1"));
  replica_a.start();
  replica_b.start();
  serve::RouterConfig cfg;
  cfg.unix_socket = sock_path("fo_front");
  cfg.static_groups = {
      {serve::Endpoint::unix_path(sock_path("fo_r0")),
       serve::Endpoint::unix_path(sock_path("fo_r1"))}};
  serve::Router router(cfg);
  router.start();

  const auto offline = model_->predict(probe_->x);
  const std::size_t n = probe_->x.rows();
  const std::size_t half = n / 2;
  auto client = serve::Client::connect_unix(cfg.unix_socket);
  std::vector<double> served(n, 0.0);
  const auto drain = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      client.send_predict(request_for_row(i, i + 1));
    }
    for (std::size_t i = lo; i < hi; ++i) {
      serve::Client::Reply reply;
      ASSERT_TRUE(client.read_reply(&reply));
      ASSERT_EQ(reply.type, FrameType::kPredictResponse)
          << "request " << reply.request_id << ": " << reply.error.detail;
      served[reply.request_id - 1] = reply.predict.values[0];
    }
  };
  drain(0, half);
  EXPECT_GT(replica_a.stats().requests, 0u);  // the session camped on r0
  // The replica currently serving this session dies mid-load. Every
  // remaining request must still answer, bit-identically, via r1.
  replica_a.stop();
  drain(half, n);
  client.close();
  router.stop();
  expect_bit_identical(served, offline);
  const auto stats = router.stats();
  EXPECT_EQ(stats.responses, n);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GT(replica_b.stats().requests, 0u);
  replica_b.stop();
}

TEST_F(FleetTest, RouterReportsDegradedWhenAGroupIsGone) {
  serve::RouterConfig cfg;
  cfg.unix_socket = sock_path("deg_front");
  cfg.deadline_ms = 200;
  cfg.try_timeout_ms = 50;
  cfg.static_groups = {
      {serve::Endpoint::unix_path(sock_path("deg_nobody"))}};
  serve::Router router(cfg);
  router.start();
  auto client = serve::Client::connect_unix(cfg.unix_socket);
  client.send_predict(request_for_row(0, 1));
  serve::Client::Reply reply;
  ASSERT_TRUE(client.read_reply(&reply));
  ASSERT_EQ(reply.type, FrameType::kErrorResponse);
  EXPECT_EQ(reply.error.status, serve::ServeStatus::kDegraded);
  ASSERT_TRUE(reply.error.reason.has_value());
  EXPECT_EQ(*reply.error.reason, Reason::kConnectionReset);
  client.close();
  router.stop();
  const auto stats = router.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  // The terminal transport reason lands in the quarantine ledger under
  // the shared 24-reason vocabulary.
  EXPECT_EQ(router.quarantine().count(Reason::kConnectionReset), 1u);
}

TEST_F(FleetTest, RouterAnswersPingAndRefusesControl) {
  serve::Server shard(shard_config("ctl_g0"));
  shard.start();
  serve::RouterConfig cfg;
  cfg.unix_socket = sock_path("ctl_front");
  cfg.static_groups = {{serve::Endpoint::unix_path(sock_path("ctl_g0"))}};
  serve::Router router(cfg);
  router.start();
  auto client = serve::Client::connect_unix(cfg.unix_socket);
  serve::Client::Reply reply;
  client.send_ping(3);
  ASSERT_TRUE(client.read_reply(&reply));
  EXPECT_EQ(reply.type, FrameType::kPong);
  EXPECT_EQ(reply.request_id, 3u);
  // Control verbs mutate one registry and the fleet has N of them;
  // routing a promote to a hash-picked shard would fork replica state.
  serve::ControlRequest ctl;
  ctl.request_id = 4;
  ctl.op = serve::ControlOp::kStatus;
  client.send_control(ctl);
  ASSERT_TRUE(client.read_reply(&reply));
  ASSERT_EQ(reply.type, FrameType::kErrorResponse);
  EXPECT_EQ(reply.error.status, serve::ServeStatus::kBadRequest);
  EXPECT_NE(reply.error.detail.find("not routed"), std::string::npos);
  // The connection survives the refusal.
  client.send_predict(request_for_row(0, 5));
  ASSERT_TRUE(client.read_reply(&reply));
  EXPECT_EQ(reply.type, FrameType::kPredictResponse);
  client.close();
  router.stop();
  shard.stop();
}

TEST_F(FleetTest, RouterDropAndDelayChaosAreInvisibleToClients) {
  serve::Server shard(shard_config("chaos_g0"));
  shard.start();
  serve::RouterConfig cfg;
  cfg.unix_socket = sock_path("chaos_front");
  cfg.static_groups = {{serve::Endpoint::unix_path(sock_path("chaos_g0"))}};
  cfg.chaos = faults::ChaosPlan::from_json(util::Json::parse(R"({
    "events": [
      {"at_request": 2, "action": "drop",  "group": 0, "replica": 0},
      {"at_request": 3, "action": "delay", "group": 0, "replica": 0,
       "delay_ms": 5}]})"));
  serve::Router router(cfg);
  router.start();
  const auto offline = model_->predict(probe_->x);
  auto client = serve::Client::connect_unix(cfg.unix_socket);
  constexpr std::size_t kRequests = 4;
  std::vector<double> served(kRequests, 0.0);
  for (std::size_t i = 0; i < kRequests; ++i) {
    client.send_predict(request_for_row(i, i + 1));
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    serve::Client::Reply reply;
    ASSERT_TRUE(client.read_reply(&reply));
    ASSERT_EQ(reply.type, FrameType::kPredictResponse)
        << "request " << reply.request_id << ": " << reply.error.detail;
    served[reply.request_id - 1] = reply.predict.values[0];
  }
  client.close();
  router.stop();
  expect_bit_identical(
      served, std::vector<double>(offline.begin(), offline.begin() + 4));
  const auto stats = router.stats();
  EXPECT_EQ(stats.responses, kRequests);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.chaos_drops, 1u);
  EXPECT_EQ(stats.chaos_delays, 1u);
  shard.stop();
}

TEST_F(FleetTest, RouterSurvivesPeerClosingBeforeTheReply) {
  // The router-side SIGPIPE regression: the front peer vanishes while
  // the backhaul round-trip is in flight; the reply write hits a dead
  // socket and must be absorbed, not kill the process.
  auto shard_cfg = shard_config("rhc_g0");
  shard_cfg.batch_wait_us = 50000;  // backhaul reply arrives after close
  serve::Server shard(shard_cfg);
  shard.start();
  serve::RouterConfig cfg;
  cfg.unix_socket = sock_path("rhc_front");
  cfg.static_groups = {{serve::Endpoint::unix_path(sock_path("rhc_g0"))}};
  serve::Router router(cfg);
  router.start();
  {
    auto doomed = serve::Client::connect_unix(cfg.unix_socket);
    doomed.send_predict(request_for_row(0, 1));
    doomed.close();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  auto client = serve::Client::connect_unix(cfg.unix_socket);
  client.send_predict(request_for_row(1, 2));
  serve::Client::Reply reply;
  ASSERT_TRUE(client.read_reply(&reply));
  EXPECT_EQ(reply.type, FrameType::kPredictResponse);
  client.close();
  router.stop();
  shard.stop();
}

TEST_F(FleetTest, RouterConfigContractsAreEnforced) {
  {  // Exactly one shard source.
    serve::RouterConfig cfg;
    cfg.unix_socket = sock_path("cfg_a");
    serve::Router router(cfg);
    EXPECT_THROW(router.start(), std::invalid_argument);
  }
  {  // A group with no endpoints cannot serve its slot.
    serve::RouterConfig cfg;
    cfg.unix_socket = sock_path("cfg_b");
    cfg.static_groups = {{serve::Endpoint::unix_path(sock_path("x"))}, {}};
    serve::Router router(cfg);
    EXPECT_THROW(router.start(), std::invalid_argument);
  }
  {  // kill/hang chaos needs a supervisor to deliver the signal.
    serve::RouterConfig cfg;
    cfg.unix_socket = sock_path("cfg_c");
    cfg.static_groups = {{serve::Endpoint::unix_path(sock_path("x"))}};
    cfg.chaos = faults::ChaosPlan::from_json(util::Json::parse(
        R"({"events": [{"at_request": 1, "action": "kill"}]})"));
    serve::Router router(cfg);
    EXPECT_THROW(router.start(), std::invalid_argument);
  }
  {  // Chaos events must address shards inside the topology.
    serve::RouterConfig cfg;
    cfg.unix_socket = sock_path("cfg_d");
    cfg.static_groups = {{serve::Endpoint::unix_path(sock_path("x"))}};
    cfg.chaos = faults::ChaosPlan::from_json(util::Json::parse(
        R"({"events": [{"at_request": 1, "action": "drop", "group": 3}]})"));
    serve::Router router(cfg);
    EXPECT_THROW(router.start(), std::invalid_argument);
  }
}

}  // namespace
}  // namespace iotax
