// Tests for the later-added library features: GBT early stopping, the
// tree-based uncertainty estimator, report serialization, model
// interpretation, and the CLI argument parser.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "src/cli/args.hpp"
#include "src/ml/uq_gbt.hpp"
#include "src/taxonomy/interpret.hpp"
#include "src/taxonomy/report_io.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

Xy noisy_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(n, 3);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    d.x(i, 0) = a;
    d.x(i, 1) = b;
    d.x(i, 2) = rng.normal();
    d.y[i] = std::sin(a) + 0.4 * b + rng.normal(0.0, 0.3);
  }
  return d;
}

TEST(EarlyStopping, StopsBeforeBudgetOnNoisyData) {
  const auto train = noisy_data(600, 1);
  const auto val = noisy_data(300, 2);
  ml::GbtParams p;
  p.n_estimators = 400;
  p.max_depth = 6;
  p.learning_rate = 0.3;  // aggressive: overfits quickly
  p.early_stopping_rounds = 10;
  ml::GradientBoostedTrees model(p);
  model.fit_eval(train.x, train.y, val.x, val.y);
  EXPECT_LT(model.n_trees(), 400u);
  EXPECT_GT(model.n_trees(), 0u);
}

TEST(EarlyStopping, ImprovesGeneralisationOverFullBudget) {
  const auto train = noisy_data(600, 3);
  const auto val = noisy_data(300, 4);
  const auto test = noisy_data(500, 5);
  ml::GbtParams p;
  p.n_estimators = 400;
  p.max_depth = 6;
  p.learning_rate = 0.3;
  ml::GradientBoostedTrees full(p);
  full.fit(train.x, train.y);
  p.early_stopping_rounds = 15;
  ml::GradientBoostedTrees stopped(p);
  stopped.fit_eval(train.x, train.y, val.x, val.y);
  EXPECT_LE(ml::rmse_log(test.y, stopped.predict(test.x)),
            ml::rmse_log(test.y, full.predict(test.x)) * 1.02);
}

TEST(EarlyStopping, DisabledBehavesLikeFit) {
  const auto train = noisy_data(300, 6);
  const auto val = noisy_data(100, 7);
  ml::GbtParams p;
  p.n_estimators = 30;
  ml::GradientBoostedTrees a(p);
  a.fit(train.x, train.y);
  ml::GradientBoostedTrees b(p);
  b.fit_eval(train.x, train.y, val.x, val.y);  // rounds == 0: no stopping
  EXPECT_EQ(a.n_trees(), b.n_trees());
  const auto pa = a.predict(val.x);
  const auto pb = b.predict(val.x);
  for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(EarlyStopping, MismatchedValidationRejected) {
  const auto train = noisy_data(100, 8);
  ml::GradientBoostedTrees model;
  data::Matrix x_val(5, 3);
  std::vector<double> y_val(4);
  EXPECT_THROW(model.fit_eval(train.x, train.y, x_val, y_val),
               std::invalid_argument);
}

TEST(GbtUncertainty, RecoversHeteroscedasticNoise) {
  util::Rng rng(9);
  const std::size_t n = 6000;
  data::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    const double sigma = x(i, 0) > 0.0 ? 0.5 : 0.05;
    y[i] = x(i, 0) + rng.normal(0.0, sigma);
  }
  ml::GbtParams mean_p;
  mean_p.n_estimators = 60;
  mean_p.max_depth = 3;
  ml::GbtParams var_p;
  var_p.n_estimators = 60;
  var_p.max_depth = 3;
  ml::GbtUncertainty uq(mean_p, var_p);
  uq.fit(x, y);
  data::Matrix probe(2, 1);
  probe(0, 0) = 0.6;   // noisy side
  probe(1, 0) = -0.6;  // quiet side
  const auto pred = uq.predict_dist(probe);
  EXPECT_GT(pred.variance[0], 4.0 * pred.variance[1]);
  // Variance magnitude roughly right on the noisy side (sigma^2 = 0.25).
  EXPECT_GT(pred.variance[0], 0.05);
  EXPECT_LT(pred.variance[0], 1.0);
}

TEST(GbtUncertainty, PredictBeforeFitThrows) {
  ml::GbtUncertainty uq({}, {});
  EXPECT_THROW(uq.predict_dist(data::Matrix(1, 1)), std::logic_error);
}

taxonomy::TaxonomyReport sample_report() {
  taxonomy::TaxonomyReport r;
  r.system = "unit-test";
  r.n_jobs = 1234;
  r.baseline_error = 0.04;
  r.app_bound.median_abs_error = 0.025;
  r.app_bound.mean_abs_error = 0.031;
  r.app_bound.stats.n_sets = 42;
  r.app_bound.stats.n_duplicate_jobs = 300;
  r.app_bound.stats.duplicate_fraction = 0.243;
  r.tuned_error = 0.027;
  r.tuned_params.n_estimators = 64;
  r.tuned_params.max_depth = 9;
  r.system_bound.err_app_only = 0.027;
  r.system_bound.err_with_time = 0.02;
  r.system_bound.reduction_frac = 0.26;
  r.lmt_enriched_error = 0.021;
  taxonomy::OodResult ood;
  ood.eu_threshold = 0.1;
  ood.frac_ood = 0.007;
  ood.error_share_ood = 0.024;
  ood.error_ratio = 3.4;
  r.ood = ood;
  r.noise.median_abs_error = 0.016;
  r.noise.sigma_log10 = 0.024;
  r.noise.band68_pct = 5.68;
  r.noise.band95_pct = 11.4;
  r.noise.t_fit.df = 14.0;
  r.noise.n_sets = 99;
  r.share_app = 0.37;
  r.share_app_realized = 0.32;
  r.share_system = 0.12;
  r.share_system_realized = 0.1;
  r.share_ood = 0.02;
  r.share_aleatory = 0.4;
  r.share_unexplained = 0.09;
  return r;
}

TEST(ReportIo, RoundTripAllFields) {
  const auto report = sample_report();
  const auto path =
      (std::filesystem::temp_directory_path() / "iotax_report.csv").string();
  taxonomy::write_report_csv(path, report);
  const auto back = taxonomy::read_report_csv(path);
  EXPECT_EQ(back.system, "unit-test");
  EXPECT_EQ(back.n_jobs, 1234u);
  EXPECT_DOUBLE_EQ(back.baseline_error, report.baseline_error);
  EXPECT_DOUBLE_EQ(back.app_bound.median_abs_error,
                   report.app_bound.median_abs_error);
  EXPECT_EQ(back.app_bound.stats.n_sets, 42u);
  EXPECT_DOUBLE_EQ(back.tuned_error, report.tuned_error);
  EXPECT_EQ(back.tuned_params.n_estimators, 64u);
  ASSERT_TRUE(back.lmt_enriched_error.has_value());
  EXPECT_DOUBLE_EQ(*back.lmt_enriched_error, 0.021);
  ASSERT_TRUE(back.ood.has_value());
  EXPECT_DOUBLE_EQ(back.ood->error_ratio, 3.4);
  EXPECT_DOUBLE_EQ(back.noise.band68_pct, 5.68);
  EXPECT_DOUBLE_EQ(back.share_unexplained, 0.09);
  std::filesystem::remove(path);
}

TEST(ReportIo, OptionalFieldsStayUnset) {
  auto report = sample_report();
  report.lmt_enriched_error.reset();
  report.ood.reset();
  const auto path =
      (std::filesystem::temp_directory_path() / "iotax_report2.csv").string();
  taxonomy::write_report_csv(path, report);
  const auto back = taxonomy::read_report_csv(path);
  EXPECT_FALSE(back.lmt_enriched_error.has_value());
  EXPECT_FALSE(back.ood.has_value());
  std::filesystem::remove(path);
}

TEST(ReportIo, SummaryLineContainsKeyNumbers) {
  const auto line = taxonomy::summary_line(sample_report());
  EXPECT_NE(line.find("unit-test"), std::string::npos);
  EXPECT_NE(line.find("noise=40.0%"), std::string::npos);
  EXPECT_NE(line.find("unexplained=9.0%"), std::string::npos);
}

TEST(Interpret, RankedImportancesSortedAndNamed) {
  const auto d = noisy_data(800, 10);
  ml::GradientBoostedTrees model({.n_estimators = 40, .max_depth = 4});
  model.fit(d.x, d.y);
  const auto ranked = taxonomy::ranked_importances(
      model, {"POSIX_BYTES_READ", "POSIX_SEQ_READS", "LMT_OSS_CPU_MEAN"});
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_GE(ranked[0].importance, ranked[1].importance);
  EXPECT_GE(ranked[1].importance, ranked[2].importance);
  EXPECT_THROW(taxonomy::ranked_importances(model, {"just-one"}),
               std::invalid_argument);
}

TEST(Interpret, GroupsByPrefix) {
  const std::vector<taxonomy::FeatureImportance> feats = {
      {"POSIX_BYTES_READ", 0.3},   {"POSIX_SEQ_READS", 0.2},
      {"LMT_OSS_CPU_MEAN", 0.25},  {"COBALT_START_TIME", 0.15},
      {"POSIX_OPENS", 0.1},
  };
  const auto groups = taxonomy::grouped_importances(feats);
  double total = 0.0;
  bool has_storage = false;
  bool has_time = false;
  for (const auto& g : groups) {
    total += g.importance;
    if (g.group == "storage (LMT)") {
      has_storage = true;
      EXPECT_DOUBLE_EQ(g.importance, 0.25);
    }
    if (g.group == "time") {
      has_time = true;
      EXPECT_DOUBLE_EQ(g.importance, 0.15);
    }
  }
  EXPECT_TRUE(has_storage);
  EXPECT_TRUE(has_time);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Interpret, RenderContainsTopFeature) {
  const std::vector<taxonomy::FeatureImportance> feats = {
      {"POSIX_BYTES_READ", 0.9}, {"POSIX_OPENS", 0.1}};
  const auto text = taxonomy::render_importance_report(feats, 1);
  EXPECT_NE(text.find("POSIX_BYTES_READ"), std::string::npos);
  EXPECT_NE(text.find("90.00%"), std::string::npos);
}

TEST(CliArgs, ParsesPositionalFlagsAndValues) {
  const char* argv[] = {"simulate", "--preset", "theta", "--verbose",
                        "--seed", "42", "extra"};
  const cli::Args args(7, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "simulate");
  EXPECT_EQ(args.positional()[1], "extra");
  EXPECT_EQ(args.get("preset"), "theta");
  EXPECT_EQ(args.get_int_or("seed", 0), 42);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
}

TEST(CliArgs, FlagHasNoValue) {
  const char* argv[] = {"--lenient", "--out", "dir"};
  const cli::Args args(3, argv);
  EXPECT_THROW(args.get("lenient"), std::invalid_argument);
  EXPECT_EQ(args.get_or("lenient", "dflt"), "dflt");
  EXPECT_EQ(args.get("out"), "dir");
}

TEST(CliArgs, DefaultsAndNumericParsing) {
  const char* argv[] = {"--window", "2.5"};
  const cli::Args args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double_or("window", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(args.get_double_or("missing", 1.0), 1.0);
  EXPECT_EQ(args.get_int_or("missing", 9), 9);
}

TEST(CliArgs, UnknownOptionDetected) {
  const char* argv[] = {"--sedd", "42"};
  const cli::Args args(2, argv);
  EXPECT_THROW(args.check_allowed({"seed"}), std::invalid_argument);
  EXPECT_NO_THROW(args.check_allowed({"sedd"}));
}

}  // namespace
}  // namespace iotax
