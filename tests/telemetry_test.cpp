#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <sstream>

#include "src/telemetry/cobalt.hpp"
#include "src/telemetry/counters.hpp"
#include "src/telemetry/darshan_log.hpp"
#include "src/telemetry/io_signature.hpp"
#include "src/telemetry/lmt.hpp"

namespace iotax {
namespace {

telemetry::IoSignature make_signature() {
  telemetry::IoSignature sig;
  sig.bytes_read = 4.0 * (1 << 30);     // 4 GiB
  sig.bytes_written = 2.0 * (1 << 30);  // 2 GiB
  sig.n_procs = 64;
  sig.read_size_frac[5] = 0.7;   // 1M-4M
  sig.read_size_frac[7] = 0.3;   // 10M-100M
  sig.write_size_frac[4] = 1.0;  // 100K-1M
  sig.seq_read_frac = 0.8;
  sig.consec_read_frac = 0.5;
  sig.seq_write_frac = 0.9;
  sig.consec_write_frac = 0.6;
  sig.rw_switch_frac = 0.1;
  sig.mem_unaligned_frac = 0.2;
  sig.file_unaligned_frac = 0.3;
  sig.files_total = 10.0;
  sig.files_shared_frac = 0.2;
  sig.files_readonly_frac = 0.5;
  sig.files_writeonly_frac = 0.3;
  sig.opens_per_file = 2.0;
  sig.seeks_per_op = 0.1;
  sig.stats_per_open = 1.0;
  sig.fsyncs = 4.0;
  sig.uses_mpiio = true;
  sig.coll_frac = 0.5;
  sig.nonblocking_frac = 0.1;
  return sig;
}

TEST(IoSignature, ValidSignaturePasses) {
  EXPECT_NO_THROW(make_signature().validate());
}

TEST(IoSignature, RejectsNegativeVolume) {
  auto sig = make_signature();
  sig.bytes_read = -1.0;
  EXPECT_THROW(sig.validate(), std::invalid_argument);
}

TEST(IoSignature, RejectsBadBucketSum) {
  auto sig = make_signature();
  sig.read_size_frac[5] = 0.5;  // sum now 0.8
  EXPECT_THROW(sig.validate(), std::invalid_argument);
}

TEST(IoSignature, RejectsFractionOutOfRange) {
  auto sig = make_signature();
  sig.seq_read_frac = 1.5;
  EXPECT_THROW(sig.validate(), std::invalid_argument);
}

TEST(IoSignature, RejectsConsecExceedingSeq) {
  auto sig = make_signature();
  sig.consec_read_frac = 0.9;  // > seq_read_frac = 0.8
  EXPECT_THROW(sig.validate(), std::invalid_argument);
}

TEST(IoSignature, RejectsZeroProcs) {
  auto sig = make_signature();
  sig.n_procs = 0;
  EXPECT_THROW(sig.validate(), std::invalid_argument);
}

TEST(IoSignature, HashEqualForIdenticalSignatures) {
  const auto a = make_signature();
  const auto b = make_signature();
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

TEST(IoSignature, HashDiffersWhenAnyFieldChanges) {
  const auto base = make_signature();
  auto mod = base;
  mod.bytes_written += 1.0;
  EXPECT_NE(base.content_hash(), mod.content_hash());
  mod = base;
  mod.coll_frac = 0.51;
  EXPECT_NE(base.content_hash(), mod.content_hash());
  mod = base;
  mod.uses_mpiio = false;
  EXPECT_NE(base.content_hash(), mod.content_hash());
}

TEST(Counters, FeatureCountsMatchPaper) {
  EXPECT_EQ(telemetry::posix_feature_names().size(), 48u);
  EXPECT_EQ(telemetry::mpiio_feature_names().size(), 48u);
  EXPECT_EQ(telemetry::lmt_feature_names().size(), 37u);
  EXPECT_EQ(telemetry::cobalt_feature_names().size(), 5u);
}

TEST(Counters, NamesAreUnique) {
  for (const auto* names :
       {&telemetry::posix_feature_names(), &telemetry::mpiio_feature_names(),
        &telemetry::lmt_feature_names(),
        &telemetry::cobalt_feature_names()}) {
    std::set<std::string> unique(names->begin(), names->end());
    EXPECT_EQ(unique.size(), names->size());
  }
}

TEST(Counters, PosixDeterministicForEqualSignatures) {
  const auto a = telemetry::compute_posix_counters(make_signature());
  const auto b = telemetry::compute_posix_counters(make_signature());
  EXPECT_EQ(a, b);
}

TEST(Counters, PosixBytesMatchSignature) {
  const auto sig = make_signature();
  const auto c = telemetry::compute_posix_counters(sig);
  const auto& names = telemetry::posix_feature_names();
  const auto idx = [&names](const std::string& n) {
    return std::find(names.begin(), names.end(), n) - names.begin();
  };
  EXPECT_DOUBLE_EQ(c[idx("POSIX_BYTES_READ")], sig.bytes_read);
  EXPECT_DOUBLE_EQ(c[idx("POSIX_BYTES_WRITTEN")], sig.bytes_written);
  EXPECT_DOUBLE_EQ(c[idx("POSIX_NPROCS")], 64.0);
  EXPECT_DOUBLE_EQ(c[idx("POSIX_TOTAL_FILES")], 10.0);
  EXPECT_DOUBLE_EQ(c[idx("POSIX_SHARED_FILES")], 2.0);
  EXPECT_DOUBLE_EQ(c[idx("POSIX_UNIQUE_FILES")], 8.0);
}

TEST(Counters, ConsecSubsetOfSeqSubsetOfOps) {
  const auto sig = make_signature();
  const auto c = telemetry::compute_posix_counters(sig);
  const auto& names = telemetry::posix_feature_names();
  const auto idx = [&names](const std::string& n) {
    return std::find(names.begin(), names.end(), n) - names.begin();
  };
  EXPECT_LE(c[idx("POSIX_CONSEC_READS")], c[idx("POSIX_SEQ_READS")]);
  EXPECT_LE(c[idx("POSIX_SEQ_READS")], c[idx("POSIX_READS")]);
  EXPECT_LE(c[idx("POSIX_CONSEC_WRITES")], c[idx("POSIX_SEQ_WRITES")]);
  EXPECT_LE(c[idx("POSIX_SEQ_WRITES")], c[idx("POSIX_WRITES")]);
}

TEST(Counters, MpiioZeroWhenUnused) {
  auto sig = make_signature();
  sig.uses_mpiio = false;
  const auto c = telemetry::compute_mpiio_counters(sig);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Counters, MpiioCollectiveSplit) {
  const auto sig = make_signature();
  const auto c = telemetry::compute_mpiio_counters(sig);
  const auto& names = telemetry::mpiio_feature_names();
  const auto idx = [&names](const std::string& n) {
    return std::find(names.begin(), names.end(), n) - names.begin();
  };
  // coll + indep reads = total reads from POSIX side.
  const auto p = telemetry::compute_posix_counters(sig);
  const auto& pnames = telemetry::posix_feature_names();
  const auto pidx = [&pnames](const std::string& n) {
    return std::find(pnames.begin(), pnames.end(), n) - pnames.begin();
  };
  EXPECT_DOUBLE_EQ(c[idx("MPIIO_COLL_READS")] + c[idx("MPIIO_INDEP_READS")],
                   p[pidx("POSIX_READS")]);
  EXPECT_DOUBLE_EQ(c[idx("MPIIO_COLL_RATIO")], 0.5);
  EXPECT_DOUBLE_EQ(c[idx("MPIIO_BYTES_READ")], sig.bytes_read);
}

TEST(Counters, OpCountScalesInverselyWithAccessSize) {
  telemetry::IoSignature small = make_signature();
  small.read_size_frac = {};
  small.read_size_frac[1] = 1.0;  // 100-1K accesses
  telemetry::IoSignature large = make_signature();
  large.read_size_frac = {};
  large.read_size_frac[8] = 1.0;  // 100M-1G accesses
  const double ops_small =
      telemetry::estimate_op_count(small.bytes_read, small.read_size_frac);
  const double ops_large =
      telemetry::estimate_op_count(large.bytes_read, large.read_size_frac);
  EXPECT_GT(ops_small, 1000.0 * ops_large);
}

TEST(Lmt, AggregateMinMaxMeanStd) {
  telemetry::LmtTimeline tl;
  tl.set_ost_count(56.0);
  for (int i = 0; i < 10; ++i) {
    telemetry::LmtSample s;
    s.time = i * 5.0;
    s.oss_cpu = 0.1 * i;
    tl.add_sample(s);
  }
  const auto f = tl.aggregate(10.0, 30.0);  // samples at 10,15,20,25,30
  ASSERT_EQ(f.size(), 37u);
  const auto& names = telemetry::lmt_feature_names();
  const auto idx = [&names](const std::string& n) {
    return std::find(names.begin(), names.end(), n) - names.begin();
  };
  EXPECT_NEAR(f[idx("LMT_OSS_CPU_MIN")], 0.2, 1e-12);
  EXPECT_NEAR(f[idx("LMT_OSS_CPU_MAX")], 0.6, 1e-12);
  EXPECT_NEAR(f[idx("LMT_OSS_CPU_MEAN")], 0.4, 1e-12);
  EXPECT_GT(f[idx("LMT_OSS_CPU_STD")], 0.0);
  EXPECT_DOUBLE_EQ(f[idx("LMT_OST_COUNT")], 56.0);
}

TEST(Lmt, ShortWindowFallsBackToNearestSample) {
  telemetry::LmtTimeline tl;
  telemetry::LmtSample a;
  a.time = 0.0;
  a.oss_cpu = 0.1;
  telemetry::LmtSample b;
  b.time = 100.0;
  b.oss_cpu = 0.9;
  tl.add_sample(a);
  tl.add_sample(b);
  const auto f = tl.aggregate(90.0, 95.0);  // between samples, closer to b
  EXPECT_NEAR(f[2], 0.9, 1e-12);            // LMT_OSS_CPU_MEAN
}

TEST(Lmt, RejectsOutOfOrderSamples) {
  telemetry::LmtTimeline tl;
  telemetry::LmtSample a;
  a.time = 10.0;
  tl.add_sample(a);
  telemetry::LmtSample b;
  b.time = 5.0;
  EXPECT_THROW(tl.add_sample(b), std::invalid_argument);
}

TEST(Lmt, AggregateEmptyTimelineThrows) {
  telemetry::LmtTimeline tl;
  EXPECT_THROW(tl.aggregate(0.0, 1.0), std::logic_error);
}

TEST(Cobalt, FeaturesMatchRecord) {
  telemetry::CobaltRecord rec;
  rec.nodes = 128;
  rec.cores = 128 * 64;
  rec.start_time = 1000.0;
  rec.end_time = 1600.0;
  rec.placement_spread = 0.4;
  const auto f = telemetry::cobalt_features(rec);
  ASSERT_EQ(f.size(), 5u);
  EXPECT_DOUBLE_EQ(f[0], 128.0);
  EXPECT_DOUBLE_EQ(f[2], 1000.0);
  EXPECT_DOUBLE_EQ(f[3], 600.0);
}

TEST(Cobalt, RejectsNegativeRuntime) {
  telemetry::CobaltRecord rec;
  rec.start_time = 10.0;
  rec.end_time = 5.0;
  EXPECT_THROW(telemetry::cobalt_features(rec), std::invalid_argument);
}

TEST(Cobalt, StartTimeFeatureIsInCobaltSet) {
  const auto& names = telemetry::cobalt_feature_names();
  EXPECT_NE(std::find(names.begin(), names.end(),
                      telemetry::start_time_feature_name()),
            names.end());
}

telemetry::JobLogRecord make_record() {
  telemetry::JobLogRecord rec;
  rec.job_id = 42;
  rec.app_id = 7;
  rec.config_id = 3;
  rec.n_procs = 64;
  rec.nodes = 16;
  rec.start_time = 86400.0;
  rec.end_time = 86700.5;
  rec.placement_spread = 0.25;
  rec.agg_perf_mib = 1234.5;
  rec.posix = telemetry::compute_posix_counters(make_signature());
  rec.mpiio = telemetry::compute_mpiio_counters(make_signature());
  return rec;
}

TEST(DarshanLog, RoundTripSingleRecord) {
  const auto rec = make_record();
  std::ostringstream out;
  telemetry::write_record(out, rec);
  std::istringstream in(out.str());
  const auto parsed = telemetry::parse_archive(in);
  ASSERT_EQ(parsed.size(), 1u);
  const auto& p = parsed[0];
  EXPECT_EQ(p.job_id, rec.job_id);
  EXPECT_EQ(p.app_id, rec.app_id);
  EXPECT_EQ(p.config_id, rec.config_id);
  EXPECT_EQ(p.n_procs, rec.n_procs);
  EXPECT_EQ(p.nodes, rec.nodes);
  EXPECT_DOUBLE_EQ(p.start_time, rec.start_time);
  EXPECT_DOUBLE_EQ(p.end_time, rec.end_time);
  EXPECT_DOUBLE_EQ(p.agg_perf_mib, rec.agg_perf_mib);
  EXPECT_EQ(p.posix, rec.posix);
  EXPECT_EQ(p.mpiio, rec.mpiio);
}

TEST(DarshanLog, RoundTripManyRecords) {
  std::vector<telemetry::JobLogRecord> recs;
  for (int i = 0; i < 5; ++i) {
    auto r = make_record();
    r.job_id = static_cast<std::uint64_t>(i);
    recs.push_back(r);
  }
  std::ostringstream out;
  for (const auto& r : recs) telemetry::write_record(out, r);
  std::istringstream in(out.str());
  const auto parsed = telemetry::parse_archive(in);
  ASSERT_EQ(parsed.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(parsed[i].job_id, static_cast<std::uint64_t>(i));
  }
}

TEST(DarshanLog, StrictModeThrowsOnCorruptCounter) {
  const auto rec = make_record();
  std::ostringstream out;
  telemetry::write_record(out, rec);
  auto text = out.str();
  const auto pos = text.find("POSIX\t");
  text.replace(pos, 6, "BOGUSMOD\t");
  std::istringstream in(text);
  EXPECT_THROW(telemetry::parse_archive(in, /*strict=*/true),
               std::runtime_error);
}

TEST(DarshanLog, LenientModeSkipsCorruptRecord) {
  auto good = make_record();
  auto bad = make_record();
  bad.job_id = 99;
  std::ostringstream out;
  telemetry::write_record(out, bad);
  telemetry::write_record(out, good);
  auto text = out.str();
  // Corrupt the first record's counter value.
  const auto pos = text.find("POSIX_BYTES_READ\t");
  text.replace(pos + 17, 1, "x");
  std::istringstream in(text);
  telemetry::ParseStats stats;
  const auto parsed = telemetry::parse_archive(in, /*strict=*/false, &stats);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].job_id, 42u);
  EXPECT_EQ(stats.parsed, 1u);
  EXPECT_EQ(stats.skipped, 1u);
}

TEST(DarshanLog, TruncatedFinalRecord) {
  const auto rec = make_record();
  std::ostringstream out;
  telemetry::write_record(out, rec);
  auto text = out.str();
  text.resize(text.size() - 20);  // chop off end_of_record
  {
    std::istringstream in(text);
    EXPECT_THROW(telemetry::parse_archive(in, true), std::runtime_error);
  }
  {
    std::istringstream in(text);
    telemetry::ParseStats stats;
    const auto parsed = telemetry::parse_archive(in, false, &stats);
    EXPECT_TRUE(parsed.empty());
    EXPECT_EQ(stats.skipped, 1u);
  }
}

TEST(DarshanLog, IncompleteHeaderRejected) {
  std::string text =
      "# iotax darshan log version: 1.0\n"
      "# jobid: 1\n"
      "# end_of_record\n";
  std::istringstream in(text);
  EXPECT_THROW(telemetry::parse_archive(in, true), std::runtime_error);
}

TEST(DarshanLog, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "iotax_darshan.log";
  std::vector<telemetry::JobLogRecord> recs = {make_record()};
  telemetry::write_archive(path.string(), recs);
  const auto parsed = telemetry::parse_archive_file(path.string());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].job_id, 42u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace iotax
