// K-means clustering, the per-cluster error breakdown, quantile GBT, and
// feature-level drift detection.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/ml/gbt.hpp"
#include "src/ml/kmeans.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/clusters.hpp"
#include "src/taxonomy/drift.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

// Three well-separated blobs on wildly different scales (log1p handles
// the scale mix, as with real counters).
data::Matrix blobs(std::size_t per_blob, std::uint64_t seed) {
  util::Rng rng(seed);
  data::Matrix x(per_blob * 3, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    const double cx = b == 0 ? 0.0 : (b == 1 ? 1e3 : 1e7);
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t r = b * per_blob + i;
      x(r, 0) = cx * rng.uniform(0.8, 1.2) + rng.normal(0.0, 0.01);
      x(r, 1) = static_cast<double>(b) + rng.normal(0.0, 0.05);
    }
  }
  return x;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  const auto x = blobs(100, 1);
  ml::KMeansParams params;
  params.k = 3;
  ml::KMeans km(params);
  km.fit(x);
  // Each blob must map to a single cluster (purity 1 per blob).
  for (std::size_t b = 0; b < 3; ++b) {
    std::set<std::size_t> labels;
    for (std::size_t i = 0; i < 100; ++i) {
      labels.insert(km.labels()[b * 100 + i]);
    }
    EXPECT_EQ(labels.size(), 1u) << "blob " << b;
  }
  // And the three blobs use three distinct clusters.
  std::set<std::size_t> all(km.labels().begin(), km.labels().end());
  EXPECT_EQ(all.size(), 3u);
}

TEST(KMeans, PredictMatchesTrainingAssignments) {
  const auto x = blobs(60, 2);
  ml::KMeansParams params;
  params.k = 3;
  ml::KMeans km(params);
  km.fit(x);
  const auto again = km.predict(x);
  EXPECT_EQ(again, km.labels());
}

TEST(KMeans, DeterministicAndValidates) {
  const auto x = blobs(50, 3);
  ml::KMeansParams params;
  params.k = 4;
  ml::KMeans a(params);
  ml::KMeans b(params);
  a.fit(x);
  b.fit(x);
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_DOUBLE_EQ(a.inertia(), b.inertia());

  params.k = 1;
  EXPECT_THROW(ml::KMeans{params}, std::invalid_argument);
  ml::KMeans unfit;
  EXPECT_THROW(unfit.predict(x), std::logic_error);
}

TEST(KMeans, MoreClustersLowerInertia) {
  const auto x = blobs(60, 4);
  ml::KMeansParams p2;
  p2.k = 2;
  ml::KMeansParams p6;
  p6.k = 6;
  ml::KMeans a(p2);
  ml::KMeans b(p6);
  a.fit(x);
  b.fit(x);
  EXPECT_LT(b.inertia(), a.inertia());
}

TEST(ClusterBreakdown, AttributesErrorsPerCluster) {
  auto cfg = sim::tiny_system(81);
  cfg.workload.n_jobs = 1500;
  const auto res = sim::simulate(cfg);
  const auto& ds = res.dataset;
  // Synthetic "model": predicts the true fa, so its error is fg+fl+fn.
  std::vector<double> errors(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    errors[i] = ds.meta[i].log_fa - ds.target[i];
  }
  ml::KMeansParams params;
  params.k = 5;
  const auto breakdown = taxonomy::cluster_error_breakdown(
      ds, errors, {taxonomy::FeatureSet::kPosix}, params);
  EXPECT_LE(breakdown.clusters.size(), 5u);
  EXPECT_GE(breakdown.clusters.size(), 2u);
  std::size_t total = 0;
  for (const auto& c : breakdown.clusters) {
    total += c.n_jobs;
    EXPECT_GE(c.n_apps, 1u);
    EXPECT_FALSE(c.defining_feature.empty());
    EXPECT_GE(c.median_abs_error, 0.0);
  }
  EXPECT_EQ(total, ds.size());
  // Sorted by error descending.
  for (std::size_t i = 1; i < breakdown.clusters.size(); ++i) {
    EXPECT_GE(breakdown.clusters[i - 1].median_abs_error,
              breakdown.clusters[i].median_abs_error);
  }
  const auto text = taxonomy::render_cluster_breakdown(breakdown);
  EXPECT_NE(text.find("defining feature"), std::string::npos);
}

TEST(QuantileGbt, EstimatesConditionalQuantiles) {
  // Heteroscedastic data: noise scale depends on x.
  util::Rng rng(5);
  const std::size_t n = 4000;
  data::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    y[i] = x(i, 0) + (0.05 + 0.3 * x(i, 0)) * rng.normal();
  }
  ml::GbtParams lo_p;
  lo_p.loss = ml::GbtLoss::kQuantile;
  lo_p.quantile_alpha = 0.1;
  lo_p.n_estimators = 150;
  lo_p.max_depth = 3;
  lo_p.learning_rate = 0.1;
  ml::GbtParams hi_p = lo_p;
  hi_p.quantile_alpha = 0.9;
  ml::GradientBoostedTrees lo(lo_p);
  ml::GradientBoostedTrees hi(hi_p);
  lo.fit(x, y);
  hi.fit(x, y);
  const auto lo_pred = lo.predict(x);
  const auto hi_pred = hi.predict(x);
  std::size_t covered = 0;
  double width_lo_x = 0.0;
  double width_hi_x = 0.0;
  std::size_t n_lo = 0;
  std::size_t n_hi = 0;
  for (std::size_t i = 0; i < n; ++i) {
    covered += (y[i] >= lo_pred[i] && y[i] <= hi_pred[i]) ? 1 : 0;
    const double width = hi_pred[i] - lo_pred[i];
    EXPECT_GE(width, -0.05);
    if (x(i, 0) < 0.3) {
      width_lo_x += width;
      ++n_lo;
    } else if (x(i, 0) > 0.7) {
      width_hi_x += width;
      ++n_hi;
    }
  }
  const double coverage = static_cast<double>(covered) / n;
  EXPECT_GT(coverage, 0.70);  // nominal 80%
  EXPECT_LT(coverage, 0.92);
  // Intervals widen where the noise is larger.
  EXPECT_GT(width_hi_x / n_hi, 1.5 * width_lo_x / n_lo);
}

TEST(QuantileGbt, RejectsBadAlphaAndSerializes) {
  ml::GbtParams p;
  p.loss = ml::GbtLoss::kQuantile;
  p.quantile_alpha = 1.0;
  EXPECT_THROW(ml::GradientBoostedTrees{p}, std::invalid_argument);

  p.quantile_alpha = 0.75;
  p.n_estimators = 10;
  util::Rng rng(6);
  data::Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    y[i] = x(i, 0) + rng.normal(0.0, 0.1);
  }
  ml::GradientBoostedTrees model(p);
  model.fit(x, y);
  std::stringstream buf;
  model.save(buf);
  const auto loaded = ml::GradientBoostedTrees::load(buf);
  EXPECT_EQ(loaded.params().loss, ml::GbtLoss::kQuantile);
  EXPECT_DOUBLE_EQ(loaded.params().quantile_alpha, 0.75);
  const auto a = model.predict(x);
  const auto b = loaded.predict(x);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(FeatureDrift, RanksShiftedFeatureFirst) {
  data::Table t({"stable", "shifted", "noisy"});
  util::Rng rng(7);
  for (std::size_t i = 0; i < 600; ++i) {
    const bool recent = i >= 300;
    t.add_row(std::vector<double>{
        rng.normal(0.0, 1.0),
        rng.normal(recent ? 3.0 : 0.0, 1.0),  // clear mean shift
        rng.normal(0.0, 5.0)});
  }
  std::vector<std::size_t> ref(300);
  std::vector<std::size_t> rec(300);
  for (std::size_t i = 0; i < 300; ++i) {
    ref[i] = i;
    rec[i] = 300 + i;
  }
  const auto drifts = taxonomy::feature_drift(t, ref, rec, 3);
  ASSERT_EQ(drifts.size(), 3u);
  EXPECT_EQ(drifts[0].feature, "shifted");
  EXPECT_GT(drifts[0].ks, 0.6);
  EXPECT_LT(drifts[1].ks, 0.2);
}

TEST(FeatureDrift, TopKLimitsOutput) {
  data::Table t({"a", "b", "c", "d"});
  util::Rng rng(8);
  for (std::size_t i = 0; i < 100; ++i) {
    t.add_row(std::vector<double>{rng.normal(), rng.normal(), rng.normal(),
                                  rng.normal()});
  }
  std::vector<std::size_t> ref = {0, 1, 2, 3, 4};
  std::vector<std::size_t> rec = {5, 6, 7, 8, 9};
  EXPECT_EQ(taxonomy::feature_drift(t, ref, rec, 2).size(), 2u);
  EXPECT_THROW(taxonomy::feature_drift(t, {}, rec), std::invalid_argument);
}

}  // namespace
}  // namespace iotax
