#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "src/stats/descriptive.hpp"

namespace iotax {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1);
  util::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  util::Rng base(7);
  util::Rng s1 = base.fork(1);
  util::Rng s2 = base.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (s1.next() == s2.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  util::Rng rng(4);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.uniform();
  EXPECT_NEAR(stats::mean(xs), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  util::Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformIntSingleValue) {
  util::Rng rng(6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, NormalMomentsMatch) {
  util::Rng rng(8);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal(2.0, 3.0);
  EXPECT_NEAR(stats::mean(xs), 2.0, 0.06);
  EXPECT_NEAR(stats::stddev(xs), 3.0, 0.06);
}

TEST(Rng, LognormalMedianIsExpMu) {
  util::Rng rng(9);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.lognormal(1.0, 0.5);
  EXPECT_NEAR(stats::median(xs), std::exp(1.0), 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  util::Rng rng(10);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.exponential(0.25);
  EXPECT_NEAR(stats::mean(xs), 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  util::Rng rng(11);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, StudentTHeavierTailsThanNormal) {
  util::Rng rng(12);
  std::vector<double> t(50000);
  std::vector<double> z(50000);
  for (auto& x : t) x = rng.student_t(3.0);
  for (auto& x : z) x = rng.normal();
  const auto count_extreme = [](const std::vector<double>& xs) {
    return std::count_if(xs.begin(), xs.end(),
                         [](double v) { return std::fabs(v) > 4.0; });
  };
  EXPECT_GT(count_extreme(t), 10 * count_extreme(z) + 5);
}

TEST(Rng, GammaMeanIsShapeTimesScale) {
  util::Rng rng(13);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.gamma(2.5, 1.5);
  EXPECT_NEAR(stats::mean(xs), 2.5 * 1.5, 0.05);
}

TEST(Rng, GammaSmallShapeStillPositive) {
  util::Rng rng(14);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.gamma(0.3, 1.0), 0.0);
}

TEST(Rng, PoissonMeanMatches) {
  util::Rng rng(15);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = static_cast<double>(rng.poisson(6.5));
  EXPECT_NEAR(stats::mean(xs), 6.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  util::Rng rng(16);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(stats::mean(xs), 200.0, 1.0);
  EXPECT_NEAR(stats::stddev(xs), std::sqrt(200.0), 0.5);
}

TEST(Rng, ZipfSkewsTowardLowIndices) {
  util::Rng rng(17);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(20, 1.8)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], 20000 / 4);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  util::Rng rng(18);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 350);
}

TEST(Rng, CategoricalRespectsWeights) {
  util::Rng rng(19);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.15);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  util::Rng rng(20);
  const std::vector<double> neg = {1.0, -0.5};
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(neg), std::invalid_argument);
  EXPECT_THROW(rng.categorical(zero), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  util::Rng rng(21);
  const auto idx = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto i : unique) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  util::Rng rng(22);
  auto idx = rng.sample_without_replacement(10, 10);
  std::sort(idx.begin(), idx.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(idx[i], i);
}

TEST(Rng, SampleWithoutReplacementRejectsKGreaterThanN) {
  util::Rng rng(23);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  util::Rng rng(24);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identical
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, BernoulliFrequency) {
  util::Rng rng(25);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace iotax
