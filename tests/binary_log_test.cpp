#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <sstream>

#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/telemetry/binary_log.hpp"
#include "src/telemetry/counters.hpp"

namespace iotax {
namespace {

std::vector<telemetry::JobLogRecord> sample_records(std::size_t n) {
  auto cfg = sim::tiny_system(31);
  cfg.workload.n_jobs = std::max<std::size_t>(n, 100);
  const auto res = sim::simulate(cfg);
  return {res.records.begin(),
          res.records.begin() + static_cast<long>(n)};
}

TEST(Crc32c, KnownVector) {
  // RFC 3720 test vector: CRC32C("123456789") = 0xe3069283.
  const char* s = "123456789";
  EXPECT_EQ(telemetry::crc32c(s, 9), 0xe3069283u);
}

TEST(Crc32c, EmptyInput) {
  EXPECT_EQ(telemetry::crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, SensitiveToEveryByte) {
  std::string a = "hello world";
  const auto base = telemetry::crc32c(a.data(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::string b = a;
    b[i] ^= 1;
    EXPECT_NE(telemetry::crc32c(b.data(), b.size()), base);
  }
}

TEST(BinaryLog, RoundTripExact) {
  const auto records = sample_records(40);
  std::stringstream buf;
  telemetry::write_binary_archive(buf, records);
  const auto parsed = telemetry::read_binary_archive(buf);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].job_id, records[i].job_id);
    EXPECT_EQ(parsed[i].app_id, records[i].app_id);
    EXPECT_EQ(parsed[i].config_id, records[i].config_id);
    EXPECT_EQ(parsed[i].n_procs, records[i].n_procs);
    EXPECT_EQ(parsed[i].nodes, records[i].nodes);
    EXPECT_DOUBLE_EQ(parsed[i].start_time, records[i].start_time);
    EXPECT_DOUBLE_EQ(parsed[i].end_time, records[i].end_time);
    EXPECT_DOUBLE_EQ(parsed[i].agg_perf_mib, records[i].agg_perf_mib);
    EXPECT_EQ(parsed[i].posix, records[i].posix);
    EXPECT_EQ(parsed[i].mpiio, records[i].mpiio);
  }
}

TEST(BinaryLog, MuchSmallerThanText) {
  const auto records = sample_records(100);
  std::stringstream bin;
  telemetry::write_binary_archive(bin, records);
  std::ostringstream text;
  for (const auto& rec : records) telemetry::write_record(text, rec);
  EXPECT_LT(bin.str().size(), text.str().size() / 2);
}

TEST(BinaryLog, BadMagicRejected) {
  std::stringstream buf;
  buf << "NOTALOGX" << std::string(8, '\0');
  EXPECT_THROW(telemetry::read_binary_archive(buf), std::runtime_error);
}

TEST(BinaryLog, WrongVersionRejected) {
  const auto records = sample_records(1);
  std::stringstream buf;
  telemetry::write_binary_archive(buf, records);
  auto data = buf.str();
  data[8] = 99;  // version byte
  std::stringstream corrupted(data);
  EXPECT_THROW(telemetry::read_binary_archive(corrupted),
               std::runtime_error);
}

TEST(BinaryLog, ChecksumDetectsPayloadCorruption) {
  const auto records = sample_records(3);
  std::stringstream buf;
  telemetry::write_binary_archive(buf, records);
  auto data = buf.str();
  data[data.size() / 2] ^= 0x40;  // flip a bit mid-archive
  {
    std::stringstream corrupted(data);
    EXPECT_THROW(telemetry::read_binary_archive(corrupted, /*strict=*/true),
                 std::runtime_error);
  }
  {
    std::stringstream corrupted(data);
    telemetry::ParseStats stats;
    const auto parsed =
        telemetry::read_binary_archive(corrupted, /*strict=*/false, &stats);
    EXPECT_EQ(stats.parsed + stats.skipped, 3u);
    EXPECT_GE(stats.skipped, 1u);
    // Framing survives: remaining records still parse.
    EXPECT_EQ(parsed.size(), stats.parsed);
  }
}

TEST(BinaryLog, TruncationHandled) {
  const auto records = sample_records(5);
  std::stringstream buf;
  telemetry::write_binary_archive(buf, records);
  auto data = buf.str();
  data.resize(data.size() - 30);
  {
    std::stringstream truncated(data);
    EXPECT_THROW(telemetry::read_binary_archive(truncated, true),
                 std::runtime_error);
  }
  {
    std::stringstream truncated(data);
    telemetry::ParseStats stats;
    const auto parsed =
        telemetry::read_binary_archive(truncated, false, &stats);
    EXPECT_EQ(parsed.size(), 4u);
    EXPECT_EQ(stats.skipped, 1u);
  }
}

TEST(BinaryLog, EmptyArchive) {
  std::stringstream buf;
  telemetry::write_binary_archive(buf, {});
  const auto parsed = telemetry::read_binary_archive(buf);
  EXPECT_TRUE(parsed.empty());
}

TEST(BinaryLog, FileRoundTrip) {
  const auto records = sample_records(10);
  const auto path =
      (std::filesystem::temp_directory_path() / "iotax_bin.log").string();
  telemetry::write_binary_archive_file(path, records);
  const auto parsed = telemetry::read_binary_archive_file(path);
  EXPECT_EQ(parsed.size(), 10u);
  std::filesystem::remove(path);
}

TEST(BinaryLog, RejectsMalformedCounterSizes) {
  auto records = sample_records(1);
  records[0].posix.pop_back();
  std::stringstream buf;
  EXPECT_THROW(telemetry::write_binary_archive(buf, records),
               std::invalid_argument);
}

}  // namespace
}  // namespace iotax
