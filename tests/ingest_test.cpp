// Corruption-tolerant ingest: truncation safety of both archive readers
// at every byte boundary, non-throwing outcome parsing, the three ingest
// modes of build_dataset_ingest, and Dataset::validate_all.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "src/data/dataset.hpp"
#include "src/sim/dataset_builder.hpp"
#include "src/telemetry/binary_log.hpp"
#include "src/telemetry/counters.hpp"
#include "src/telemetry/darshan_log.hpp"

namespace iotax {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

telemetry::JobLogRecord make_record(std::uint64_t job_id) {
  telemetry::JobLogRecord rec;
  rec.job_id = job_id;
  rec.app_id = 7;
  rec.config_id = 3;
  rec.n_procs = 64;
  rec.nodes = 16;
  rec.start_time = 1000.0 * static_cast<double>(job_id);
  rec.end_time = rec.start_time + 300.5;
  rec.placement_spread = 0.25;
  rec.agg_perf_mib = 1234.5 + static_cast<double>(job_id);
  rec.posix.assign(telemetry::posix_feature_names().size(), 0.0);
  rec.posix[0] = 64.0;
  rec.posix[3] = 4096.0 + static_cast<double>(job_id);
  rec.mpiio.assign(telemetry::mpiio_feature_names().size(), 0.0);
  rec.mpiio[1] = 128.0;
  return rec;
}

std::vector<telemetry::JobLogRecord> three_records() {
  return {make_record(1), make_record(2), make_record(3)};
}

TEST(TruncationSafety, BinaryReaderSurvivesEveryCut) {
  const auto records = three_records();
  std::ostringstream buf(std::ios::binary);
  telemetry::write_binary_archive(buf, records);
  const std::string bytes = buf.str();
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::istringstream in(bytes.substr(0, cut));
    telemetry::ParseOutcome outcome;
    ASSERT_NO_THROW(outcome = telemetry::read_binary_archive_outcome(in))
        << "cut at byte " << cut;
    ASSERT_LE(outcome.records.size(), records.size()) << "cut " << cut;
    if (outcome.ok) {
      // The header's record count makes every lost record detectable:
      // parsed + quarantined always adds back up to the promised count.
      EXPECT_EQ(outcome.records.size() + outcome.quarantine.total(),
                records.size())
          << "cut at byte " << cut;
    }
    for (const auto& rec : outcome.records) {
      EXPECT_EQ(rec.posix.size(), telemetry::posix_feature_names().size());
    }
  }
  std::istringstream whole(bytes);
  const auto outcome = telemetry::read_binary_archive_outcome(whole);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.records.size(), records.size());
  EXPECT_TRUE(outcome.quarantine.empty());
}

TEST(TruncationSafety, TextParserSurvivesEveryCut) {
  const auto records = three_records();
  std::ostringstream buf;
  for (const auto& rec : records) telemetry::write_record(buf, rec);
  const std::string bytes = buf.str();
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::istringstream in(bytes.substr(0, cut));
    telemetry::ParseOutcome outcome;
    ASSERT_NO_THROW(outcome = telemetry::parse_archive_outcome(in))
        << "cut at byte " << cut;
    EXPECT_TRUE(outcome.ok) << "cut at byte " << cut;
    ASSERT_LE(outcome.records.size(), records.size()) << "cut " << cut;
    // A cut leaves at most one partial record behind.
    EXPECT_LE(outcome.quarantine.count(util::Reason::kTruncated), 1u)
        << "cut at byte " << cut;
    for (const auto& rec : outcome.records) {
      EXPECT_EQ(rec.posix.size(), telemetry::posix_feature_names().size());
    }
  }
  std::istringstream whole(bytes);
  const auto outcome = telemetry::parse_archive_outcome(whole);
  EXPECT_EQ(outcome.records.size(), records.size());
  EXPECT_TRUE(outcome.quarantine.empty());
}

TEST(TruncationSafety, BadMagicIsAnOutcomeNotACrash) {
  const std::string junk = "NOTALOG!plus some trailing garbage";
  std::istringstream in(junk);
  const auto outcome = telemetry::read_binary_archive_outcome(in);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.quarantine.count(util::Reason::kBadMagic), 1u);
  // The legacy API keeps its contract: container-level corruption throws
  // even in lenient mode.
  std::istringstream again(junk);
  EXPECT_THROW(telemetry::read_binary_archive(again, /*strict=*/false),
               std::runtime_error);
}

TEST(Ingest, StrictThrowsTypedErrorWithReason) {
  auto records = three_records();
  records[1].agg_perf_mib = kNan;
  try {
    sim::build_dataset_ingest(records, nullptr, "t", nullptr,
                              sim::IngestMode::kStrict);
    FAIL() << "expected IngestError";
  } catch (const sim::IngestError& e) {
    EXPECT_EQ(e.reason(), util::Reason::kBadThroughput);
    EXPECT_NE(std::string(e.what()).find("bad-throughput"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("record 1"), std::string::npos);
  }
  // IngestError stays catchable as the legacy std::invalid_argument.
  EXPECT_THROW(sim::build_dataset(records, nullptr, "t"),
               std::invalid_argument);
}

std::vector<telemetry::JobLogRecord> defective_records() {
  std::vector<telemetry::JobLogRecord> records;
  records.push_back(make_record(1));                 // 0: good
  records.push_back(make_record(2));                 // 1: NaN throughput
  records.back().agg_perf_mib = kNan;
  records.push_back(make_record(3));                 // 2: inverted times
  std::swap(records.back().start_time, records.back().end_time);
  records.push_back(make_record(1));                 // 3: duplicate job id
  records.push_back(make_record(4));                 // 4: NaN counter
  records.back().posix[5] = kNan;
  records.push_back(make_record(5));                 // 5: negative counter
  records.back().mpiio[2] = -4.0;
  records.push_back(make_record(6));                 // 6: good
  return records;
}

TEST(Ingest, LenientQuarantinesEveryDefectAndKeepsTheRest) {
  const auto records = defective_records();
  const auto out = sim::build_dataset_ingest(records, nullptr, "t", nullptr,
                                             sim::IngestMode::kLenient);
  EXPECT_EQ(out.dataset.size(), 2u);
  EXPECT_EQ(out.kept_records, (std::vector<std::size_t>{0, 6}));
  EXPECT_EQ(out.quarantine.total(), 5u);
  EXPECT_EQ(out.quarantine.count(util::Reason::kBadThroughput), 1u);
  EXPECT_EQ(out.quarantine.count(util::Reason::kTimeInverted), 1u);
  EXPECT_EQ(out.quarantine.count(util::Reason::kDuplicateJobId), 1u);
  EXPECT_EQ(out.quarantine.count(util::Reason::kNonFiniteValue), 1u);
  EXPECT_EQ(out.quarantine.count(util::Reason::kNegativeCounter), 1u);
  EXPECT_EQ(out.quarantine.repaired_total(), 0u);
  EXPECT_NO_THROW(out.dataset.validate());
}

TEST(Ingest, RepairFixesWhatItCanQuarantinesTheRest) {
  const auto records = defective_records();
  const auto out = sim::build_dataset_ingest(records, nullptr, "t", nullptr,
                                             sim::IngestMode::kRepair);
  // Inverted times, the NaN counter and the negative counter are fixed
  // in place; bad throughput and the duplicate id are not fixable.
  EXPECT_EQ(out.dataset.size(), 5u);
  EXPECT_EQ(out.kept_records, (std::vector<std::size_t>{0, 2, 4, 5, 6}));
  EXPECT_EQ(out.quarantine.total(), 2u);
  EXPECT_EQ(out.quarantine.count(util::Reason::kBadThroughput), 1u);
  EXPECT_EQ(out.quarantine.count(util::Reason::kDuplicateJobId), 1u);
  EXPECT_EQ(out.quarantine.repaired_total(), 3u);
  EXPECT_EQ(out.quarantine.repaired(util::Reason::kTimeInverted), 1u);
  EXPECT_EQ(out.quarantine.repaired(util::Reason::kNonFiniteValue), 1u);
  EXPECT_EQ(out.quarantine.repaired(util::Reason::kNegativeCounter), 1u);
  EXPECT_NO_THROW(out.dataset.validate());
  // The repaired record's timestamps come out the right way around, and
  // the caller's input records stay untouched.
  const auto& repaired_meta = out.dataset.meta[1];
  EXPECT_LT(repaired_meta.start_time, repaired_meta.end_time);
  EXPECT_GT(records[2].start_time, records[2].end_time);
  EXPECT_TRUE(std::isnan(records[4].posix[5]));
}

TEST(Ingest, TruthViolationsAreQuarantined) {
  const auto records = three_records();
  sim::TruthMap truth;
  for (const auto& rec : records) {
    sim::JobTruth t;
    t.log_fa = std::log10(rec.agg_perf_mib);
    truth[rec.job_id] = t;
  }
  truth.erase(records[1].job_id);                   // 1: missing truth
  truth[records[2].job_id].log_fa += 0.5;           // 2: truth mismatch
  const auto out = sim::build_dataset_ingest(records, nullptr, "t", &truth,
                                             sim::IngestMode::kLenient);
  EXPECT_EQ(out.dataset.size(), 1u);
  EXPECT_EQ(out.quarantine.count(util::Reason::kMissingTruth), 1u);
  EXPECT_EQ(out.quarantine.count(util::Reason::kTruthMismatch), 1u);
  try {
    sim::build_dataset_ingest(records, nullptr, "t", &truth,
                              sim::IngestMode::kStrict);
    FAIL() << "expected IngestError";
  } catch (const sim::IngestError& e) {
    EXPECT_EQ(e.reason(), util::Reason::kMissingTruth);
  }
}

TEST(Ingest, CleanRecordsIngestIdenticallyInEveryMode) {
  const auto records = three_records();
  const auto strict = sim::build_dataset_ingest(
      records, nullptr, "t", nullptr, sim::IngestMode::kStrict);
  for (const auto mode :
       {sim::IngestMode::kLenient, sim::IngestMode::kRepair}) {
    const auto out =
        sim::build_dataset_ingest(records, nullptr, "t", nullptr, mode);
    EXPECT_TRUE(out.quarantine.empty());
    ASSERT_EQ(out.dataset.size(), strict.dataset.size());
    for (std::size_t i = 0; i < out.dataset.size(); ++i) {
      EXPECT_DOUBLE_EQ(out.dataset.target[i], strict.dataset.target[i]);
    }
  }
}

TEST(ValidateAll, CleanDatasetReportsNothing) {
  const auto ds = sim::build_dataset(three_records(), nullptr, "t");
  EXPECT_TRUE(ds.validate_all().empty());
}

TEST(ValidateAll, CollectsEveryViolationInsteadOfTheFirst) {
  auto ds = sim::build_dataset(three_records(), nullptr, "t");
  ds.features.mutable_col(0)[1] = kNan;
  ds.meta[0].end_time = ds.meta[0].start_time - 10.0;
  ds.meta[2].log_fn += 0.25;  // decomposition no longer matches target
  const auto report = ds.validate_all();
  EXPECT_EQ(report.total(), 3u);
  EXPECT_EQ(report.count(util::Reason::kNonFiniteValue), 1u);
  EXPECT_EQ(report.count(util::Reason::kTimeInverted), 1u);
  EXPECT_EQ(report.count(util::Reason::kTruthMismatch), 1u);
  EXPECT_THROW(ds.validate(), std::logic_error);
}

TEST(ValidateAll, CatchesNaNTargetThatValidateMisses) {
  auto ds = sim::build_dataset(three_records(), nullptr, "t");
  ds.target[1] = kNan;
  // validate()'s |recomposed - target| > eps comparison is false for NaN,
  // so the legacy check passes; validate_all is NaN-aware.
  EXPECT_NO_THROW(ds.validate());
  const auto report = ds.validate_all();
  EXPECT_EQ(report.count(util::Reason::kNonFiniteValue), 1u);
}

}  // namespace
}  // namespace iotax
