// Successive-halving search: budget accounting and selection behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/search.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

Xy make_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(n, 3);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    d.x(i, 0) = a;
    d.x(i, 1) = b;
    d.x(i, 2) = rng.normal();
    d.y[i] = std::sin(a) + 0.5 * a * b + rng.normal(0.0, 0.05);
  }
  return d;
}

TEST(SuccessiveHalving, EliminatesAndSelects) {
  const auto train = make_data(3000, 1);
  const auto val = make_data(600, 2);
  ml::GbtGrid grid;
  grid.n_estimators = {4, 16, 64};
  grid.max_depth = {2, 4, 6};
  ml::HalvingParams params;
  params.initial_configs = 9;
  params.elim_factor = 3;
  params.initial_budget_frac = 0.1;
  const auto res = ml::successive_halving(grid, params, train.x, train.y,
                                          val.x, val.y);
  // Rung sizes: 9 at 10%, 3 at 30%, 1 at 90%... -> 9+3+1 evaluations.
  EXPECT_EQ(res.evaluated.size(), 13u);
  EXPECT_LT(res.best.val_error, 0.5);
  // The winner must come from the final rung (full-ish budget).
  EXPECT_LE(res.best.val_error,
            res.evaluated.back().val_error + 1e-12);
}

TEST(SuccessiveHalving, CheaperThanGridForSimilarQuality) {
  const auto train = make_data(3000, 3);
  const auto val = make_data(600, 4);
  ml::GbtGrid grid;
  grid.n_estimators = {4, 16, 64};
  grid.max_depth = {2, 4, 6};

  const auto full = ml::grid_search(grid, train.x, train.y, val.x, val.y);
  ml::HalvingParams params;
  params.initial_configs = 12;  // random sampling needs slack to cover 9 cells
  const auto halved = ml::successive_halving(grid, params, train.x, train.y,
                                             val.x, val.y);
  // Near the exhaustive search's quality at a fraction of the trained
  // row-budget (12 cheap + few full fits vs 9 full fits).
  EXPECT_LE(halved.best.val_error, full.best.val_error * 1.4);
}

TEST(SuccessiveHalving, CallbackSeesEveryEvaluation) {
  const auto train = make_data(500, 5);
  const auto val = make_data(200, 6);
  ml::GbtGrid grid;
  grid.n_estimators = {4, 8};
  grid.max_depth = {2, 3};
  ml::HalvingParams params;
  params.initial_configs = 4;
  params.elim_factor = 2;
  params.initial_budget_frac = 0.25;
  std::size_t calls = 0;
  const auto res = ml::successive_halving(
      grid, params, train.x, train.y, val.x, val.y,
      [&calls](const ml::SearchPoint&) { ++calls; });
  EXPECT_EQ(calls, res.evaluated.size());
  EXPECT_GE(calls, 4u);
}

TEST(SuccessiveHalving, RejectsBadParams) {
  const auto train = make_data(100, 7);
  ml::GbtGrid grid;
  ml::HalvingParams params;
  params.initial_configs = 1;
  EXPECT_THROW(ml::successive_halving(grid, params, train.x, train.y,
                                      train.x, train.y),
               std::invalid_argument);
  params = ml::HalvingParams{};
  params.initial_budget_frac = 0.0;
  EXPECT_THROW(ml::successive_halving(grid, params, train.x, train.y,
                                      train.x, train.y),
               std::invalid_argument);
}

TEST(SuccessiveHalving, Deterministic) {
  const auto train = make_data(800, 8);
  const auto val = make_data(200, 9);
  ml::GbtGrid grid;
  grid.n_estimators = {4, 16};
  grid.max_depth = {2, 4};
  ml::HalvingParams params;
  params.initial_configs = 4;
  const auto a = ml::successive_halving(grid, params, train.x, train.y,
                                        val.x, val.y);
  const auto b = ml::successive_halving(grid, params, train.x, train.y,
                                        val.x, val.y);
  ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
  for (std::size_t i = 0; i < a.evaluated.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.evaluated[i].val_error, b.evaluated[i].val_error);
  }
}

}  // namespace
}  // namespace iotax
