// The burst dataset builder and the cross-cluster transfer litmus:
// labels recomputed independently from the telemetry, the feature-set
// plumbing for kBurst, shared-catalog pairing, the new platform
// presets, and the litmus report's invariants on a real (tiny) pair.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "src/sim/burst.hpp"
#include "src/sim/platform.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/feature_sets.hpp"
#include "src/taxonomy/transfer.hpp"
#include "src/telemetry/lmt.hpp"

namespace iotax {
namespace {

sim::SimulationResult tiny_sim(std::uint64_t seed) {
  auto cfg = sim::tiny_system(seed);
  cfg.platform.lmt_enabled = true;
  return sim::simulate(cfg);
}

TEST(BurstDataset, LabelsMatchIndependentRecompute) {
  const auto res = tiny_sim(7);
  sim::BurstParams bp;
  const auto burst = sim::build_burst_dataset(res, bp);
  const auto& ds = burst.dataset;
  ASSERT_GT(ds.size(), 10u);
  EXPECT_EQ(ds.size(), burst.n_windows);
  EXPECT_EQ(ds.system_name, res.config.name + "-burst");
  EXPECT_DOUBLE_EQ(
      burst.threshold_mib,
      bp.threshold_frac * res.config.platform.peak_bandwidth_mib);

  // Row i covers window i+1; its label is the next window's mean total
  // OST rate against the threshold. Recompute from the telemetry.
  std::size_t positives = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const std::size_t w = ds.meta[i].job_id;
    EXPECT_DOUBLE_EQ(ds.meta[i].start_time,
                     static_cast<double>(w) * bp.window_seconds);
    const double t0 = static_cast<double>(w + 1) * bp.window_seconds;
    const auto agg = res.lmt.aggregate(t0, t0 + bp.window_seconds);
    const double next_rate = agg[2 * 4 + 2] + agg[3 * 4 + 2];  // read+write
    const double expect = next_rate > burst.threshold_mib ? 1.0 : 0.0;
    EXPECT_EQ(ds.target[i], expect) << "window " << w;
    EXPECT_EQ(ds.meta[i].log_fa, expect);  // decomposition identity
    if (expect == 1.0) ++positives;
  }
  EXPECT_EQ(burst.n_bursts, positives);
  // Both classes must be present at the default threshold, or the
  // workload trains nothing.
  EXPECT_GT(burst.n_bursts, 0u);
  EXPECT_LT(burst.n_bursts, burst.n_windows);
}

TEST(BurstDataset, FeatureSetSelectsTheBurstColumns) {
  const auto res = tiny_sim(3);
  const auto burst = sim::build_burst_dataset(res);
  const auto cols = taxonomy::feature_columns(
      burst.dataset, {taxonomy::FeatureSet::kBurst});
  EXPECT_EQ(cols, telemetry::burst_feature_names());
  EXPECT_EQ(cols.size(), 48u);
  // A darshan-shaped dataset lacks the burst columns and vice versa.
  EXPECT_THROW(taxonomy::feature_columns(burst.dataset,
                                         {taxonomy::FeatureSet::kPosix}),
               std::invalid_argument);
  EXPECT_THROW(taxonomy::feature_columns(res.dataset,
                                         {taxonomy::FeatureSet::kBurst}),
               std::invalid_argument);
}

TEST(BurstDataset, RequiresTelemetryAndEnoughWindows) {
  auto cfg = sim::tiny_system(5);
  cfg.platform.lmt_enabled = false;
  const auto no_lmt = sim::simulate(cfg);
  EXPECT_THROW(sim::build_burst_dataset(no_lmt), std::invalid_argument);

  const auto res = tiny_sim(5);
  sim::BurstParams wide;
  wide.window_seconds = res.config.workload.horizon;  // one window only
  EXPECT_THROW(sim::build_burst_dataset(res, wide), std::invalid_argument);
  sim::BurstParams bad;
  bad.threshold_frac = 1.5;
  EXPECT_THROW(sim::build_burst_dataset(res, bad), std::invalid_argument);
}

TEST(Platforms, NewPresetsValidateAndDiffer) {
  const auto bb = sim::bb_platform();
  const auto flash = sim::flash_platform();
  EXPECT_NO_THROW(bb.validate());
  EXPECT_NO_THROW(flash.validate());
  EXPECT_EQ(bb.name, "bb");
  EXPECT_EQ(flash.name, "flash");
  EXPECT_TRUE(bb.lmt_enabled);
  EXPECT_TRUE(flash.lmt_enabled);
  EXPECT_NE(bb.peak_bandwidth_mib, flash.peak_bandwidth_mib);
  EXPECT_NO_THROW(sim::bb_like(13).validate());
  EXPECT_NO_THROW(sim::flash_like(19).validate());
}

TEST(TransferPair, SharesOneApplicationCatalog) {
  const auto [a_cfg, b_cfg] =
      sim::make_transfer_pair(sim::theta_like(5), sim::tiny_system(5), 5);
  EXPECT_NE(a_cfg.catalog_seed, 0u);
  EXPECT_EQ(a_cfg.catalog_seed, b_cfg.catalog_seed);
  EXPECT_EQ(a_cfg.catalog_platform.name, b_cfg.catalog_platform.name);
  EXPECT_DOUBLE_EQ(a_cfg.workload.horizon, b_cfg.workload.horizon);
  EXPECT_NE(a_cfg.seed, b_cfg.seed);  // weather/noise streams differ

  const auto a = sim::simulate(a_cfg);
  const auto b = sim::simulate(b_cfg);
  std::unordered_set<std::uint64_t> a_apps, b_apps;
  for (const auto& m : a.dataset.meta) a_apps.insert(m.app_id);
  for (const auto& m : b.dataset.meta) b_apps.insert(m.app_id);
  std::size_t shared = 0;
  for (const auto id : b_apps) shared += a_apps.count(id);
  // The whole point of the pairing: app ids are comparable across the
  // two clusters, so most of B's population exists on A too.
  EXPECT_GT(static_cast<double>(shared),
            0.5 * static_cast<double>(b_apps.size()));
}

TEST(TransferLitmus, ReportInvariantsOnATinyPair) {
  // tiny -> flash is a strongly contrasted pair (disk-era platform to
  // all-flash), so the application share dominates with a wide margin.
  const auto [a_cfg, b_cfg] =
      sim::make_transfer_pair(sim::tiny_system(9), sim::flash_like(9), 9);
  const auto a = sim::simulate(a_cfg);
  const auto b = sim::simulate(b_cfg);
  taxonomy::TransferParams tp;
  tp.gbt.n_estimators = 40;
  tp.gbt.max_depth = 4;
  const auto r = taxonomy::run_transfer_litmus(a.dataset, b.dataset, tp);

  EXPECT_EQ(r.train_system, a.dataset.system_name);
  EXPECT_EQ(r.test_system, b.dataset.system_name);
  EXPECT_EQ(r.n_train + r.n_holdout, a.dataset.size());
  EXPECT_EQ(r.n_test, b.dataset.size());
  EXPECT_GT(r.in_cluster_error, 0.0);
  EXPECT_GT(r.transfer_error, 0.0);
  // Cross-platform transfer must cost accuracy, and the oracle must
  // blame the application term (the foreign platform response lives in
  // f_a) while keeping shares a proper decomposition.
  EXPECT_GT(r.gap, 0.0);
  EXPECT_GT(r.oracle.application, 0.5);
  EXPECT_NEAR(r.oracle.application + r.oracle.system + r.oracle.contention +
                  r.oracle.noise,
              1.0, 1e-9);
  EXPECT_GE(r.ood_fraction_truth, 0.0);
  EXPECT_LE(r.ood_fraction_truth, 1.0);
  EXPECT_GE(r.ood_auc, 0.5);
  EXPECT_FALSE(r.top_drift.empty());
  EXPECT_FALSE(taxonomy::render_transfer_report(r).empty());
}

TEST(TransferLitmus, RejectsTinyInputsAndBadParams) {
  const auto res = tiny_sim(2);
  taxonomy::TransferParams bad;
  bad.holdout_frac = 1.5;
  EXPECT_THROW(
      taxonomy::run_transfer_litmus(res.dataset, res.dataset, bad),
      std::invalid_argument);
  data::Dataset empty;
  EXPECT_THROW(taxonomy::run_transfer_litmus(empty, res.dataset, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace iotax
