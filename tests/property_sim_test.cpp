// Property-based suites for the simulator and telemetry layers: the
// structural invariants every generated dataset must satisfy, across
// seeds and configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/descriptive.hpp"
#include "src/telemetry/counters.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

// --------------------------------------------- dataset invariants / seed

class SimSeedProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static sim::SimulationResult run(std::uint64_t seed) {
    auto cfg = sim::tiny_system(seed);
    cfg.workload.n_jobs = 1200;
    return sim::simulate(cfg);
  }
};

TEST_P(SimSeedProperty, DatasetValidates) {
  const auto res = run(GetParam());
  EXPECT_NO_THROW(res.dataset.validate());
  EXPECT_EQ(res.dataset.size(), res.records.size());
}

TEST_P(SimSeedProperty, ThroughputDecompositionExact) {
  const auto res = run(GetParam());
  for (std::size_t i = 0; i < res.dataset.size(); i += 13) {
    const auto& m = res.dataset.meta[i];
    EXPECT_NEAR(m.log_fa + m.log_fg + m.log_fl + m.log_fn,
                res.dataset.target[i], 1e-9);
  }
}

TEST_P(SimSeedProperty, ContentionNeverHelps) {
  const auto res = run(GetParam());
  for (const auto& m : res.dataset.meta) {
    EXPECT_LE(m.log_fl, 1e-12);
  }
}

TEST_P(SimSeedProperty, JobsAreTimeOrderedAndWithinHorizon) {
  const auto res = run(GetParam());
  double prev = 0.0;
  for (const auto& m : res.dataset.meta) {
    EXPECT_GE(m.start_time, prev);
    EXPECT_LE(m.start_time, res.config.workload.horizon + 1.0);
    EXPECT_GT(m.end_time, m.start_time);
    prev = m.start_time;
  }
}

TEST_P(SimSeedProperty, DuplicateRowsShareApplicationFeatures) {
  const auto res = run(GetParam());
  const auto& ds = res.dataset;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> first_row;
  const std::size_t app_cols = 48 + 48;  // POSIX + MPI-IO block
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto key = std::pair{ds.meta[i].app_id, ds.meta[i].config_id};
    const auto [it, inserted] = first_row.try_emplace(key, i);
    if (inserted) continue;
    for (std::size_t c = 0; c < app_cols; ++c) {
      ASSERT_DOUBLE_EQ(ds.features.at(i, c), ds.features.at(it->second, c));
    }
  }
}

TEST_P(SimSeedProperty, NoiseComponentIsCentered) {
  const auto res = run(GetParam());
  std::vector<double> fn;
  for (const auto& m : res.dataset.meta) fn.push_back(m.log_fn);
  // Mean noise ~ 0 with spread on the order of the platform sigma.
  EXPECT_NEAR(stats::mean(fn), 0.0, 0.005);
  EXPECT_GT(stats::stddev(fn), res.config.platform.noise_sigma_log10 * 0.5);
  EXPECT_LT(stats::stddev(fn), res.config.platform.noise_sigma_log10 * 3.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimSeedProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ------------------------------------------------ counters from signature

class CounterProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static telemetry::IoSignature random_valid_signature(std::uint64_t seed) {
    // Sample through the catalog generator to stay in the valid region.
    util::Rng rng(seed);
    sim::CatalogParams params;
    params.n_apps = 3;
    const auto catalog =
        sim::generate_catalog(params, sim::theta_platform(), rng);
    return catalog[1 + seed % 2].configs[0].signature;
  }
};

TEST_P(CounterProperty, AllCountersNonNegative) {
  const auto sig = random_valid_signature(GetParam());
  for (const double v : telemetry::compute_posix_counters(sig)) {
    EXPECT_GE(v, 0.0);
  }
  for (const double v : telemetry::compute_mpiio_counters(sig)) {
    EXPECT_GE(v, 0.0);
  }
}

TEST_P(CounterProperty, StructuralInequalities) {
  const auto sig = random_valid_signature(GetParam());
  const auto c = telemetry::compute_posix_counters(sig);
  const auto& names = telemetry::posix_feature_names();
  const auto get = [&](const char* n) {
    return c[static_cast<std::size_t>(
        std::find(names.begin(), names.end(), n) - names.begin())];
  };
  EXPECT_LE(get("POSIX_CONSEC_READS"), get("POSIX_SEQ_READS"));
  EXPECT_LE(get("POSIX_SEQ_READS"), get("POSIX_READS"));
  EXPECT_LE(get("POSIX_CONSEC_WRITES"), get("POSIX_SEQ_WRITES"));
  EXPECT_LE(get("POSIX_SEQ_WRITES"), get("POSIX_WRITES"));
  EXPECT_LE(get("POSIX_SHARED_FILES"), get("POSIX_TOTAL_FILES"));
  EXPECT_LE(get("POSIX_READ_ONLY_FILES") + get("POSIX_WRITE_ONLY_FILES") +
                get("POSIX_READ_WRITE_FILES"),
            get("POSIX_TOTAL_FILES") + 1.0);
  EXPECT_DOUBLE_EQ(get("POSIX_BYTES_READ"), sig.bytes_read);
  EXPECT_DOUBLE_EQ(get("POSIX_BYTES_WRITTEN"), sig.bytes_written);
}

TEST_P(CounterProperty, SizeBucketCountsRoughlyCoverVolume) {
  const auto sig = random_valid_signature(GetParam());
  const auto c = telemetry::compute_posix_counters(sig);
  const auto& names = telemetry::posix_feature_names();
  double reconstructed = 0.0;
  for (std::size_t b = 0; b < telemetry::kSizeBuckets; ++b) {
    const auto idx = static_cast<std::size_t>(
        std::find(names.begin(), names.end(),
                  "POSIX_SIZE_READ_" +
                      std::vector<std::string>{"0_100", "100_1K", "1K_10K",
                                               "10K_100K", "100K_1M",
                                               "1M_4M", "4M_10M", "10M_100M",
                                               "100M_1G", "1G_PLUS"}[b]) -
        names.begin());
    reconstructed += c[idx] * telemetry::bucket_representative_size(b);
  }
  if (sig.bytes_read > 1e6) {
    // Counts are floored per bucket, so reconstruction under-counts a bit.
    EXPECT_GT(reconstructed, 0.5 * sig.bytes_read);
    EXPECT_LT(reconstructed, 1.5 * sig.bytes_read);
  }
}

TEST_P(CounterProperty, MpiioSubsetOfPosixTraffic) {
  auto sig = random_valid_signature(GetParam());
  sig.uses_mpiio = true;
  sig.coll_frac = 0.4;
  const auto p = telemetry::compute_posix_counters(sig);
  const auto m = telemetry::compute_mpiio_counters(sig);
  const auto& pn = telemetry::posix_feature_names();
  const auto& mn = telemetry::mpiio_feature_names();
  const auto get = [](const std::vector<double>& v,
                      const std::vector<std::string>& names, const char* n) {
    return v[static_cast<std::size_t>(
        std::find(names.begin(), names.end(), n) - names.begin())];
  };
  // All MPI-IO traffic is visible at the POSIX level (§V).
  EXPECT_DOUBLE_EQ(get(m, mn, "MPIIO_BYTES_READ"),
                   get(p, pn, "POSIX_BYTES_READ"));
  EXPECT_DOUBLE_EQ(get(m, mn, "MPIIO_COLL_READS") +
                       get(m, mn, "MPIIO_INDEP_READS"),
                   get(p, pn, "POSIX_READS"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterProperty,
                         ::testing::Range<std::uint64_t>(100u, 112u));

// --------------------------------------------------------- ideal model

class IdealThroughputProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IdealThroughputProperty, WithinPhysicalBounds) {
  util::Rng rng(GetParam());
  sim::CatalogParams params;
  params.n_apps = 10;
  const auto platform = sim::theta_platform();
  const auto catalog = sim::generate_catalog(params, platform, rng);
  for (const auto& app : catalog) {
    for (const auto& cfg : app.configs) {
      const double log_t = sim::ideal_log_throughput(cfg.signature, platform);
      EXPECT_GE(log_t, 0.0);  // >= 1 MiB/s
      EXPECT_LE(std::pow(10.0, log_t), 0.5 * platform.peak_bandwidth_mib);
    }
  }
}

TEST_P(IdealThroughputProperty, MonotoneInVolumeNeutralKnobs) {
  util::Rng rng(GetParam() + 40);
  sim::CatalogParams params;
  params.n_apps = 5;
  const auto platform = sim::theta_platform();
  const auto catalog = sim::generate_catalog(params, platform, rng);
  const auto& sig = catalog[2].configs[0].signature;
  // Worsening alignment can only reduce throughput.
  auto worse = sig;
  worse.file_unaligned_frac = std::min(1.0, sig.file_unaligned_frac + 0.3);
  EXPECT_LE(sim::ideal_log_throughput(worse, platform),
            sim::ideal_log_throughput(sig, platform) + 1e-12);
  // Adding read/write switches can only reduce throughput.
  auto switched = sig;
  switched.rw_switch_frac = std::min(1.0, sig.rw_switch_frac + 0.3);
  EXPECT_LE(sim::ideal_log_throughput(switched, platform),
            sim::ideal_log_throughput(sig, platform) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdealThroughputProperty,
                         ::testing::Values(11u, 12u, 13u, 14u));

}  // namespace
}  // namespace iotax
