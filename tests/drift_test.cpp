#include <gtest/gtest.h>

#include <cmath>

#include "src/data/split.hpp"
#include "src/ml/gbt.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/fitting.hpp"
#include "src/taxonomy/drift.hpp"
#include "src/taxonomy/feature_sets.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

TEST(TwoSampleKs, ZeroForIdenticalSamples) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(stats::two_sample_ks(a, a), 0.0, 1e-12);
}

TEST(TwoSampleKs, OneForDisjointSamples) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 11.0};
  EXPECT_NEAR(stats::two_sample_ks(a, b), 1.0, 1e-12);
}

TEST(TwoSampleKs, DetectsShift) {
  util::Rng rng(1);
  std::vector<double> a(2000);
  std::vector<double> b(2000);
  std::vector<double> c(2000);
  for (auto& v : a) v = rng.normal(0.0, 1.0);
  for (auto& v : b) v = rng.normal(0.0, 1.0);
  for (auto& v : c) v = rng.normal(1.0, 1.0);
  EXPECT_LT(stats::two_sample_ks(a, b), 0.06);
  EXPECT_GT(stats::two_sample_ks(a, c), 0.3);
}

TEST(TwoSampleKs, RejectsEmpty) {
  const std::vector<double> a = {1.0};
  EXPECT_THROW(stats::two_sample_ks(a, {}), std::invalid_argument);
}

// Synthetic error stream: 10 healthy weeks, then degradation.
struct Stream {
  std::vector<double> times;
  std::vector<double> errors;
};

Stream make_stream(double healthy_sigma, double late_sigma,
                   double late_bias, std::uint64_t seed) {
  util::Rng rng(seed);
  Stream s;
  const double week = 86400.0 * 7.0;
  for (int w = 0; w < 20; ++w) {
    for (int j = 0; j < 80; ++j) {
      s.times.push_back(w * week + j * 3600.0);
      const bool late = w >= 10;
      const double sigma = late ? late_sigma : healthy_sigma;
      const double bias = late ? late_bias : 0.0;
      s.errors.push_back(bias + rng.normal(0.0, sigma));
    }
  }
  return s;
}

TEST(DriftMonitor, QuietOnStationaryErrors) {
  const auto s = make_stream(0.03, 0.03, 0.0, 2);
  const auto report = taxonomy::monitor_drift(s.times, s.errors);
  EXPECT_EQ(report.n_alarms, 0u);
  EXPECT_EQ(report.first_alarm, report.windows.size());
}

TEST(DriftMonitor, AlarmsOnErrorInflation) {
  const auto s = make_stream(0.03, 0.09, 0.0, 3);
  const auto report = taxonomy::monitor_drift(s.times, s.errors);
  EXPECT_GT(report.n_alarms, 5u);
  // First alarm lands at or shortly after the change (window 10; the
  // report indexes post-reference windows, reference = 4 -> index ~6).
  EXPECT_GE(report.first_alarm, 5u);
  EXPECT_LE(report.first_alarm, 7u);
}

TEST(DriftMonitor, AlarmsOnBiasViaKs) {
  // Same spread, shifted bias: ratio of medians of |err| catches some of
  // it, KS catches the distribution change robustly.
  const auto s = make_stream(0.03, 0.03, 0.08, 4);
  const auto report = taxonomy::monitor_drift(s.times, s.errors);
  EXPECT_GT(report.n_alarms, 5u);
}

TEST(DriftMonitor, SmallWindowsNeverAlarm) {
  auto s = make_stream(0.03, 0.30, 0.3, 5);
  taxonomy::DriftParams params;
  params.min_jobs = 1000;  // every window is "too small"
  const auto report = taxonomy::monitor_drift(s.times, s.errors, params);
  EXPECT_EQ(report.n_alarms, 0u);
}

TEST(DriftMonitor, RejectsBadInput) {
  const std::vector<double> t = {1.0, 0.5};
  const std::vector<double> e = {0.0, 0.0};
  EXPECT_THROW(taxonomy::monitor_drift(t, e), std::invalid_argument);
  const std::vector<double> t2 = {1.0};
  EXPECT_THROW(taxonomy::monitor_drift(t2, e), std::invalid_argument);
  EXPECT_THROW(taxonomy::monitor_drift({}, {}), std::invalid_argument);
}

TEST(DriftMonitor, RequiresDataBeyondReference) {
  const std::vector<double> t = {0.0, 1.0, 2.0};
  const std::vector<double> e = {0.1, 0.1, 0.1};
  taxonomy::DriftParams params;
  params.window_seconds = 1e9;  // everything in one window
  EXPECT_THROW(taxonomy::monitor_drift(t, e, params), std::invalid_argument);
}

TEST(DriftMonitor, RenderShowsAlarms) {
  const auto s = make_stream(0.03, 0.12, 0.0, 6);
  const auto report = taxonomy::monitor_drift(s.times, s.errors);
  const auto text = taxonomy::render_drift_report(report);
  EXPECT_NE(text.find("ALARM"), std::string::npos);
  EXPECT_NE(text.find("reference median"), std::string::npos);
}

TEST(DriftMonitor, EndToEndOnSimulatedDeployment) {
  // Train on the pre-cutoff period of a simulated system, deploy, and
  // let the monitor watch the deployment error stream. With novel apps
  // appearing after the cutoff, some windows should alarm.
  auto cfg = sim::tiny_system(31);
  cfg.workload.n_jobs = 3000;
  cfg.catalog.novel_app_frac = 0.25;
  cfg.catalog.novel_shift = 2.0;
  const auto res = sim::simulate(cfg);
  const auto& ds = res.dataset;

  const auto train_rows = ds.rows_in_window(0.0, res.train_cutoff_time);
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix};
  ml::GradientBoostedTrees model({.n_estimators = 60, .max_depth = 6});
  model.fit(taxonomy::feature_matrix(ds, feats, train_rows),
            taxonomy::targets(ds, train_rows));

  // Error stream across the whole timeline (held-in errors small, post
  // errors larger).
  const auto pred = model.predict(taxonomy::feature_matrix(ds, feats));
  std::vector<double> times(ds.size());
  std::vector<double> errors(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    times[i] = ds.meta[i].start_time;
    errors[i] = pred[i] - ds.target[i];
  }
  taxonomy::DriftParams params;
  params.window_seconds = 86400.0 * 5.0;
  params.reference_windows = 3;
  params.error_ratio_alarm = 1.3;
  params.min_jobs = 20;
  const auto report = taxonomy::monitor_drift(times, errors, params);
  EXPECT_FALSE(report.windows.empty());
  // The stream includes training rows early (low error) and novel apps
  // late (high error): expect at least one alarm in the late windows.
  EXPECT_GE(report.n_alarms, 1u);
}

}  // namespace
}  // namespace iotax
