// Determinism guarantees: every published number must be reproducible
// bit-for-bit from the same seeds — searches, ensembles, and the whole
// taxonomy pipeline included.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/data/table.hpp"
#include "src/data/view.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/nas.hpp"
#include "src/ml/search.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/bootstrap.hpp"
#include "src/stats/descriptive.hpp"
#include "src/taxonomy/pipeline.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

Xy small_data(std::uint64_t seed) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(400, 3);
  d.y.resize(400);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t c = 0; c < 3; ++c) d.x(i, c) = rng.uniform(-1.0, 1.0);
    d.y[i] = d.x(i, 0) - d.x(i, 1) * d.x(i, 2) + rng.normal(0.0, 0.1);
  }
  return d;
}

TEST(Determinism, NasSearchReproducible) {
  const auto train = small_data(1);
  const auto val = small_data(2);
  ml::NasParams nas;
  nas.population = 4;
  nas.generations = 2;
  nas.epochs = 3;
  const auto a = ml::nas_search(nas, train.x, train.y, val.x, val.y);
  const auto b = ml::nas_search(nas, train.x, train.y, val.x, val.y);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].val_error, b.history[i].val_error);
    EXPECT_EQ(a.history[i].params.hidden, b.history[i].params.hidden);
  }
}

TEST(Determinism, EnsembleReproducible) {
  const auto train = small_data(3);
  ml::EnsembleParams params;
  params.size = 3;
  params.epochs = 4;
  ml::DeepEnsemble a(params);
  ml::DeepEnsemble b(params);
  a.fit(train.x, train.y);
  b.fit(train.x, train.y);
  const auto pa = a.predict_uncertainty(train.x);
  const auto pb = b.predict_uncertainty(train.x);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(pa.mean[i], pb.mean[i]);
    EXPECT_DOUBLE_EQ(pa.aleatory[i], pb.aleatory[i]);
    EXPECT_DOUBLE_EQ(pa.epistemic[i], pb.epistemic[i]);
  }
}

TEST(Determinism, TaxonomyPipelineReproducible) {
  auto cfg = sim::tiny_system(41);
  cfg.workload.n_jobs = 1500;
  const auto res = sim::simulate(cfg);
  taxonomy::PipelineConfig pc;
  pc.run_uq = false;
  pc.grid.n_estimators = {32};
  pc.grid.max_depth = {6};
  const auto r1 = taxonomy::run_taxonomy(res.dataset, pc);
  const auto r2 = taxonomy::run_taxonomy(res.dataset, pc);
  EXPECT_DOUBLE_EQ(r1.baseline_error, r2.baseline_error);
  EXPECT_DOUBLE_EQ(r1.tuned_error, r2.tuned_error);
  EXPECT_DOUBLE_EQ(r1.system_bound.err_with_time,
                   r2.system_bound.err_with_time);
  EXPECT_DOUBLE_EQ(r1.noise.sigma_log10, r2.noise.sigma_log10);
  EXPECT_DOUBLE_EQ(r1.share_unexplained, r2.share_unexplained);
}

// The parallelised hot paths must be bit-identical for every
// IOTAX_THREADS value: fixed-order reductions only, results in
// pre-sized slots, RNG streams drawn serially before each region.
class ThreadDeterminism : public ::testing::Test {
 protected:
  // Run `fn` under IOTAX_THREADS=1 and =4 and return both results.
  template <typename F>
  static auto at_1_and_4_threads(F&& fn) {
    const char* old = std::getenv("IOTAX_THREADS");
    const std::string saved = old != nullptr ? old : "";
    const bool had = old != nullptr;
    ::setenv("IOTAX_THREADS", "1", 1);
    auto serial = fn();
    ::setenv("IOTAX_THREADS", "4", 1);
    auto threaded = fn();
    if (had) {
      ::setenv("IOTAX_THREADS", saved.c_str(), 1);
    } else {
      ::unsetenv("IOTAX_THREADS");
    }
    return std::make_pair(std::move(serial), std::move(threaded));
  }
};

TEST_F(ThreadDeterminism, EnsembleFitBitIdentical) {
  const auto train = small_data(7);
  const auto [serial, threaded] = at_1_and_4_threads([&] {
    ml::EnsembleParams params;
    params.size = 3;
    params.epochs = 3;
    ml::DeepEnsemble ens(params);
    ens.fit(train.x, train.y);
    return ens.predict_uncertainty(train.x);
  });
  ASSERT_EQ(serial.mean.size(), threaded.mean.size());
  for (std::size_t i = 0; i < serial.mean.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison — bit-identical outputs.
    EXPECT_EQ(serial.mean[i], threaded.mean[i]);
    EXPECT_EQ(serial.aleatory[i], threaded.aleatory[i]);
    EXPECT_EQ(serial.epistemic[i], threaded.epistemic[i]);
  }
}

TEST_F(ThreadDeterminism, GridSearchBitIdentical) {
  const auto train = small_data(8);
  const auto val = small_data(9);
  const auto [serial, threaded] = at_1_and_4_threads([&] {
    ml::GbtGrid grid;
    grid.n_estimators = {8, 16};
    grid.max_depth = {3, 5};
    grid.subsample = {0.8};
    grid.colsample = {0.8};
    return ml::grid_search(grid, train.x, train.y, val.x, val.y);
  });
  ASSERT_EQ(serial.evaluated.size(), threaded.evaluated.size());
  for (std::size_t i = 0; i < serial.evaluated.size(); ++i) {
    EXPECT_EQ(serial.evaluated[i].val_error, threaded.evaluated[i].val_error);
  }
  EXPECT_EQ(serial.best.val_error, threaded.best.val_error);
  EXPECT_EQ(serial.best.params.n_estimators, threaded.best.params.n_estimators);
  EXPECT_EQ(serial.best.params.max_depth, threaded.best.params.max_depth);
}

TEST_F(ThreadDeterminism, GbtFitBitIdentical) {
  const auto train = small_data(10);
  const auto [serial, threaded] = at_1_and_4_threads([&] {
    ml::GbtParams params;
    params.n_estimators = 20;
    params.max_depth = 5;
    params.subsample = 0.8;
    params.colsample = 0.8;
    ml::GradientBoostedTrees model(params);
    model.fit(train.x, train.y);
    return model.predict(train.x);
  });
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]);
  }
}

TEST_F(ThreadDeterminism, NasSearchBitIdentical) {
  const auto train = small_data(11);
  const auto val = small_data(12);
  const auto [serial, threaded] = at_1_and_4_threads([&] {
    ml::NasParams nas;
    nas.population = 4;
    nas.generations = 2;
    nas.epochs = 2;
    return ml::nas_search(nas, train.x, train.y, val.x, val.y);
  });
  ASSERT_EQ(serial.history.size(), threaded.history.size());
  for (std::size_t i = 0; i < serial.history.size(); ++i) {
    EXPECT_EQ(serial.history[i].val_error, threaded.history[i].val_error);
    EXPECT_EQ(serial.history[i].params.hidden, threaded.history[i].params.hidden);
    EXPECT_EQ(serial.history[i].improved_best, threaded.history[i].improved_best);
  }
  EXPECT_EQ(serial.best.val_error, threaded.best.val_error);
}

TEST_F(ThreadDeterminism, BootstrapBitIdentical) {
  util::Rng data_rng(13);
  std::vector<double> xs(300);
  for (auto& x : xs) x = data_rng.normal(5.0, 1.5);
  const auto [serial, threaded] = at_1_and_4_threads([&] {
    util::Rng rng(101);
    return stats::bootstrap_ci(
        xs, [](std::span<const double> s) { return stats::mean(s); }, 200,
        0.95, rng);
  });
  EXPECT_EQ(serial.point, threaded.point);
  EXPECT_EQ(serial.lo, threaded.lo);
  EXPECT_EQ(serial.hi, threaded.hi);
}

TEST_F(ThreadDeterminism, GbtOnTableBackedViewBitIdentical) {
  // The zero-copy pipeline trains models through MatrixViews of a
  // column-major Table; the view path must stay thread-invariant too.
  const auto train = small_data(14);
  data::Table table({"a", "b", "c"});
  table.reserve_rows(train.x.rows());
  std::vector<double> row(3);
  for (std::size_t r = 0; r < train.x.rows(); ++r) {
    for (std::size_t c = 0; c < 3; ++c) row[c] = train.x(r, c);
    table.add_row(row);
  }
  std::vector<std::size_t> rows(train.x.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const std::vector<std::size_t> cols = {0, 1, 2};
  const data::MatrixView view(table, rows, cols);
  const auto [serial, threaded] = at_1_and_4_threads([&] {
    ml::GbtParams params;
    params.n_estimators = 16;
    params.subsample = 0.8;
    ml::GradientBoostedTrees model(params);
    model.fit(view, train.y);
    return model.predict(view);
  });
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]);
  }
  // The view path must also match a model trained on the materialized
  // copy of the same view, bit for bit.
  const auto copy = view.materialize();
  ml::GbtParams params;
  params.n_estimators = 16;
  params.subsample = 0.8;
  ml::GradientBoostedTrees model(params);
  model.fit(copy, train.y);
  const auto via_copy = model.predict(copy);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], via_copy[i]);
  }
}

TEST_F(ThreadDeterminism, TaxonomyPipelineOnViewsBitIdentical) {
  // End-to-end: the full five-step framework (which now runs entirely
  // on views of the dataset's feature table) at 1 vs 4 threads.
  const auto res = sim::simulate(sim::tiny_system(77));
  taxonomy::PipelineConfig pc;
  pc.grid.n_estimators = {8, 16};
  pc.grid.max_depth = {3, 5};
  pc.ensemble.size = 2;
  pc.ensemble.epochs = 3;
  pc.uq_train_cap = 300;
  const auto [serial, threaded] = at_1_and_4_threads(
      [&] { return taxonomy::run_taxonomy(res.dataset, pc); });
  EXPECT_EQ(serial.baseline_error, threaded.baseline_error);
  EXPECT_EQ(serial.tuned_error, threaded.tuned_error);
  EXPECT_EQ(serial.app_bound.median_abs_error,
            threaded.app_bound.median_abs_error);
  EXPECT_EQ(serial.system_bound.err_with_time,
            threaded.system_bound.err_with_time);
  EXPECT_EQ(serial.noise.median_abs_error, threaded.noise.median_abs_error);
  EXPECT_EQ(serial.share_unexplained, threaded.share_unexplained);
}

TEST(Determinism, SimulationRecordsBitIdentical) {
  const auto a = sim::simulate(sim::tiny_system(55));
  const auto b = sim::simulate(sim::tiny_system(55));
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); i += 29) {
    EXPECT_EQ(a.records[i].posix, b.records[i].posix);
    EXPECT_DOUBLE_EQ(a.records[i].agg_perf_mib, b.records[i].agg_perf_mib);
  }
}

}  // namespace
}  // namespace iotax
