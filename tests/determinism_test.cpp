// Determinism guarantees: every published number must be reproducible
// bit-for-bit from the same seeds — searches, ensembles, and the whole
// taxonomy pipeline included.
#include <gtest/gtest.h>

#include "src/ml/ensemble.hpp"
#include "src/ml/nas.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/pipeline.hpp"
#include "src/util/rng.hpp"

namespace iotax {
namespace {

struct Xy {
  data::Matrix x{0, 0};
  std::vector<double> y;
};

Xy small_data(std::uint64_t seed) {
  util::Rng rng(seed);
  Xy d;
  d.x = data::Matrix(400, 3);
  d.y.resize(400);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t c = 0; c < 3; ++c) d.x(i, c) = rng.uniform(-1.0, 1.0);
    d.y[i] = d.x(i, 0) - d.x(i, 1) * d.x(i, 2) + rng.normal(0.0, 0.1);
  }
  return d;
}

TEST(Determinism, NasSearchReproducible) {
  const auto train = small_data(1);
  const auto val = small_data(2);
  ml::NasParams nas;
  nas.population = 4;
  nas.generations = 2;
  nas.epochs = 3;
  const auto a = ml::nas_search(nas, train.x, train.y, val.x, val.y);
  const auto b = ml::nas_search(nas, train.x, train.y, val.x, val.y);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].val_error, b.history[i].val_error);
    EXPECT_EQ(a.history[i].params.hidden, b.history[i].params.hidden);
  }
}

TEST(Determinism, EnsembleReproducible) {
  const auto train = small_data(3);
  ml::EnsembleParams params;
  params.size = 3;
  params.epochs = 4;
  ml::DeepEnsemble a(params);
  ml::DeepEnsemble b(params);
  a.fit(train.x, train.y);
  b.fit(train.x, train.y);
  const auto pa = a.predict_uncertainty(train.x);
  const auto pb = b.predict_uncertainty(train.x);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(pa.mean[i], pb.mean[i]);
    EXPECT_DOUBLE_EQ(pa.aleatory[i], pb.aleatory[i]);
    EXPECT_DOUBLE_EQ(pa.epistemic[i], pb.epistemic[i]);
  }
}

TEST(Determinism, TaxonomyPipelineReproducible) {
  auto cfg = sim::tiny_system(41);
  cfg.workload.n_jobs = 1500;
  const auto res = sim::simulate(cfg);
  taxonomy::PipelineConfig pc;
  pc.run_uq = false;
  pc.grid.n_estimators = {32};
  pc.grid.max_depth = {6};
  const auto r1 = taxonomy::run_taxonomy(res.dataset, pc);
  const auto r2 = taxonomy::run_taxonomy(res.dataset, pc);
  EXPECT_DOUBLE_EQ(r1.baseline_error, r2.baseline_error);
  EXPECT_DOUBLE_EQ(r1.tuned_error, r2.tuned_error);
  EXPECT_DOUBLE_EQ(r1.system_bound.err_with_time,
                   r2.system_bound.err_with_time);
  EXPECT_DOUBLE_EQ(r1.noise.sigma_log10, r2.noise.sigma_log10);
  EXPECT_DOUBLE_EQ(r1.share_unexplained, r2.share_unexplained);
}

TEST(Determinism, SimulationRecordsBitIdentical) {
  const auto a = sim::simulate(sim::tiny_system(55));
  const auto b = sim::simulate(sim::tiny_system(55));
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); i += 29) {
    EXPECT_EQ(a.records[i].posix, b.records[i].posix);
    EXPECT_DOUBLE_EQ(a.records[i].agg_perf_mib, b.records[i].agg_perf_mib);
  }
}

}  // namespace
}  // namespace iotax
