#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/sim/ost_load.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/descriptive.hpp"

namespace iotax {
namespace {

TEST(OstLoad, ConstructionValidation) {
  EXPECT_THROW(sim::OstLoadTimeline(0, 100.0, 10.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(sim::OstLoadTimeline(4, -1.0, 10.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(sim::OstLoadTimeline(4, 100.0, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(sim::OstLoadTimeline(4, 100.0, 10.0, 0.0),
               std::invalid_argument);
}

TEST(OstLoad, DemandSpreadsOverStripesOnly) {
  sim::OstLoadTimeline tl(8, 1000.0, 100.0, 100.0);
  // 200 MiB/s over 2 stripes starting at OST 3 -> 1.0 of each target.
  tl.add_demand({.begin = 3, .count = 2}, 0.0, 500.0, 200.0);
  EXPECT_NEAR(tl.mean_load({.begin = 3, .count = 1}, 0.0, 400.0), 1.0,
              1e-6);
  EXPECT_NEAR(tl.mean_load({.begin = 4, .count = 1}, 0.0, 400.0), 1.0,
              1e-6);
  // Targets outside the stripe set see nothing.
  EXPECT_NEAR(tl.mean_load({.begin = 0, .count = 1}, 0.0, 400.0), 0.0,
              1e-6);
  EXPECT_NEAR(tl.mean_load({.begin = 5, .count = 1}, 0.0, 400.0), 0.0,
              1e-6);
  // Aggregate view: 2 of 8 targets at 1.0.
  EXPECT_NEAR(tl.aggregate_load_at(100.0), 0.25, 1e-6);
}

TEST(OstLoad, StripesWrapAroundTheRing) {
  sim::OstLoadTimeline tl(4, 100.0, 10.0, 10.0);
  tl.add_demand({.begin = 3, .count = 2}, 0.0, 50.0, 20.0);  // OSTs 3, 0
  EXPECT_GT(tl.mean_load({.begin = 0, .count = 1}, 0.0, 40.0), 0.5);
  EXPECT_GT(tl.mean_load({.begin = 3, .count = 1}, 0.0, 40.0), 0.5);
  EXPECT_NEAR(tl.mean_load({.begin = 1, .count = 2}, 0.0, 40.0), 0.0, 1e-9);
}

TEST(OstLoad, OverlapDeterminesContention) {
  sim::OstLoadTimeline tl(8, 100.0, 10.0, 100.0);
  tl.add_demand({.begin = 0, .count = 4}, 0.0, 90.0, 400.0);
  // Fully overlapping placement feels 1.0; half-overlap ~0.5; none 0.
  EXPECT_NEAR(tl.mean_load({.begin = 0, .count = 4}, 0.0, 80.0), 1.0, 1e-6);
  EXPECT_NEAR(tl.mean_load({.begin = 2, .count = 4}, 0.0, 80.0), 0.5, 1e-6);
  EXPECT_NEAR(tl.mean_load({.begin = 4, .count = 4}, 0.0, 80.0), 0.0, 1e-6);
}

TEST(OstLoad, BackgroundBinValidation) {
  sim::OstLoadTimeline tl(4, 100.0, 10.0, 10.0);
  std::vector<double> ok = {0.1, 0.2, 0.3, 0.4};
  EXPECT_NO_THROW(tl.add_background_bin(0, ok));
  std::vector<double> wrong_size = {0.1};
  EXPECT_THROW(tl.add_background_bin(0, wrong_size), std::invalid_argument);
  std::vector<double> negative = {0.1, -0.2, 0.3, 0.4};
  EXPECT_THROW(tl.add_background_bin(0, negative), std::invalid_argument);
  EXPECT_THROW(tl.add_background_bin(10000, ok), std::invalid_argument);
}

TEST(OstLoad, RejectsBadQueries) {
  sim::OstLoadTimeline tl(4, 100.0, 10.0, 10.0);
  EXPECT_THROW(tl.add_demand({.begin = 0, .count = 5}, 0.0, 10.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(tl.mean_load({.begin = 0, .count = 0}, 0.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(tl.mean_load({.begin = 0, .count = 1}, 10.0, 5.0),
               std::invalid_argument);
}

TEST(OstLoad, SimulatedJobsCarryValidStripes) {
  const auto res = sim::simulate(sim::tiny_system(8));
  // Re-derive the workload to inspect placements.
  util::Rng rng(res.config.seed);
  // Instead of regenerating, check the invariant indirectly: concurrent
  // duplicates must show differing contention (log_fl) because their
  // placements differ.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<std::size_t>> sets;
  const auto& ds = res.dataset;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    sets[{ds.meta[i].app_id, ds.meta[i].config_id}].push_back(i);
  }
  std::size_t concurrent_pairs = 0;
  std::size_t differing_fl = 0;
  for (const auto& [key, rows] : sets) {
    for (std::size_t a = 0; a < rows.size(); ++a) {
      for (std::size_t b = a + 1; b < rows.size(); ++b) {
        if (std::fabs(ds.meta[rows[a]].start_time -
                      ds.meta[rows[b]].start_time) > 1.0) {
          continue;
        }
        ++concurrent_pairs;
        if (ds.meta[rows[a]].log_fl != ds.meta[rows[b]].log_fl) {
          ++differing_fl;
        }
      }
    }
  }
  ASSERT_GT(concurrent_pairs, 10u);
  // Most concurrent duplicates land on different targets and therefore
  // feel different contention.
  EXPECT_GT(differing_fl, concurrent_pairs / 2);
}

}  // namespace
}  // namespace iotax
