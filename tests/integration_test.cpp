// Cross-module integration tests: the full pipeline with UQ enabled,
// LMT's encoding of degradations, and file-format failure handling.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/data/table_io.hpp"
#include "src/sim/lmt_gen.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/pipeline.hpp"
#include "src/taxonomy/report_io.hpp"

namespace iotax {
namespace {

TEST(Integration, PipelineWithUncertaintyQuantification) {
  auto cfg = sim::tiny_system(71);
  cfg.workload.n_jobs = 2000;
  const auto res = sim::simulate(cfg);
  taxonomy::PipelineConfig pc;
  pc.run_uq = true;
  pc.ensemble.size = 3;
  pc.ensemble.epochs = 8;
  pc.uq_train_cap = 800;
  pc.grid.n_estimators = {32, 64};
  pc.grid.max_depth = {6};
  const auto report = taxonomy::run_taxonomy(res.dataset, pc);
  ASSERT_TRUE(report.ood.has_value());
  EXPECT_GE(report.ood->frac_ood, 0.0);
  EXPECT_LE(report.ood->frac_ood, 0.2);
  EXPECT_GE(report.share_ood, 0.0);
  // Report round-trips through CSV with the OoD block included.
  const auto path =
      (std::filesystem::temp_directory_path() / "iotax_uq_report.csv")
          .string();
  taxonomy::write_report_csv(path, report);
  const auto back = taxonomy::read_report_csv(path);
  ASSERT_TRUE(back.ood.has_value());
  EXPECT_DOUBLE_EQ(back.ood->frac_ood, report.ood->frac_ood);
  std::filesystem::remove(path);
}

TEST(Integration, LmtEncodesDegradations) {
  // Build weather with one known degradation and verify the LMT stream
  // shows the signature the paper's Fig-4 models learn from: server CPU
  // up, transfer rates down.
  sim::WeatherParams wp;
  wp.horizon = 86400.0 * 30.0;
  wp.n_epochs = 1;
  wp.epoch_offset_sigma = 1e-9;
  wp.seasonal_amplitude = 0.0;
  wp.degradations_per_year = 0.0;
  util::Rng wrng(3);
  sim::GlobalWeather weather(wp, wrng);
  // No degradations from the generator; compare two separately-built
  // weathers instead: healthy vs heavily degraded.
  sim::WeatherParams bad = wp;
  bad.degradations_per_year = 400.0;  // expect ~30 episodes in 30 days
  bad.degradation_min_severity = 0.25;
  bad.degradation_max_severity = 0.30;
  bad.degradation_min_days = 2.0;
  bad.degradation_max_days = 4.0;
  util::Rng brng(4);
  sim::GlobalWeather degraded(bad, brng);

  const auto platform = sim::cori_platform();
  sim::LoadTimeline load(wp.horizon, 900.0);
  load.add_background(std::vector<double>(load.bins(), 0.5));
  util::Rng l1(5);
  util::Rng l2(5);
  const auto healthy_tl =
      sim::generate_lmt_timeline(load, weather, platform, wp.horizon, l1);
  const auto degraded_tl =
      sim::generate_lmt_timeline(load, degraded, platform, wp.horizon, l2);
  const auto h = healthy_tl.aggregate(0.0, wp.horizon);
  const auto d = degraded_tl.aggregate(0.0, wp.horizon);
  const auto& names = telemetry::lmt_feature_names();
  const auto idx = [&names](const std::string& n) {
    return static_cast<std::size_t>(
        std::find(names.begin(), names.end(), n) - names.begin());
  };
  EXPECT_GT(d[idx("LMT_OSS_CPU_MEAN")], h[idx("LMT_OSS_CPU_MEAN")] + 0.05);
  EXPECT_LT(d[idx("LMT_OST_READ_RATE_MEAN")],
            h[idx("LMT_OST_READ_RATE_MEAN")] * 0.95);
}

TEST(Integration, DatasetCsvRejectsMissingMeta) {
  const auto path =
      (std::filesystem::temp_directory_path() / "iotax_bad_ds.csv").string();
  {
    std::ofstream out(path);
    out << "POSIX_OPENS,__meta_job_id\n1,2\n";
  }
  EXPECT_THROW(data::read_dataset_csv(path, "bad"), std::out_of_range);
  std::filesystem::remove(path);
}

TEST(Integration, TableCsvRejectsNonNumeric) {
  const auto path =
      (std::filesystem::temp_directory_path() / "iotax_bad_tbl.csv").string();
  {
    std::ofstream out(path);
    out << "a,b\n1,hello\n";
  }
  EXPECT_THROW(data::read_table_csv(path), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(Integration, ReportCsvRejectsWrongHeader) {
  const auto path =
      (std::filesystem::temp_directory_path() / "iotax_bad_rep.csv").string();
  {
    std::ofstream out(path);
    out << "foo,bar\nx,1\n";
  }
  EXPECT_THROW(taxonomy::read_report_csv(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Integration, ScaledCountsRespondToEnv) {
  setenv("IOTAX_SCALE", "0.5", 1);
  const auto small = sim::theta_like().workload.n_jobs;
  setenv("IOTAX_SCALE", "2", 1);
  const auto large = sim::theta_like().workload.n_jobs;
  unsetenv("IOTAX_SCALE");
  EXPECT_EQ(small, 8000u);
  EXPECT_EQ(large, 32000u);
}

}  // namespace
}  // namespace iotax
