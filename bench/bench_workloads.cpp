// Workload harness: the burst-prediction classifier and the
// cross-cluster transfer litmus at bench scale, with the correctness
// bits check_bench.cmake gates on. Burst: train on the front of the
// tiny preset's telemetry timeline, score the tail, and require the
// checkpoint to round-trip bit-exactly (save -> load -> predict) and
// the threshold adapter to reproduce the logistic labels through the
// monotone score-space identity. Transfer: theta -> cori over a shared
// catalog; the litmus must attribute the gap to the application class
// and the OoD estimate must agree with the sim oracle. Writes
// BENCH_workloads.json; the CI bench job gates it with KIND=workloads.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/ml/classifier.hpp"
#include "src/sim/burst.hpp"
#include "src/stats/classification.hpp"
#include "src/taxonomy/transfer.hpp"

namespace iotax {
namespace {

struct BurstResult {
  std::size_t windows = 0;
  std::size_t bursts = 0;
  double sim_ms = 0.0;
  double train_ms = 0.0;
  double predict_ms = 0.0;
  double accuracy = 0.0;
  double f1 = 0.0;
  double auc = 0.0;
  bool roundtrip_identical = false;
  bool adapter_equivalent = false;
};

BurstResult run_burst() {
  BurstResult r;
  bench::Timer sim_timer;
  auto cfg = sim::tiny_system(7);
  cfg.platform.lmt_enabled = true;
  const auto res = sim::simulate(cfg);
  const auto burst = sim::build_burst_dataset(res);
  r.sim_ms = sim_timer.seconds() * 1000.0;
  r.windows = burst.n_windows;
  r.bursts = burst.n_bursts;

  const auto& ds = burst.dataset;
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kBurst};
  const auto n_train = ds.size() * 3 / 4;
  std::vector<std::size_t> train_rows(n_train), test_rows(ds.size() - n_train);
  for (std::size_t i = 0; i < n_train; ++i) train_rows[i] = i;
  for (std::size_t i = n_train; i < ds.size(); ++i) {
    test_rows[i - n_train] = i;
  }

  ml::ClassifierParams params;
  ml::BurstClassifier clf(params);
  std::vector<std::size_t> fc, fr, ec, er;
  const auto x_train = taxonomy::feature_view(ds, feats, &fc, &fr, train_rows);
  bench::Timer fit_timer;
  clf.fit(x_train, taxonomy::targets(ds, train_rows));
  r.train_ms = fit_timer.seconds() * 1000.0;

  const auto x_test = taxonomy::feature_view(ds, feats, &ec, &er, test_rows);
  const auto y_test = taxonomy::targets(ds, test_rows);
  bench::Timer pred_timer;
  const auto prob = clf.predict(x_test);
  r.predict_ms = pred_timer.seconds() * 1000.0;
  const auto labels = clf.predict_labels(x_test);
  const auto counts = stats::confusion_counts(y_test, labels);
  r.accuracy = stats::accuracy(counts);
  r.f1 = stats::f1_score(counts);
  r.auc = stats::roc_auc(y_test, prob);

  // Correctness bit 1: the checkpoint round-trips bit-exactly.
  std::ostringstream ckpt;
  clf.save(ckpt);
  std::istringstream in(ckpt.str());
  const auto loaded = ml::BurstClassifier::load(in);
  const auto prob2 = loaded.predict(x_test);
  std::ostringstream ckpt2;
  loaded.save(ckpt2);
  r.roundtrip_identical = prob == prob2 && ckpt.str() == ckpt2.str();

  // Correctness bit 2: a threshold-kind classifier over the same
  // booster, cut at t = (logit(p) - b) / a, labels every row the same.
  ml::ClassifierParams tparams;
  tparams.kind = ml::ClassifierKind::kThreshold;
  tparams.threshold = (std::log(params.threshold / (1.0 - params.threshold)) -
                       clf.platt_b()) /
                      clf.platt_a();
  ml::BurstClassifier adapter(tparams);
  adapter.fit(x_train, taxonomy::targets(ds, train_rows));
  r.adapter_equivalent =
      clf.platt_a() > 0.0 && labels == adapter.predict_labels(x_test);
  return r;
}

struct TransferResult {
  std::size_t rows = 0;
  double sim_ms = 0.0;
  double litmus_ms = 0.0;
  taxonomy::TransferReport report;
  bool attribution_ok = false;
};

TransferResult run_transfer() {
  TransferResult r;
  bench::Timer sim_timer;
  const auto [a_cfg, b_cfg] =
      sim::make_transfer_pair(sim::theta_like(7), sim::cori_like(7), 7);
  const auto a = sim::simulate(a_cfg);
  const auto b = sim::simulate(b_cfg);
  r.sim_ms = sim_timer.seconds() * 1000.0;
  r.rows = a.dataset.size() + b.dataset.size();

  bench::Timer litmus_timer;
  r.report = taxonomy::run_transfer_litmus(a.dataset, b.dataset);
  r.litmus_ms = litmus_timer.seconds() * 1000.0;

  // The litmus's own acceptance bits: positive gap, application-
  // dominated attribution, OoD estimate in agreement with the oracle.
  const auto& rep = r.report;
  r.attribution_ok =
      rep.gap > 0.0 && rep.oracle.application > 0.5 && rep.ood_auc > 0.75 &&
      std::abs(rep.ood_fraction_est - rep.ood_fraction_truth) <=
          0.03 + 0.5 * rep.ood_fraction_truth;
  return r;
}

}  // namespace
}  // namespace iotax

int main() {
  using namespace iotax;
  bench::banner("bench_workloads: burst classifier + transfer litmus",
                "the taxonomy applied to a classification workload and "
                "cross-cluster deployment");

  const auto burst = run_burst();
  std::printf("burst: %zu windows (%zu bursts), sim %.1f ms, train %.1f ms, "
              "predict %.1f ms\n",
              burst.windows, burst.bursts, burst.sim_ms, burst.train_ms,
              burst.predict_ms);
  std::printf("burst: held-out accuracy %.3f f1 %.3f auc %.3f\n",
              burst.accuracy, burst.f1, burst.auc);
  std::printf("burst: checkpoint round-trip %s, threshold adapter %s\n",
              burst.roundtrip_identical ? "bit-identical" : "DIVERGED",
              burst.adapter_equivalent ? "equivalent" : "DIVERGED");

  const auto transfer = run_transfer();
  const auto& rep = transfer.report;
  std::printf("transfer: %zu rows, sim %.1f ms, litmus %.1f ms\n",
              transfer.rows, transfer.sim_ms, transfer.litmus_ms);
  std::fputs(taxonomy::render_transfer_report(rep).c_str(), stdout);
  std::printf("transfer: attribution %s\n",
              transfer.attribution_ok ? "ok" : "FAILED");

  const bool bit_identical =
      burst.roundtrip_identical && burst.adapter_equivalent;
  const double wall_ms = burst.sim_ms + burst.train_ms + burst.predict_ms +
                         transfer.sim_ms + transfer.litmus_ms;

  std::ofstream out("BENCH_workloads.json");
  out.precision(17);
  out << "{\n"
      << "  \"rows\": " << (burst.windows + transfer.rows) << ",\n"
      << "  \"bit_identical\": "
      << (bit_identical ? "true" : "false") << ",\n"
      << "  \"wall_ms\": " << wall_ms << ",\n"
      << "  \"burst\": {\n"
      << "    \"windows\": " << burst.windows << ",\n"
      << "    \"bursts\": " << burst.bursts << ",\n"
      << "    \"train_ms\": " << burst.train_ms << ",\n"
      << "    \"predict_ms\": " << burst.predict_ms << ",\n"
      << "    \"accuracy\": " << burst.accuracy << ",\n"
      << "    \"f1\": " << burst.f1 << ",\n"
      << "    \"auc\": " << burst.auc << "\n"
      << "  },\n"
      << "  \"transfer\": {\n"
      << "    \"rows\": " << transfer.rows << ",\n"
      << "    \"litmus_ms\": " << transfer.litmus_ms << ",\n"
      << "    \"gap\": " << rep.gap << ",\n"
      << "    \"application_share\": " << rep.oracle.application << ",\n"
      << "    \"ood_auc\": " << rep.ood_auc << ",\n"
      << "    \"attribution_ok\": "
      << (transfer.attribution_ok ? "true" : "false") << "\n"
      << "  }\n"
      << "}\n";
  std::printf("wrote BENCH_workloads.json (wall %.1f ms)\n", wall_ms);
  return bit_identical && transfer.attribution_ok ? 0 : 1;
}
