// Fig. 1(d) + §VII: weekly average signed error of two models through
// service degradations. The blue model sees only application behaviour
// and develops long periods of biased error whenever the I/O weather
// shifts; the orange model also sees the job start time and tracks the
// weather. Ground-truth degradation windows are marked with '!'.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/split.hpp"
#include "src/ml/gbt.hpp"
#include "src/stats/descriptive.hpp"
#include "src/taxonomy/litmus.hpp"

int main() {
  using namespace iotax;
  bench::banner("Weekly error timeline through I/O weather (Theta-like)",
                "Fig. 1(d): app-only model biased during degradations; "
                "+start-time model is not");
  bench::Timer timer;

  // Stronger weather makes the effect visible at bench scale.
  auto cfg = sim::theta_like(19);
  cfg.weather.degradations_per_year = 10.0;
  cfg.weather.degradation_min_days = 4.0;
  cfg.weather.degradation_max_days = 21.0;
  cfg.weather.degradation_min_severity = 0.10;
  const auto res = sim::simulate(cfg);
  const auto& ds = res.dataset;

  util::Rng rng(23);
  const auto split = data::random_split(ds.size(), 0.7, 0.0, rng);
  const std::vector<taxonomy::FeatureSet> app_feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  auto timed_feats = app_feats;
  timed_feats.push_back(taxonomy::FeatureSet::kStartTimeOnly);

  ml::GbtParams params;
  params.n_estimators = 64;
  params.max_depth = 8;
  ml::GradientBoostedTrees blue(params);
  blue.fit(taxonomy::feature_matrix(ds, app_feats, split.train),
           taxonomy::targets(ds, split.train));

  ml::GbtParams golden = params;
  golden.n_estimators = 160;
  {
    const auto probe = taxonomy::feature_matrix(ds, timed_feats, split.train);
    golden.per_feature_bins.assign(probe.cols(), golden.max_bins);
    golden.per_feature_bins.back() = 2048;
  }
  ml::GradientBoostedTrees orange(golden);
  orange.fit(taxonomy::feature_matrix(ds, timed_feats, split.train),
             taxonomy::targets(ds, split.train));

  const auto y_test = taxonomy::targets(ds, split.test);
  const auto blue_pred =
      blue.predict(taxonomy::feature_matrix(ds, app_feats, split.test));
  const auto orange_pred =
      orange.predict(taxonomy::feature_matrix(ds, timed_feats, split.test));

  // Weekly buckets of signed error.
  const double week = 86400.0 * 7.0;
  const auto n_weeks = static_cast<std::size_t>(
      res.config.workload.horizon / week) + 1;
  std::vector<std::vector<double>> blue_err(n_weeks);
  std::vector<std::vector<double>> orange_err(n_weeks);
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    const auto w = static_cast<std::size_t>(
        ds.meta[split.test[i]].start_time / week);
    blue_err[w].push_back(blue_pred[i] - y_test[i]);
    orange_err[w].push_back(orange_pred[i] - y_test[i]);
  }

  std::printf("%6s %10s %10s %8s   %s\n", "week", "app-only", "+time",
              "weather", "bias (B=app-only, o=+time, | = zero)");
  double blue_abs_bias = 0.0;
  double orange_abs_bias = 0.0;
  std::size_t buckets = 0;
  for (std::size_t w = 0; w < n_weeks; ++w) {
    if (blue_err[w].size() < 8) continue;
    const double b = stats::mean(blue_err[w]);
    const double o = stats::mean(orange_err[w]);
    const double t_mid = (static_cast<double>(w) + 0.5) * week;
    const bool degraded = res.weather->degraded(t_mid);
    blue_abs_bias += std::fabs(b);
    orange_abs_bias += std::fabs(o);
    ++buckets;
    // Render both biases on one +-0.1 log10 axis.
    constexpr double kAxis = 0.1;
    constexpr int kWidth = 41;
    std::string axis(kWidth, '.');
    axis[kWidth / 2] = '|';
    const auto place = [&axis](double v, char c) {
      int pos = kWidth / 2 +
                static_cast<int>(v / kAxis * (kWidth / 2));
      pos = std::clamp(pos, 0, kWidth - 1);
      axis[static_cast<std::size_t>(pos)] = c;
    };
    place(b, 'B');
    place(o, 'o');
    std::printf("%6zu %+10.4f %+10.4f %8s   %s\n", w, b, o,
                degraded ? "!DEGR" : "", axis.c_str());
  }
  std::printf("\nmean |weekly bias|: app-only %.4f vs +time %.4f  "
              "(shape check: app-only >= 1.5x: %s)\n",
              blue_abs_bias / buckets, orange_abs_bias / buckets,
              blue_abs_bias > 1.5 * orange_abs_bias ? "PASS" : "MISS");
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
