// Ablation A3: litmus-test validation against simulator ground truth —
// the check the paper's authors could not run on production logs. We
// sweep the platform's inherent noise level and verify the litmus-5
// estimate tracks the configured value; then sweep the contention
// strength and verify the concurrent-duplicate bound responds to
// contention while the configured noise floor stays put.
#include <cmath>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/taxonomy/litmus.hpp"

int main() {
  using namespace iotax;
  bench::banner("Litmus validation vs simulator ground truth",
                "DESIGN.md A3: estimator tracks injected noise/contention");
  bench::Timer timer;

  std::printf("--- sweep 1: platform noise sigma (contention fixed) ---\n");
  std::printf("%12s %14s %12s %10s\n", "true sigma", "estimated", "band68(%)",
              "ratio");
  bool tracks = true;
  for (const double sigma : {0.008, 0.016, 0.024, 0.036, 0.050}) {
    auto cfg = sim::tiny_system(61);
    cfg.workload.n_jobs = 4000;
    cfg.workload.batch_prob = 0.10;
    cfg.platform.noise_sigma_log10 = sigma;
    cfg.platform.contention_strength = 0.05;  // keep ζ_l small
    const auto res = sim::simulate(cfg);
    const auto noise = taxonomy::litmus_noise_bound(res.dataset, 1.0);
    // App noise sensitivities are lognormal(0, 0.35): mean multiplier
    // exp(0.35^2/2) ~= 1.06, so estimates sit slightly above sigma.
    const double ratio = noise.sigma_log10 / sigma;
    std::printf("%12.4f %14.4f %12.2f %10.2f\n", sigma, noise.sigma_log10,
                noise.band68_pct, ratio);
    if (ratio < 0.85 || ratio > 1.6) tracks = false;
  }
  std::printf("shape check: estimate within [0.85, 1.6]x of injected "
              "sigma at every level: %s\n\n",
              tracks ? "PASS" : "MISS");

  std::printf("--- sweep 2: contention strength (noise fixed) ---\n");
  std::printf("%12s %14s %14s\n", "strength", "dt=0 bound(%)",
              "all-dup bound(%)");
  std::vector<double> floors;
  for (const double strength : {0.0, 0.2, 0.4, 0.8}) {
    auto cfg = sim::tiny_system(62);
    cfg.workload.n_jobs = 4000;
    cfg.workload.batch_prob = 0.10;
    cfg.platform.contention_strength = strength;
    const auto res = sim::simulate(cfg);
    const auto noise = taxonomy::litmus_noise_bound(res.dataset, 1.0);
    const auto app = taxonomy::litmus_application_bound(res.dataset);
    std::printf("%12.2f %14.2f %14.2f\n", strength,
                bench::pct(noise.median_abs_error),
                bench::pct(app.median_abs_error));
    floors.push_back(noise.median_abs_error);
  }
  std::printf("shape check: the contention share of the dt=0 floor grows "
              "with strength: %s\n",
              floors.back() > floors.front() * 1.2 ? "PASS" : "MISS");
  std::printf("(contention and noise are inseparable at dt=0 — exactly "
              "the paper's point in §IX)\n");
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
