// Fig. 1(a) + §VI.B ("T2"): heatmap of GBT median error over the number
// of trees x tree depth, on the Theta-like dataset, with subsample and
// column-sample fixed at the best found value. Paper result: the tuned
// model (10.51%) lands just above the duplicate-set bound (10.01%); the
// same convergence-to-bound must hold here.
#include <limits>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/split.hpp"
#include "src/ml/gbt.hpp"
#include "src/taxonomy/litmus.hpp"

int main() {
  using namespace iotax;
  bench::banner("GBT hyperparameter heatmap (Theta-like)",
                "Fig. 1(a); text §VI.A-B: bound 10.01%, tuned 10.51%");
  bench::Timer timer;

  const auto res = sim::simulate(sim::theta_like());
  const auto& ds = res.dataset;
  const auto bound = taxonomy::litmus_application_bound(ds);
  std::printf("duplicates: %zu jobs (%.1f%%) in %zu sets\n",
              bound.stats.n_duplicate_jobs,
              bound.stats.duplicate_fraction * 100.0, bound.stats.n_sets);
  std::printf("application-modeling bound: %.2f%% median error\n\n",
              bench::pct(bound.median_abs_error));

  util::Rng rng(41);
  const auto split = data::random_split(ds.size(), 0.60, 0.15, rng);
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  const auto x_train = taxonomy::feature_matrix(ds, feats, split.train);
  const auto y_train = taxonomy::targets(ds, split.train);
  const auto x_val = taxonomy::feature_matrix(ds, feats, split.val);
  const auto y_val = taxonomy::targets(ds, split.val);
  const auto x_test = taxonomy::feature_matrix(ds, feats, split.test);
  const auto y_test = taxonomy::targets(ds, split.test);

  const std::vector<std::size_t> trees = {8, 16, 32, 64, 128};
  const std::vector<std::size_t> depths = {2, 4, 6, 9, 12, 15};

  std::printf("validation median |log10| error (%%), rows=trees, "
              "cols=depth:\n");
  std::printf("%8s", "");
  for (const auto d : depths) std::printf("%8zu", d);
  std::printf("\n");

  double best_err = std::numeric_limits<double>::infinity();
  ml::GbtParams best;
  for (const auto t : trees) {
    std::printf("%8zu", t);
    for (const auto d : depths) {
      ml::GbtParams p;
      p.n_estimators = t;
      p.max_depth = d;
      p.subsample = 0.9;
      p.colsample = 0.9;
      ml::GradientBoostedTrees model(p);
      model.fit(x_train, y_train);
      const double err =
          ml::median_abs_log_error(y_val, model.predict(x_val));
      std::printf("%8.2f", bench::pct(err));
      std::fflush(stdout);
      if (err < best_err) {
        best_err = err;
        best = p;
      }
    }
    std::printf("\n");
  }

  ml::GradientBoostedTrees tuned(best);
  tuned.fit(x_train, y_train);
  const double test_err =
      ml::median_abs_log_error(y_test, tuned.predict(x_test));

  std::printf("\nbest config: %zu trees, depth %zu (val %.2f%%)\n",
              best.n_estimators, best.max_depth, bench::pct(best_err));
  std::printf("tuned model test error: %.2f%%  vs bound %.2f%%  (paper: "
              "10.51%% vs 10.01%%)\n",
              bench::pct(test_err), bench::pct(bound.median_abs_error));
  std::printf("shape check: tuned within 35%% above bound and not below: %s\n",
              test_err >= bound.median_abs_error * 0.95 &&
                      test_err <= bound.median_abs_error * 1.35
                  ? "PASS"
                  : "MISS");
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
