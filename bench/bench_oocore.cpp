// A/B harness for the out-of-core data path: the same Theta-like job
// stream is ingested and trained on twice — once through the in-RAM
// path (sequential ingest into a heap Dataset, materialized feature
// matrix) and once through the out-of-core path (sharded ingest
// streamed into a column store, mmap-backed training with spilled bin
// codes) — then the two GBT models and their predictions are checked
// bit-identical and BENCH_oocore.json records wall time plus peak
// materialized and mapped bytes for each path. Row count honours
// IOTAX_SCALE (100K rows at scale 1); thread count honours
// IOTAX_THREADS.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/footprint.hpp"
#include "src/data/ooc.hpp"
#include "src/data/store.hpp"
#include "src/ml/gbt.hpp"
#include "src/sim/dataset_builder.hpp"
#include "src/telemetry/binary_log.hpp"

namespace iotax {
namespace {

constexpr std::size_t kShards = 4;

struct PathResult {
  double ingest_ms = 0.0;  // sequential ingest / sharded pack + open
  double train_ms = 0.0;
  std::size_t peak_materialized = 0;
  std::size_t peak_mapped = 0;
  std::string model_bytes;
  std::vector<double> predictions;
};

std::string fit_key(const ml::GradientBoostedTrees& model) {
  std::ostringstream out;
  model.save(out);
  return out.str();
}

PathResult train_on(const data::Dataset& ds, bool materialize) {
  PathResult r;
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  bench::Timer timer;
  ml::GradientBoostedTrees model({.n_estimators = 48, .max_depth = 6});
  if (materialize) {
    // The pre-store path: one heap feature matrix for the whole dataset.
    const auto x = taxonomy::feature_matrix(ds, feats);
    model.fit(x, ds.target);
    r.predictions = model.predict(x);
  } else {
    std::vector<std::size_t> cs, rs;
    const auto x = taxonomy::feature_view(ds, feats, &cs, &rs);
    model.fit(x, ds.target);
    r.predictions = model.predict(x);
  }
  r.train_ms = timer.seconds() * 1e3;
  r.model_bytes = fit_key(model);
  return r;
}

}  // namespace
}  // namespace iotax

int main() {
  using namespace iotax;
  bench::banner("Out-of-core column store A/B (ingest + GBT train)",
                "memory/runtime harness for the million-job refactor");

  const char* threads_env = std::getenv("IOTAX_THREADS");
  const int threads = threads_env != nullptr ? std::atoi(threads_env) : 0;

  auto cfg = sim::theta_like();
  cfg.workload.n_jobs = util::scaled_count(100000, 8000);
  const auto res = sim::simulate(cfg);

  const auto dir =
      std::filesystem::temp_directory_path() / "iotax_bench_oocore";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Contiguous record slices over kShards binary archives (what
  // `iotax simulate --shards N` writes).
  std::vector<sim::IngestShard> shards;
  const std::size_t n_records = res.records.size();
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::size_t lo = s * n_records / kShards;
    const std::size_t hi = (s + 1) * n_records / kShards;
    const std::vector<telemetry::JobLogRecord> slice(
        res.records.begin() + static_cast<long>(lo),
        res.records.begin() + static_cast<long>(hi));
    const auto path = (dir / ("shard" + std::to_string(s) + ".bin")).string();
    telemetry::write_binary_archive_file(path, slice);
    sim::IngestShard shard;
    shard.path = path;
    shard.binary = true;
    shards.push_back(shard);
  }

  const auto saved_ooc = data::ooc::settings();

  // ---- A: in-RAM path --------------------------------------------------
  data::ooc::settings().enabled = false;
  data::footprint::reset_peak();
  PathResult inram;
  {
    bench::Timer timer;
    const auto ingest = sim::build_dataset_ingest(
        res.records, nullptr, cfg.name, nullptr, sim::IngestMode::kLenient);
    inram.ingest_ms = timer.seconds() * 1e3;
    auto trained = train_on(ingest.dataset, /*materialize=*/true);
    inram.train_ms = trained.train_ms;
    inram.model_bytes = std::move(trained.model_bytes);
    inram.predictions = std::move(trained.predictions);
  }
  inram.peak_materialized = data::footprint::peak_bytes();
  inram.peak_mapped = data::footprint::peak_mapped_bytes();

  // ---- B: out-of-core path ---------------------------------------------
  data::ooc::settings().enabled = true;
  data::ooc::settings().spill_threshold_bytes = 0;  // spill all code planes
  data::footprint::reset_peak();
  PathResult ooc;
  const auto store_dir = (dir / "store").string();
  {
    bench::Timer timer;
    std::unique_ptr<data::StoreWriter> writer;
    sim::ingest_shards(shards, nullptr, cfg.name, nullptr,
                       sim::IngestMode::kLenient,
                       [&](data::Dataset&& chunk) {
                         if (!writer) {
                           writer = std::make_unique<data::StoreWriter>(
                               store_dir, chunk.features.names(),
                               chunk.system_name);
                         }
                         writer->append(chunk);
                       });
    writer->finish();
    ooc.ingest_ms = timer.seconds() * 1e3;
  }
  std::size_t store_rows = 0;
  {
    auto outcome = data::ColumnStore::open(store_dir);
    if (!outcome.ok()) {
      std::fprintf(stderr, "bench_oocore: %s\n",
                   outcome.first_error().c_str());
      return 1;
    }
    store_rows = outcome.store->rows();
    auto trained = train_on(outcome.store->dataset(), /*materialize=*/false);
    ooc.train_ms = trained.train_ms;
    ooc.model_bytes = std::move(trained.model_bytes);
    ooc.predictions = std::move(trained.predictions);
  }
  ooc.peak_materialized = data::footprint::peak_bytes();
  ooc.peak_mapped = data::footprint::peak_mapped_bytes();
  data::ooc::settings() = saved_ooc;

  const bool identical = inram.model_bytes == ooc.model_bytes &&
                         inram.predictions == ooc.predictions &&
                         store_rows == res.dataset.size();
  // A fully streaming OOC path materializes zero heap bytes; divide by
  // at least one byte so the factor stays finite and monotone.
  const double reduction =
      static_cast<double>(inram.peak_materialized) /
      static_cast<double>(std::max<std::size_t>(ooc.peak_materialized, 1));

  std::printf("rows                  %zu (%zu shard(s))\n", store_rows,
              kShards);
  std::printf("in-RAM   ingest %.0fms train %.0fms  "
              "peak materialized %zu  mapped %zu\n",
              inram.ingest_ms, inram.train_ms, inram.peak_materialized,
              inram.peak_mapped);
  std::printf("ooc      pack   %.0fms train %.0fms  "
              "peak materialized %zu  mapped %zu\n",
              ooc.ingest_ms, ooc.train_ms, ooc.peak_materialized,
              ooc.peak_mapped);
  std::printf("materialized reduction %.2fx\n", reduction);
  std::printf("models bit-identical  %s\n", identical ? "PASS" : "FAIL");

  FILE* out = std::fopen("BENCH_oocore.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"rows\": %zu,\n"
        "  \"threads\": %d,\n"
        "  \"shards\": %zu,\n"
        "  \"inram\": {\"ingest_ms\": %.1f, \"train_ms\": %.1f, "
        "\"peak_materialized_bytes\": %zu, \"peak_mapped_bytes\": %zu},\n"
        "  \"ooc\": {\"pack_ms\": %.1f, \"train_ms\": %.1f, "
        "\"peak_materialized_bytes\": %zu, \"peak_mapped_bytes\": %zu},\n"
        "  \"materialized_reduction_factor\": %.2f,\n"
        "  \"bit_identical\": %s\n"
        "}\n",
        store_rows, threads, kShards, inram.ingest_ms, inram.train_ms,
        inram.peak_materialized, inram.peak_mapped, ooc.ingest_ms,
        ooc.train_ms, ooc.peak_materialized, ooc.peak_mapped, reduction,
        identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_oocore.json\n");
  }
  std::filesystem::remove_all(dir);
  return identical ? 0 : 1;
}
