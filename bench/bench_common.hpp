// Shared helpers for the figure-reproduction benches. Each bench binary
// regenerates one figure/table of the paper (see DESIGN.md's experiment
// index) and prints the series as aligned text. Dataset sizes honour
// IOTAX_SCALE.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "src/ml/metrics.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/feature_sets.hpp"
#include "src/util/env.hpp"

namespace iotax::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("IOTAX_SCALE=%.2f\n", util::env_scale());
  std::printf("==========================================================\n");
}

inline double pct(double log_err) {
  return ml::log_error_to_percent(log_err);
}

/// ASCII bar of `width` cells filled proportionally to value/maximum.
inline std::string bar(double value, double maximum, std::size_t width = 40) {
  if (maximum <= 0.0) return std::string(width, '.');
  double frac = value / maximum;
  if (frac < 0.0) frac = 0.0;
  if (frac > 1.0) frac = 1.0;
  const auto n = static_cast<std::size_t>(frac * static_cast<double>(width));
  return std::string(n, '#') + std::string(width - n, '.');
}

}  // namespace iotax::bench
