// Performance microbenchmarks (google-benchmark) for the library's hot
// kernels: simulation, log writing/parsing, feature binning, GBT, MLP
// and ensemble training, hyperparameter search, and prediction. The
// thread-parameterized benches (Arg = IOTAX_THREADS) track the
// wall-clock speedup of the deterministic thread-pool paths; the rest
// guard single-core throughput.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "src/ml/binning.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/nn.hpp"
#include "src/ml/search.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/duplicates.hpp"
#include "src/taxonomy/feature_sets.hpp"
#include "src/telemetry/darshan_log.hpp"

namespace {

using namespace iotax;

// Pin the pool width for one thread-parameterized benchmark run.
class ScopedThreads {
 public:
  explicit ScopedThreads(long n) {
    ::setenv("IOTAX_THREADS", std::to_string(n).c_str(), 1);
  }
  ~ScopedThreads() { ::unsetenv("IOTAX_THREADS"); }
};

const sim::SimulationResult& shared_result() {
  static const sim::SimulationResult res = [] {
    auto cfg = sim::tiny_system(71);
    cfg.workload.n_jobs = 2000;
    return sim::simulate(cfg);
  }();
  return res;
}

void BM_Simulate(benchmark::State& state) {
  auto cfg = sim::tiny_system(72);
  cfg.workload.n_jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto res = sim::simulate(cfg);
    benchmark::DoNotOptimize(res.dataset.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Simulate)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_WriteArchive(benchmark::State& state) {
  const auto& res = shared_result();
  for (auto _ : state) {
    std::ostringstream out;
    for (const auto& rec : res.records) telemetry::write_record(out, rec);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(res.records.size()));
}
BENCHMARK(BM_WriteArchive)->Unit(benchmark::kMillisecond);

void BM_ParseArchive(benchmark::State& state) {
  const auto& res = shared_result();
  std::ostringstream out;
  for (const auto& rec : res.records) telemetry::write_record(out, rec);
  const std::string text = out.str();
  for (auto _ : state) {
    std::istringstream in(text);
    const auto parsed = telemetry::parse_archive(in);
    benchmark::DoNotOptimize(parsed.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(res.records.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<long>(text.size()));
}
BENCHMARK(BM_ParseArchive)->Unit(benchmark::kMillisecond);

void BM_FeatureBinning(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  for (auto _ : state) {
    ml::BinnedMatrix binned(x, 64);
    benchmark::DoNotOptimize(binned.max_bins_used());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(x.rows() * x.cols()));
}
BENCHMARK(BM_FeatureBinning)->Unit(benchmark::kMillisecond);

void BM_GbtFit(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ml::GbtParams params;
  params.n_estimators = static_cast<std::size_t>(state.range(0));
  params.max_depth = 6;
  for (auto _ : state) {
    ml::GradientBoostedTrees model(params);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.n_trees());
  }
}
BENCHMARK(BM_GbtFit)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_GbtPredict(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ml::GbtParams params;
  params.n_estimators = 64;
  ml::GradientBoostedTrees model(params);
  model.fit(x, y);
  for (auto _ : state) {
    const auto pred = model.predict(x);
    benchmark::DoNotOptimize(pred.back());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(x.rows()));
}
BENCHMARK(BM_GbtPredict)->Unit(benchmark::kMillisecond);

void BM_MlpFitEpoch(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ml::MlpParams params;
  params.hidden = {64, 64};
  params.epochs = 1;
  for (auto _ : state) {
    ml::Mlp model(params);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.name().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(x.rows()));
}
BENCHMARK(BM_MlpFitEpoch)->Unit(benchmark::kMillisecond);

void BM_GbtFitThreaded(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ScopedThreads threads(state.range(0));
  ml::GbtParams params;
  params.n_estimators = 32;
  params.max_depth = 6;
  for (auto _ : state) {
    ml::GradientBoostedTrees model(params);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.n_trees());
  }
}
BENCHMARK(BM_GbtFitThreaded)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EnsembleFit(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ScopedThreads threads(state.range(0));
  ml::EnsembleParams params;
  params.size = 4;
  params.epochs = 2;
  for (auto _ : state) {
    ml::DeepEnsemble ens(params);
    ens.fit(x, y);
    benchmark::DoNotOptimize(ens.size());
  }
}
BENCHMARK(BM_EnsembleFit)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_GridSearch(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  // Front 3/4 train, back 1/4 validation — enough rows for a stable fit.
  const std::size_t split = x.rows() * 3 / 4;
  std::vector<std::size_t> train_rows(split);
  std::vector<std::size_t> val_rows(x.rows() - split);
  for (std::size_t i = 0; i < split; ++i) train_rows[i] = i;
  for (std::size_t i = split; i < x.rows(); ++i) val_rows[i - split] = i;
  const auto x_train = x.take_rows(train_rows);
  const auto x_val = x.take_rows(val_rows);
  const std::vector<double> y_train(y.begin(), y.begin() + split);
  const std::vector<double> y_val(y.begin() + split, y.end());
  ScopedThreads threads(state.range(0));
  ml::GbtGrid grid;
  grid.n_estimators = {8, 16};
  grid.max_depth = {3, 6};
  grid.subsample = {1.0};
  grid.colsample = {1.0};
  for (auto _ : state) {
    const auto res = ml::grid_search(grid, x_train, y_train, x_val, y_val);
    benchmark::DoNotOptimize(res.best.val_error);
  }
  state.SetItemsProcessed(state.iterations() * 4);  // grid points
}
BENCHMARK(BM_GridSearch)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Observability overhead on the hottest instrumented path. Arg 0 runs
// with observability off (the shipping default: every IOTAX_TRACE_SPAN /
// IOTAX_OBS_* site collapses to a relaxed atomic load and branch); Arg 1
// runs with spans, counters and histograms live. Compare against
// BM_GbtFitThreaded/1: the disabled path must stay within 2%.
void BM_GbtFitObsOverhead(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ScopedThreads threads(1);
  const bool obs_on = state.range(0) != 0;
  obs::set_enabled(obs_on);
  ml::GbtParams params;
  params.n_estimators = 32;
  params.max_depth = 6;
  for (auto _ : state) {
    ml::GradientBoostedTrees model(params);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.n_trees());
    if (obs_on) {
      // Keep the span log from growing without bound across iterations;
      // excluded from timing.
      state.PauseTiming();
      obs::TraceLog::global().reset();
      obs::MetricsRegistry::global().reset();
      state.ResumeTiming();
    }
  }
  obs::set_enabled(false);
  obs::TraceLog::global().reset();
  obs::MetricsRegistry::global().reset();
  state.SetLabel(obs_on ? "obs=on" : "obs=off");
}
BENCHMARK(BM_GbtFitObsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_FindDuplicates(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  for (auto _ : state) {
    const auto sets = taxonomy::find_duplicate_sets(ds);
    benchmark::DoNotOptimize(sets.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(ds.size()));
}
BENCHMARK(BM_FindDuplicates)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
