// Performance microbenchmarks (google-benchmark) for the library's hot
// kernels: simulation, log writing/parsing, feature binning, GBT and MLP
// training, and prediction. These guard the single-core throughput that
// keeps the figure benches tractable.
#include <benchmark/benchmark.h>

#include <sstream>

#include "src/ml/binning.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/nn.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/duplicates.hpp"
#include "src/taxonomy/feature_sets.hpp"
#include "src/telemetry/darshan_log.hpp"

namespace {

using namespace iotax;

const sim::SimulationResult& shared_result() {
  static const sim::SimulationResult res = [] {
    auto cfg = sim::tiny_system(71);
    cfg.workload.n_jobs = 2000;
    return sim::simulate(cfg);
  }();
  return res;
}

void BM_Simulate(benchmark::State& state) {
  auto cfg = sim::tiny_system(72);
  cfg.workload.n_jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto res = sim::simulate(cfg);
    benchmark::DoNotOptimize(res.dataset.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Simulate)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_WriteArchive(benchmark::State& state) {
  const auto& res = shared_result();
  for (auto _ : state) {
    std::ostringstream out;
    for (const auto& rec : res.records) telemetry::write_record(out, rec);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(res.records.size()));
}
BENCHMARK(BM_WriteArchive)->Unit(benchmark::kMillisecond);

void BM_ParseArchive(benchmark::State& state) {
  const auto& res = shared_result();
  std::ostringstream out;
  for (const auto& rec : res.records) telemetry::write_record(out, rec);
  const std::string text = out.str();
  for (auto _ : state) {
    std::istringstream in(text);
    const auto parsed = telemetry::parse_archive(in);
    benchmark::DoNotOptimize(parsed.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(res.records.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<long>(text.size()));
}
BENCHMARK(BM_ParseArchive)->Unit(benchmark::kMillisecond);

void BM_FeatureBinning(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  for (auto _ : state) {
    ml::BinnedMatrix binned(x, 64);
    benchmark::DoNotOptimize(binned.max_bins_used());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(x.rows() * x.cols()));
}
BENCHMARK(BM_FeatureBinning)->Unit(benchmark::kMillisecond);

void BM_GbtFit(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ml::GbtParams params;
  params.n_estimators = static_cast<std::size_t>(state.range(0));
  params.max_depth = 6;
  for (auto _ : state) {
    ml::GradientBoostedTrees model(params);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.n_trees());
  }
}
BENCHMARK(BM_GbtFit)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_GbtPredict(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ml::GbtParams params;
  params.n_estimators = 64;
  ml::GradientBoostedTrees model(params);
  model.fit(x, y);
  for (auto _ : state) {
    const auto pred = model.predict(x);
    benchmark::DoNotOptimize(pred.back());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(x.rows()));
}
BENCHMARK(BM_GbtPredict)->Unit(benchmark::kMillisecond);

void BM_MlpFitEpoch(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ml::MlpParams params;
  params.hidden = {64, 64};
  params.epochs = 1;
  for (auto _ : state) {
    ml::Mlp model(params);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.name().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(x.rows()));
}
BENCHMARK(BM_MlpFitEpoch)->Unit(benchmark::kMillisecond);

void BM_FindDuplicates(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  for (auto _ : state) {
    const auto sets = taxonomy::find_duplicate_sets(ds);
    benchmark::DoNotOptimize(sets.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(ds.size()));
}
BENCHMARK(BM_FindDuplicates)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
