// Performance microbenchmarks (google-benchmark) for the library's hot
// kernels: simulation, log writing/parsing, feature binning, GBT, MLP
// and ensemble training, hyperparameter search, and prediction. The
// thread-parameterized benches (Arg = IOTAX_THREADS) track the
// wall-clock speedup of the deterministic thread-pool paths; the rest
// guard single-core throughput.
// Invoked with --kernels_ab, the binary skips google-benchmark and runs
// the scalar-vs-AVX2 A/B harness for the three SIMD kernels (histogram
// split scan, packed forest traversal, dense GEMM) at IOTAX_THREADS 1
// and 4, verifies the tiers agree bit for bit, and writes
// BENCH_kernels.json for tools/check_bench.cmake (KIND=kernels).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/ml/binning.hpp"
#include "src/ml/kernels/dispatch.hpp"
#include "src/ml/kernels/forest.hpp"
#include "src/ml/kernels/gemm.hpp"
#include "src/ml/kernels/hist.hpp"
#include "src/util/parallel.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/nn.hpp"
#include "src/ml/search.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/presets.hpp"
#include "src/sim/simulator.hpp"
#include "src/taxonomy/duplicates.hpp"
#include "src/taxonomy/feature_sets.hpp"
#include "src/telemetry/darshan_log.hpp"

namespace {

using namespace iotax;

// Pin the pool width for one thread-parameterized benchmark run.
class ScopedThreads {
 public:
  explicit ScopedThreads(long n) {
    ::setenv("IOTAX_THREADS", std::to_string(n).c_str(), 1);
  }
  ~ScopedThreads() { ::unsetenv("IOTAX_THREADS"); }
};

const sim::SimulationResult& shared_result() {
  static const sim::SimulationResult res = [] {
    auto cfg = sim::tiny_system(71);
    cfg.workload.n_jobs = 2000;
    return sim::simulate(cfg);
  }();
  return res;
}

void BM_Simulate(benchmark::State& state) {
  auto cfg = sim::tiny_system(72);
  cfg.workload.n_jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto res = sim::simulate(cfg);
    benchmark::DoNotOptimize(res.dataset.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Simulate)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_WriteArchive(benchmark::State& state) {
  const auto& res = shared_result();
  for (auto _ : state) {
    std::ostringstream out;
    for (const auto& rec : res.records) telemetry::write_record(out, rec);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(res.records.size()));
}
BENCHMARK(BM_WriteArchive)->Unit(benchmark::kMillisecond);

void BM_ParseArchive(benchmark::State& state) {
  const auto& res = shared_result();
  std::ostringstream out;
  for (const auto& rec : res.records) telemetry::write_record(out, rec);
  const std::string text = out.str();
  for (auto _ : state) {
    std::istringstream in(text);
    const auto parsed = telemetry::parse_archive(in);
    benchmark::DoNotOptimize(parsed.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(res.records.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<long>(text.size()));
}
BENCHMARK(BM_ParseArchive)->Unit(benchmark::kMillisecond);

void BM_FeatureBinning(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  for (auto _ : state) {
    ml::BinnedMatrix binned(x, 64);
    benchmark::DoNotOptimize(binned.max_bins_used());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(x.rows() * x.cols()));
}
BENCHMARK(BM_FeatureBinning)->Unit(benchmark::kMillisecond);

void BM_GbtFit(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ml::GbtParams params;
  params.n_estimators = static_cast<std::size_t>(state.range(0));
  params.max_depth = 6;
  for (auto _ : state) {
    ml::GradientBoostedTrees model(params);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.n_trees());
  }
}
BENCHMARK(BM_GbtFit)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_GbtPredict(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ml::GbtParams params;
  params.n_estimators = 64;
  ml::GradientBoostedTrees model(params);
  model.fit(x, y);
  for (auto _ : state) {
    const auto pred = model.predict(x);
    benchmark::DoNotOptimize(pred.back());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(x.rows()));
}
BENCHMARK(BM_GbtPredict)->Unit(benchmark::kMillisecond);

void BM_MlpFitEpoch(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ml::MlpParams params;
  params.hidden = {64, 64};
  params.epochs = 1;
  for (auto _ : state) {
    ml::Mlp model(params);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.name().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(x.rows()));
}
BENCHMARK(BM_MlpFitEpoch)->Unit(benchmark::kMillisecond);

void BM_GbtFitThreaded(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ScopedThreads threads(state.range(0));
  ml::GbtParams params;
  params.n_estimators = 32;
  params.max_depth = 6;
  for (auto _ : state) {
    ml::GradientBoostedTrees model(params);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.n_trees());
  }
}
BENCHMARK(BM_GbtFitThreaded)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EnsembleFit(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ScopedThreads threads(state.range(0));
  ml::EnsembleParams params;
  params.size = 4;
  params.epochs = 2;
  for (auto _ : state) {
    ml::DeepEnsemble ens(params);
    ens.fit(x, y);
    benchmark::DoNotOptimize(ens.size());
  }
}
BENCHMARK(BM_EnsembleFit)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_GridSearch(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  // Front 3/4 train, back 1/4 validation — enough rows for a stable fit.
  const std::size_t split = x.rows() * 3 / 4;
  std::vector<std::size_t> train_rows(split);
  std::vector<std::size_t> val_rows(x.rows() - split);
  for (std::size_t i = 0; i < split; ++i) train_rows[i] = i;
  for (std::size_t i = split; i < x.rows(); ++i) val_rows[i - split] = i;
  const auto x_train = x.take_rows(train_rows);
  const auto x_val = x.take_rows(val_rows);
  const std::vector<double> y_train(y.begin(), y.begin() + split);
  const std::vector<double> y_val(y.begin() + split, y.end());
  ScopedThreads threads(state.range(0));
  ml::GbtGrid grid;
  grid.n_estimators = {8, 16};
  grid.max_depth = {3, 6};
  grid.subsample = {1.0};
  grid.colsample = {1.0};
  for (auto _ : state) {
    const auto res = ml::grid_search(grid, x_train, y_train, x_val, y_val);
    benchmark::DoNotOptimize(res.best.val_error);
  }
  state.SetItemsProcessed(state.iterations() * 4);  // grid points
}
BENCHMARK(BM_GridSearch)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Observability overhead on the hottest instrumented path. Arg 0 runs
// with observability off (the shipping default: every IOTAX_TRACE_SPAN /
// IOTAX_OBS_* site collapses to a relaxed atomic load and branch); Arg 1
// runs with spans, counters and histograms live. Compare against
// BM_GbtFitThreaded/1: the disabled path must stay within 2%.
void BM_GbtFitObsOverhead(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  const auto x = taxonomy::feature_matrix(
      ds, {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio});
  const auto y = taxonomy::targets(ds);
  ScopedThreads threads(1);
  const bool obs_on = state.range(0) != 0;
  obs::set_enabled(obs_on);
  ml::GbtParams params;
  params.n_estimators = 32;
  params.max_depth = 6;
  for (auto _ : state) {
    ml::GradientBoostedTrees model(params);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.n_trees());
    if (obs_on) {
      // Keep the span log from growing without bound across iterations;
      // excluded from timing.
      state.PauseTiming();
      obs::TraceLog::global().reset();
      obs::MetricsRegistry::global().reset();
      state.ResumeTiming();
    }
  }
  obs::set_enabled(false);
  obs::TraceLog::global().reset();
  obs::MetricsRegistry::global().reset();
  state.SetLabel(obs_on ? "obs=on" : "obs=off");
}
BENCHMARK(BM_GbtFitObsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_FindDuplicates(benchmark::State& state) {
  const auto& ds = shared_result().dataset;
  for (auto _ : state) {
    const auto sets = taxonomy::find_duplicate_sets(ds);
    benchmark::DoNotOptimize(sets.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(ds.size()));
}
BENCHMARK(BM_FindDuplicates)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Scalar-vs-AVX2 A/B harness (--kernels_ab).

namespace kernels_ab {

namespace kn = ml::kernels;

// Pin the kernel tier for one scope; restores "auto" on exit.
class ScopedKernels {
 public:
  explicit ScopedKernels(const char* policy) {
    ::setenv("IOTAX_KERNELS", policy, 1);
    kn::refresh();
  }
  ~ScopedKernels() {
    ::unsetenv("IOTAX_KERNELS");
    kn::refresh();
  }
};

constexpr std::size_t kRows = 50000;
constexpr std::size_t kBins = 64;
constexpr std::size_t kHistFeatures = 32;
// The hist scan's vector win is the gain sweep (the scatter-add build is
// inherently scalar), so its workload is the sweep-heavy shape split
// finding actually hits: a deep tree level — many small nodes — scanning
// a high-resolution feature (per_feature_bins day-level start-time
// budgets run to kMaxBins). 64 nodes x 780 rows under 1024 bins puts
// roughly 6x more work in the sweep than in the build.
constexpr std::size_t kHistBins = 1024;
constexpr std::size_t kHistNodes = 64;
constexpr std::size_t kHistNodeRows = 780;
constexpr std::size_t kTrees = 64;
constexpr int kTreeDepth = 6;
constexpr std::size_t kTravFeatures = 16;
constexpr std::size_t kGemmRows = 4096;
constexpr std::size_t kGemmDim = 64;
constexpr int kReps = 5;

template <typename F>
double best_of_ms(F&& fn) {
  fn();  // warm-up (page in buffers, spin up the pool)
  double best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    bench::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best * 1e3;
}

// --- histogram split scan, mirroring build_tree's per-feature loop ----

struct HistWorkload {
  std::vector<std::uint16_t> cols;  // feature-major, features x total rows
  std::vector<std::size_t> order;
  std::vector<double> grad;
  std::vector<kn::FeatureScanParams> node_params;  // one per node
};

HistWorkload make_hist_workload() {
  HistWorkload w;
  std::mt19937 rng(101);
  const std::size_t total = kHistNodes * kHistNodeRows;
  std::uniform_int_distribution<int> bin(0, kHistBins - 1);
  std::normal_distribution<double> g(0.0, 2.0);
  w.cols.resize(kHistFeatures * total);
  for (auto& c : w.cols) c = static_cast<std::uint16_t>(bin(rng));
  w.order.resize(total);
  for (std::size_t i = 0; i < total; ++i) w.order[i] = i;
  w.grad.resize(total);
  for (auto& v : w.grad) v = g(rng);
  for (std::size_t node = 0; node < kHistNodes; ++node) {
    double g_total = 0.0;
    for (std::size_t i = 0; i < kHistNodeRows; ++i) {
      g_total += w.grad[node * kHistNodeRows + i];
    }
    const double h_total = static_cast<double>(kHistNodeRows);
    w.node_params.push_back(
        {g_total, h_total, 1.0, 1.0, 0.0,
         g_total * g_total / (h_total + 1.0)});
  }
  return w;
}

// One pass: scan every feature across every node of the level, results
// into per-(feature, node) slots. The parallel shape (features across
// the pool, kernel-owned per-thread scratch) is exactly gbt.cpp's
// split search.
void run_hist(const HistWorkload& w, std::vector<kn::SplitScan>* out) {
  out->assign(kHistFeatures * kHistNodes, {});
  const std::size_t total = kHistNodes * kHistNodeRows;
  util::parallel_for_chunks(kHistFeatures, [&](std::size_t lo,
                                               std::size_t hi) {
    for (std::size_t f = lo; f < hi; ++f) {
      for (std::size_t node = 0; node < kHistNodes; ++node) {
        const std::size_t row_lo = node * kHistNodeRows;
        (*out)[f * kHistNodes + node] = kn::feature_scan(
            w.cols.data() + f * total, w.order.data() + row_lo,
            kHistNodeRows, w.grad.data() + row_lo, kHistBins,
            w.node_params[node]);
      }
    }
  });
}

bool scans_identical(const std::vector<kn::SplitScan>& a,
                     const std::vector<kn::SplitScan>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].valid != b[i].valid || a[i].bin != b[i].bin ||
        std::memcmp(&a[i].gain, &b[i].gain, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// --- packed forest code traversal, mirroring predict_codes ------------

struct TravWorkload {
  kn::PackedForest forest;
  std::vector<std::uint16_t> codes;  // row-major, kRows x kTravFeatures
};

TravWorkload make_trav_workload() {
  TravWorkload w;
  std::mt19937 rng(202);
  using NodeDesc = kn::PackedForest::NodeDesc;
  std::normal_distribution<double> leaf(0.0, 1.0);
  for (std::size_t t = 0; t < kTrees; ++t) {
    std::vector<NodeDesc> nodes;
    nodes.push_back({});
    std::vector<std::pair<int, int>> stack = {{0, kTreeDepth}};
    while (!stack.empty()) {
      const auto [idx, d] = stack.back();
      stack.pop_back();
      auto& n = nodes[static_cast<std::size_t>(idx)];
      if (d == 0 || rng() % 5 == 0) {
        n.feature = -1;
        n.split_bin = -1;
        n.left = n.right = -1;
        n.value = leaf(rng);
        continue;
      }
      n.feature = static_cast<int>(rng() % kTravFeatures);
      n.split_bin = static_cast<int>(rng() % (kBins - 1));
      n.threshold = static_cast<double>(n.split_bin);
      n.left = static_cast<int>(nodes.size());
      n.right = n.left + 1;
      nodes.push_back({});
      nodes.push_back({});
      stack.push_back({n.left, d - 1});
      stack.push_back({n.right, d - 1});
    }
    w.forest.add_tree(nodes, /*with_codes=*/true);
  }
  w.codes.resize(kRows * kTravFeatures);
  for (auto& c : w.codes) c = static_cast<std::uint16_t>(rng() % kBins);
  return w;
}

void run_trav(const TravWorkload& w, std::vector<double>* out) {
  out->assign(kRows, 0.0);
  util::parallel_for_chunks(
      kRows,
      [&](std::size_t lo, std::size_t hi) {
        w.forest.predict_codes(w.codes.data() + lo * kTravFeatures,
                               kTravFeatures, hi - lo, out->data() + lo);
      },
      /*grain=*/256);
}

// --- dense GEMM, mirroring Mlp::forward_batch --------------------------

struct GemmWorkload {
  std::vector<double> in;    // kGemmRows x kGemmDim
  std::vector<double> w;     // kGemmDim x kGemmDim
  std::vector<double> bias;  // kGemmDim
};

GemmWorkload make_gemm_workload() {
  GemmWorkload w;
  std::mt19937 rng(303);
  std::normal_distribution<double> d(0.0, 1.0);
  w.in.resize(kGemmRows * kGemmDim);
  w.w.resize(kGemmDim * kGemmDim);
  w.bias.resize(kGemmDim);
  for (auto& v : w.in) v = d(rng);
  for (auto& v : w.w) v = d(rng);
  for (auto& v : w.bias) v = d(rng);
  return w;
}

void run_gemm(const GemmWorkload& w, std::vector<double>* out) {
  out->assign(kGemmRows * kGemmDim, 0.0);
  util::parallel_for_chunks(
      kGemmRows,
      [&](std::size_t lo, std::size_t hi) {
        kn::dense_forward(w.in.data() + lo * kGemmDim, hi - lo, kGemmDim,
                          w.w.data(), w.bias.data(), kGemmDim,
                          out->data() + lo * kGemmDim);
      },
      /*grain=*/64);
}

struct AbResult {
  double scalar_ms[2];  // [0] = 1 thread, [1] = 4 threads
  double avx2_ms[2];
  bool identical = true;
};

struct KernelAb {
  const char* name;
  AbResult result;
};

// Time one kernel under both tiers and both thread counts; identity is
// every output against the scalar single-thread reference.
template <typename OutT, typename RunFn, typename EqFn>
AbResult ab_kernel(const RunFn& run, const EqFn& eq) {
  AbResult r;
  OutT reference;
  {
    ScopedKernels tier("scalar");
    ScopedThreads threads(1);
    run(&reference);
  }
  const long thread_counts[2] = {1, 4};
  for (int ti = 0; ti < 2; ++ti) {
    ScopedThreads threads(thread_counts[ti]);
    {
      ScopedKernels tier("scalar");
      OutT out;
      r.scalar_ms[ti] = best_of_ms([&] { run(&out); });
      r.identical = r.identical && eq(reference, out);
    }
    {
      ScopedKernels tier("avx2");
      OutT out;
      r.avx2_ms[ti] = best_of_ms([&] { run(&out); });
      r.identical = r.identical && eq(reference, out);
    }
  }
  return r;
}

bool doubles_identical(const std::vector<double>& a,
                       const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

int run_kernels_ab() {
  bench::banner("SIMD kernel A/B (scalar vs AVX2)",
                "histogram scan / packed traversal / dense GEMM");
  const bool avx2_active = kn::avx2_compiled() && kn::avx2_supported();
  std::printf("dispatch: %s\n", kn::describe().c_str());
  if (!avx2_active) {
    std::printf("AVX2 tier unavailable; A/B degenerates to scalar/scalar\n");
  }

  const auto hist_w = make_hist_workload();
  const auto hist = ab_kernel<std::vector<kn::SplitScan>>(
      [&](std::vector<kn::SplitScan>* out) { run_hist(hist_w, out); },
      scans_identical);

  const auto trav_w = make_trav_workload();
  const auto trav = ab_kernel<std::vector<double>>(
      [&](std::vector<double>* out) { run_trav(trav_w, out); },
      doubles_identical);

  const auto gemm_w = make_gemm_workload();
  const auto gemm = ab_kernel<std::vector<double>>(
      [&](std::vector<double>* out) { run_gemm(gemm_w, out); },
      doubles_identical);

  const KernelAb kernels[] = {
      {"hist", hist}, {"traversal", trav}, {"gemm", gemm}};
  bool identical = true;
  std::printf("%-10s %4s %12s %12s %9s %6s\n", "kernel", "thr", "scalar_ms",
              "avx2_ms", "speedup", "ident");
  for (const auto& k : kernels) {
    identical = identical && k.result.identical;
    for (int ti = 0; ti < 2; ++ti) {
      std::printf("%-10s %4d %12.2f %12.2f %8.2fx %6s\n", k.name,
                  ti == 0 ? 1 : 4, k.result.scalar_ms[ti],
                  k.result.avx2_ms[ti],
                  k.result.scalar_ms[ti] / k.result.avx2_ms[ti],
                  k.result.identical ? "yes" : "NO");
    }
  }

  FILE* out = std::fopen("BENCH_kernels.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"rows\": %zu,\n"
                 "  \"dispatch\": \"%s\",\n"
                 "  \"avx2_active\": %s,\n"
                 "  \"identical\": %s",
                 kRows, kn::describe().c_str(), avx2_active ? "true" : "false",
                 identical ? "true" : "false");
    for (const auto& k : kernels) {
      std::fprintf(
          out,
          ",\n"
          "  \"%s\": {\n"
          "    \"t1\": {\"scalar_ms\": %.2f, \"avx2_ms\": %.2f, "
          "\"speedup\": %.3f},\n"
          "    \"t4\": {\"scalar_ms\": %.2f, \"avx2_ms\": %.2f, "
          "\"speedup\": %.3f}\n"
          "  }",
          k.name, k.result.scalar_ms[0], k.result.avx2_ms[0],
          k.result.scalar_ms[0] / k.result.avx2_ms[0], k.result.scalar_ms[1],
          k.result.avx2_ms[1], k.result.scalar_ms[1] / k.result.avx2_ms[1]);
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_kernels.json\n");
  }
  std::printf("tiers bit-identical   %s\n", identical ? "PASS" : "FAIL");
  return identical ? 0 : 1;
}

}  // namespace kernels_ab

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--kernels_ab") {
      return kernels_ab::run_kernels_ab();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
