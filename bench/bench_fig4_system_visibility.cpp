// Fig. 4 + §VII ("T3"): system-visibility ladder. For each system, a
// tuned application-feature model is compared against (1) the start-time
// golden model — the litmus-2 estimate of the app+system bound — and,
// where the site collects it, (2) a model enriched with real LMT
// telemetry. Paper: on Cori 16.49% -> 10.02% (time, -40%) and -> 9.96%
// (LMT); on Theta the time feature removes 30.8% of error.
#include <cmath>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/split.hpp"
#include "src/ml/gbt.hpp"
#include "src/stats/descriptive.hpp"
#include "src/taxonomy/litmus.hpp"

int main() {
  using namespace iotax;
  bench::banner("System visibility: +start-time and +LMT (both systems)",
                "Fig. 4; text §VII: Cori -40% with time, LMT reaches the "
                "litmus-2 bound; Theta -30.8%");
  bench::Timer timer;

  for (const auto& cfg : {sim::theta_like(), sim::cori_like()}) {
    const auto res = sim::simulate(cfg);
    const auto& ds = res.dataset;
    util::Rng rng(41);
    const auto split = data::random_split(ds.size(), 0.6, 0.15, rng);
    const std::vector<taxonomy::FeatureSet> app_feats = {
        taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
    ml::GbtParams params;
    params.n_estimators = 64;
    params.max_depth = 10;

    const auto sys = taxonomy::litmus_system_bound(ds, split, app_feats,
                                                   params);
    std::printf("--- %s ---\n", cfg.name.c_str());
    std::printf("%-24s %10s %12s\n", "model", "err(%)", "vs app-only");
    std::printf("%-24s %10.2f %12s\n", "app features (Darshan)",
                bench::pct(sys.err_app_only), "");
    std::printf("%-24s %10.2f %+11.1f%%\n", "+ start time (golden)",
                bench::pct(sys.err_with_time),
                -sys.reduction_frac * 100.0);

    if (cfg.platform.lmt_enabled) {
      auto lmt_feats = app_feats;
      lmt_feats.push_back(taxonomy::FeatureSet::kLmt);
      ml::GbtParams pl = params;
      pl.n_estimators = 128;
      ml::GradientBoostedTrees model(pl);
      model.fit(taxonomy::feature_matrix(ds, lmt_feats, split.train),
                taxonomy::targets(ds, split.train));
      const double err = ml::median_abs_log_error(
          taxonomy::targets(ds, split.test),
          model.predict(taxonomy::feature_matrix(ds, lmt_feats,
                                                 split.test)));
      std::printf("%-24s %10.2f %+11.1f%%\n", "+ LMT telemetry",
                  bench::pct(err),
                  (err - sys.err_app_only) / sys.err_app_only * 100.0);
      const double gap =
          std::fabs(err - sys.err_with_time) / sys.err_with_time;
      std::printf("shape check: LMT lands within 25%% of the litmus-2 "
                  "bound (paper: 9.96%% vs 10.02%%): %s (gap %.0f%%)\n",
                  gap < 0.25 ? "PASS" : "MISS", gap * 100.0);
    } else {
      std::printf("%-24s %10s\n", "+ LMT telemetry",
                  "n/a (site does not collect LMT)");
    }
    std::printf("shape check: start time removes 15-60%% of error "
                "(paper: 30.8-40%%): %s\n\n",
                sys.reduction_frac > 0.15 && sys.reduction_frac < 0.60
                    ? "PASS"
                    : "MISS");
  }
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
