// Ablation A4: uncertainty estimators against simulator ground truth.
// Per-job aleatory sigma is known exactly in this repo:
//   sigma_true(job) = platform.noise_sigma * app.noise_sensitivity
//   (plus the contention jitter spread, which AU estimators also absorb).
// We compare the deep ensemble's AU (AutoDEUQ style, §VIII) with the
// tree-based residual-variance estimator, both on calibration (does
// predicted sigma track true sigma across apps?) and on ranking (are
// high-noise apps ranked noisier?).
#include <cmath>
#include <map>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/split.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/uq_gbt.hpp"
#include "src/stats/descriptive.hpp"

int main() {
  using namespace iotax;
  bench::banner("UQ estimator ablation (Theta-like)",
                "ensemble AU vs tree residual-variance vs ground truth");
  bench::Timer timer;

  const auto res = sim::simulate(sim::theta_like());
  const auto& ds = res.dataset;
  std::map<std::uint64_t, double> true_sens;
  for (const auto& app : res.catalog) {
    true_sens[app.app_id] = app.noise_sensitivity;
  }

  util::Rng rng(53);
  auto split = data::random_split(ds.size(), 0.7, 0.0, rng);
  if (split.train.size() > util::scaled_count(5000, 2000)) {
    split.train.resize(util::scaled_count(5000, 2000));
  }
  if (split.test.size() > util::scaled_count(3000, 1000)) {
    split.test.resize(util::scaled_count(3000, 1000));
  }
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  const auto x_train = taxonomy::feature_matrix(ds, feats, split.train);
  const auto y_train = taxonomy::targets(ds, split.train);
  const auto x_test = taxonomy::feature_matrix(ds, feats, split.test);

  // Estimator 1: deep ensemble (AutoDEUQ stand-in).
  ml::EnsembleParams ens_params;
  ens_params.size = 5;
  ens_params.epochs = 25;
  ml::DeepEnsemble ensemble(ens_params);
  ensemble.fit(x_train, y_train);
  const auto ens_pred = ensemble.predict_uncertainty(x_test);

  // Estimator 2: GBT mean + GBT residual variance.
  ml::GbtParams mean_p;
  mean_p.n_estimators = 96;
  mean_p.max_depth = 8;
  ml::GbtParams var_p;
  var_p.n_estimators = 64;
  var_p.max_depth = 4;
  ml::GbtUncertainty tree_uq(mean_p, var_p);
  tree_uq.fit(x_train, y_train);
  const auto tree_pred = tree_uq.predict_dist(x_test);

  // Ground truth per test job: the *aleatory-only* sigma. Model error
  // also contains app/system modeling error, so predicted AU should sit
  // at or above this value.
  std::vector<double> sigma_true(split.test.size());
  std::vector<double> sigma_ens(split.test.size());
  std::vector<double> sigma_tree(split.test.size());
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    const auto& m = ds.meta[split.test[i]];
    sigma_true[i] = res.config.platform.noise_sigma_log10 *
                    true_sens.at(m.app_id);
    sigma_ens[i] = std::sqrt(ens_pred.aleatory[i]);
    sigma_tree[i] = std::sqrt(tree_pred.variance[i]);
  }

  std::printf("per-job sigma (log10 units):\n");
  std::printf("%-22s %10s %10s %10s\n", "", "median", "p10", "p90");
  const auto row = [](const char* name, std::span<const double> v) {
    std::printf("%-22s %10.4f %10.4f %10.4f\n", name, stats::median(v),
                stats::quantile(v, 0.1), stats::quantile(v, 0.9));
  };
  row("ground-truth noise", sigma_true);
  row("ensemble AU", sigma_ens);
  row("tree residual-var", sigma_tree);

  const double corr_ens = stats::correlation(sigma_true, sigma_ens);
  const double corr_tree = stats::correlation(sigma_true, sigma_tree);
  std::printf("\ncorrelation with ground-truth sigma: ensemble %.3f, "
              "tree %.3f\n",
              corr_ens, corr_tree);

  const bool ens_floor = stats::median(sigma_ens) >=
                         0.8 * stats::median(sigma_true);
  const bool tree_floor = stats::median(sigma_tree) >=
                          0.8 * stats::median(sigma_true);
  std::printf("shape check: both estimators sit at or above the true "
              "noise floor: %s\n",
              ens_floor && tree_floor ? "PASS" : "MISS");
  std::printf("shape check: the ensemble ranks noisy jobs correctly "
              "(corr > 0.1): %s\n",
              corr_ens > 0.1 ? "PASS" : "MISS");
  std::printf("shape check: the ensemble isolates noise sensitivity "
              "better than the residual tree (ablation finding — the "
              "tree's AU conflates modeling residual with noise): %s\n",
              corr_ens > corr_tree + 0.1 ? "PASS" : "MISS");
  std::printf("note: only the ensemble also yields epistemic uncertainty "
              "(median EU sigma %.4f here) — trees cannot flag OoD jobs.\n",
              stats::median(std::vector<double>{
                  [&] {
                    std::vector<double> eu(split.test.size());
                    for (std::size_t i = 0; i < eu.size(); ++i) {
                      eu[i] = std::sqrt(ens_pred.epistemic[i]);
                    }
                    return stats::median(eu);
                  }()}));
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
