// Fig. 5 + §VIII ("T4"): distribution of aleatory (AU) and epistemic
// (EU) uncertainty from an AutoDEUQ-style deep ensemble, with
// inverse-cumulative error marginals. Paper findings to reproduce:
// AU dominates EU on in-distribution test data; a small EU tail (OoD
// jobs, ~0.7% on Theta) carries ~3x the average error; and ground-truth
// novel applications concentrate in that tail.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/ml/ensemble.hpp"
#include "src/stats/descriptive.hpp"
#include "src/taxonomy/litmus.hpp"

int main() {
  using namespace iotax;
  bench::banner("Aleatory vs epistemic uncertainty (Theta-like)",
                "Fig. 5; text §VIII: AU >> EU; OoD tail carries ~3x error");
  bench::Timer timer;

  const auto res = sim::simulate(sim::theta_like());
  const auto& ds = res.dataset;
  // Train on the pre-cutoff period; evaluate on deployment data, where
  // novel applications exist.
  auto train_rows = ds.rows_in_window(0.0, res.train_cutoff_time);
  auto test_rows = ds.rows_in_window(res.train_cutoff_time, 1e300);
  util::Rng rng(43);
  rng.shuffle(train_rows);
  rng.shuffle(test_rows);
  if (train_rows.size() > util::scaled_count(4000, 1500)) {
    train_rows.resize(util::scaled_count(4000, 1500));
  }
  if (test_rows.size() > util::scaled_count(3000, 1000)) {
    test_rows.resize(util::scaled_count(3000, 1000));
  }

  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  ml::EnsembleParams params;
  params.size = 6;
  params.epochs = 25;
  ml::DeepEnsemble ensemble(params);
  ensemble.fit(taxonomy::feature_matrix(ds, feats, train_rows),
               taxonomy::targets(ds, train_rows));
  const auto uq = ensemble.predict_uncertainty(
      taxonomy::feature_matrix(ds, feats, test_rows));
  const auto y = taxonomy::targets(ds, test_rows);

  std::vector<double> au(uq.aleatory.size());
  std::vector<double> eu(uq.epistemic.size());
  std::vector<double> abs_err(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    au[i] = std::sqrt(uq.aleatory[i]);   // report in sigma units
    eu[i] = std::sqrt(uq.epistemic[i]);
    abs_err[i] = std::fabs(uq.mean[i] - y[i]);
  }

  std::printf("AU (sigma): median %.4f  p90 %.4f\n", stats::median(au),
              stats::quantile(au, 0.9));
  std::printf("EU (sigma): median %.4f  p90 %.4f\n", stats::median(eu),
              stats::quantile(eu, 0.9));

  // 2D density (EU on x, AU on y), like the paper's scatter.
  constexpr std::size_t kB = 10;
  const double au_hi = stats::quantile(au, 0.99);
  const double eu_hi = std::max(stats::quantile(eu, 0.99), 1e-6);
  std::vector<std::vector<std::size_t>> grid(kB,
                                             std::vector<std::size_t>(kB, 0));
  for (std::size_t i = 0; i < au.size(); ++i) {
    const auto bx = std::min(
        kB - 1, static_cast<std::size_t>(eu[i] / eu_hi * kB));
    const auto by = std::min(
        kB - 1, static_cast<std::size_t>(au[i] / au_hi * kB));
    ++grid[by][bx];
  }
  const char* shades = " .:-=+*#%@";
  std::printf("\ndensity (x: EU 0..%.3f, y: AU 0..%.3f)\n", eu_hi, au_hi);
  for (std::size_t r = kB; r-- > 0;) {
    std::printf("  |");
    for (std::size_t c = 0; c < kB; ++c) {
      const auto s = static_cast<std::size_t>(std::min<double>(
          9.0, std::log1p(static_cast<double>(grid[r][c])) * 1.8));
      std::printf("%c", shades[s]);
    }
    std::printf("|\n");
  }

  // Inverse cumulative error vs EU (the paper's marginal): what share of
  // total error comes from jobs with EU below x.
  std::vector<std::size_t> order(eu.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&eu](std::size_t a, std::size_t b) { return eu[a] < eu[b]; });
  double total_err = 0.0;
  for (const auto e : abs_err) total_err += e;
  std::printf("\ninverse cumulative error vs EU:\n");
  double running = 0.0;
  std::size_t next_mark = 1;
  for (std::size_t k = 0; k < order.size(); ++k) {
    running += abs_err[order[k]];
    while (next_mark <= 9 &&
           running >= total_err * static_cast<double>(next_mark) / 10.0) {
      std::printf("  %3.0f%% of error below EU=%.4f (%.1f%% of jobs)\n",
                  static_cast<double>(next_mark) * 10.0, eu[order[k]],
                  100.0 * static_cast<double>(k + 1) /
                      static_cast<double>(order.size()));
      ++next_mark;
    }
  }

  // Litmus 3: OoD attribution + ground-truth check.
  const auto ood = taxonomy::litmus_ood(
      std::vector<double>(eu.begin(), eu.end()), abs_err);
  std::size_t novel_total = 0;
  std::size_t novel_flagged = 0;
  std::vector<double> eu_novel;
  std::vector<double> eu_known;
  for (std::size_t i = 0; i < test_rows.size(); ++i) {
    const bool novel = ds.meta[test_rows[i]].novel_app;
    novel_total += novel;
    if (novel) {
      eu_novel.push_back(eu[i]);
    } else {
      eu_known.push_back(eu[i]);
    }
    if (novel && ood.is_ood[i]) ++novel_flagged;
  }
  std::printf("\nOoD litmus: threshold EU=%.4f flags %.2f%% of jobs "
              "carrying %.2f%% of error (%.1fx average; paper: ~3x)\n",
              ood.eu_threshold, ood.frac_ood * 100.0,
              ood.error_share_ood * 100.0, ood.error_ratio);
  if (novel_total > 0 && !eu_novel.empty() && !eu_known.empty()) {
    std::printf("ground truth: %zu novel-app jobs in test; median EU %.4f "
                "vs %.4f for known apps; %zu flagged\n",
                novel_total, stats::median(eu_novel),
                stats::median(eu_known), novel_flagged);
    std::printf("shape check: novel apps have higher EU: %s\n",
                stats::median(eu_novel) > stats::median(eu_known) ? "PASS"
                                                                  : "MISS");
  }
  std::printf("shape check: AU dominates EU (median AU > 2x median EU): "
              "%s\n",
              stats::median(au) > 2.0 * stats::median(eu) ? "PASS" : "MISS");
  std::printf("shape check: flagged jobs carry >=2x average error: %s\n",
              ood.error_ratio >= 2.0 ? "PASS" : "MISS");
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
