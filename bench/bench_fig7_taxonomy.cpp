// Fig. 7 + §X ("T1", "T6"): the complete five-step taxonomy framework
// applied to both systems, ending in the pie-chart attribution of
// baseline model error. Paper shapes to reproduce: duplicate stats
// (Theta 23.5% in 3509 sets; Cori 54% in 77390 sets — scaled down
// here), aleatory (contention+noise) as the dominant or near-dominant
// slice, a small OoD slice, and a double-digit unexplained remainder
// (Theta 32.9%, Cori 13.5%).
#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/taxonomy/pipeline.hpp"

int main() {
  using namespace iotax;
  bench::banner("Full taxonomy pipeline (both systems)",
                "Fig. 7; §X: error attribution pies for Theta and Cori");
  bench::Timer timer;

  for (const auto& cfg : {sim::theta_like(), sim::cori_like()}) {
    const auto res = sim::simulate(cfg);
    taxonomy::PipelineConfig pc;
    pc.grid.n_estimators = {32, 64, 128};
    pc.grid.max_depth = {4, 6, 8, 10};
    pc.ensemble.size = 5;
    pc.ensemble.epochs = 20;
    pc.uq_train_cap = util::scaled_count(3000, 1200);
    const auto report = taxonomy::run_taxonomy(res.dataset, pc);
    std::cout << taxonomy::render_report(report) << "\n";

    const bool aleatory_large =
        report.share_aleatory >= report.share_system &&
        report.share_aleatory >= report.share_ood &&
        report.share_aleatory > 0.15;
    std::printf("shape check: aleatory slice is large/dominant (paper: "
                "noise is the dominant error source): %s\n",
                aleatory_large ? "PASS" : "MISS");
    std::printf("shape check: unexplained remainder is positive (paper: "
                "32.9%% / 13.5%%): %s (%.1f%%)\n",
                report.share_unexplained > 0.0 ? "PASS" : "MISS",
                report.share_unexplained * 100.0);
    std::printf("shape check: tuning approaches the bound (tuned <= "
                "1.35x bound): %s\n\n",
                report.tuned_error <=
                        1.35 * report.app_bound.median_abs_error
                    ? "PASS"
                    : "MISS");
  }
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
