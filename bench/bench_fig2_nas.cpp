// Fig. 2 + §VI.B: neural architecture search results on the Cori-like
// system. Generations of MLPs approach the estimated error lower bound
// (duplicate litmus test, red line in the paper) but do not cross it,
// and only a handful of candidates improve on the best-so-far (the gold
// stars). Paper: best NN 14.3% vs bound 14.15%.
#include <algorithm>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/split.hpp"
#include "src/ml/nas.hpp"
#include "src/taxonomy/litmus.hpp"

int main() {
  using namespace iotax;
  bench::banner("Neural architecture search vs bound (Cori-like)",
                "Fig. 2; text §VI.B: NAS best 14.3% vs bound 14.15%");
  bench::Timer timer;

  const auto res = sim::simulate(sim::cori_like());
  const auto& ds = res.dataset;
  const auto bound = taxonomy::litmus_application_bound(ds);
  std::printf("estimated error lower bound (red line): %.2f%%\n\n",
              bench::pct(bound.median_abs_error));

  // NAS trains dozens of networks; cap the training rows for time.
  util::Rng rng(29);
  auto split = data::random_split(ds.size(), 0.6, 0.2, rng);
  const auto cap = [](std::vector<std::size_t>* rows, std::size_t n) {
    if (rows->size() > n) rows->resize(n);
  };
  cap(&split.train, util::scaled_count(5000, 1500));
  cap(&split.val, util::scaled_count(2500, 800));
  cap(&split.test, util::scaled_count(2500, 800));

  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  const auto x_train = taxonomy::feature_matrix(ds, feats, split.train);
  const auto y_train = taxonomy::targets(ds, split.train);
  const auto x_val = taxonomy::feature_matrix(ds, feats, split.val);
  const auto y_val = taxonomy::targets(ds, split.val);

  ml::NasParams nas;
  nas.population = 10;
  nas.generations = 5;
  nas.epochs = 12;
  nas.widths = {16, 32, 64};
  const auto result = ml::nas_search(nas, x_train, y_train, x_val, y_val);

  std::printf("%5s %10s %8s %6s  %s\n", "gen", "val err(%)", "arch",
              "best?", "distance above bound");
  const double ref = bound.median_abs_error;
  for (const auto& cand : result.history) {
    std::string arch;
    for (const auto w : cand.params.hidden) {
      if (!arch.empty()) arch += "x";
      arch += std::to_string(w);
    }
    std::printf("%5zu %10.2f %8s %6s  %s\n", cand.generation,
                bench::pct(cand.val_error), arch.c_str(),
                cand.improved_best ? "*" : "",
                bench::bar(cand.val_error - ref, ref).c_str());
  }

  // Test error of the winner, retrained with a bigger epoch budget.
  ml::MlpParams final_params = result.best.params;
  final_params.epochs = 40;
  ml::Mlp final_model(final_params);
  final_model.fit(x_train, y_train);
  const auto y_test = taxonomy::targets(ds, split.test);
  const double test_err = ml::median_abs_log_error(
      y_test,
      final_model.predict(taxonomy::feature_matrix(ds, feats, split.test)));

  const std::size_t n_stars = static_cast<std::size_t>(std::count_if(
      result.history.begin(), result.history.end(),
      [](const ml::NasCandidate& c) { return c.improved_best; }));
  std::printf("\nbest architecture: %s, val %.2f%%; retrained test error "
              "%.2f%% vs bound %.2f%%\n",
              result.best.params.to_string().c_str(),
              bench::pct(result.best.val_error), bench::pct(test_err),
              bench::pct(bound.median_abs_error));
  std::printf("best-so-far improvements (gold stars): %zu of %zu candidates "
              "(paper: 6)\n",
              n_stars, result.history.size());
  std::printf("shape check: NAS approaches but does not beat the bound: %s\n",
              test_err >= bound.median_abs_error * 0.95 ? "PASS" : "MISS");
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
