// Fig. 1(e) + §IX.A: joint distribution of duplicate-pair start-time gap
// (Δt) and throughput gap (Δφ), weighted so large sets are not
// overrepresented. The vertical strip at Δt≈0 (batched submissions) is
// the input to the noise litmus test.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/stats/descriptive.hpp"
#include "src/stats/histogram.hpp"
#include "src/taxonomy/duplicates.hpp"

int main() {
  using namespace iotax;
  bench::banner("Duplicate-pair dt x dphi scatter (Cori-like)",
                "Fig. 1(e): concurrent strip + growing spread with dt");
  bench::Timer timer;

  const auto res = sim::simulate(sim::cori_like());
  const auto& ds = res.dataset;
  const auto sets = taxonomy::find_duplicate_sets(ds);
  const auto pairs = taxonomy::duplicate_pairs(ds, sets);
  std::printf("duplicate pairs: %zu from %zu sets\n\n", pairs.size(),
              sets.size());

  // 2D histogram: log-spaced dt columns x linear dphi rows.
  const auto dt_edges = stats::log_bin_edges(1.0, 3.16e7, 8);
  constexpr double kPhiLim = 0.25;
  constexpr std::size_t kPhiBins = 13;
  std::vector<std::vector<double>> weight(
      kPhiBins, std::vector<double>(dt_edges.size(), 0.0));
  std::vector<double> col_weight(dt_edges.size(), 0.0);
  for (const auto& p : pairs) {
    // Column 0 holds the concurrent strip (dt below the first edge).
    std::size_t col = 0;
    while (col + 1 < dt_edges.size() && p.dt >= dt_edges[col]) ++col;
    double f = (p.dphi + kPhiLim) / (2.0 * kPhiLim);
    f = std::clamp(f, 0.0, 0.999);
    const auto row = static_cast<std::size_t>(f * kPhiBins);
    weight[row][col] += p.weight;
    col_weight[col] += p.weight;
  }

  std::printf("column-normalised density (rows: dphi, cols: dt)\n");
  std::printf("%9s |", "dphi\\dt");
  std::printf("  <1s");
  for (std::size_t c = 1; c < dt_edges.size(); ++c) {
    std::printf(" %4.0es", dt_edges[c - 1]);
  }
  std::printf("\n");
  const char* shades = " .:-=+*#%@";
  for (std::size_t r = kPhiBins; r-- > 0;) {
    const double phi_center =
        -kPhiLim + (static_cast<double>(r) + 0.5) / kPhiBins * 2.0 * kPhiLim;
    std::printf("%+9.3f |", phi_center);
    for (std::size_t c = 0; c < dt_edges.size(); ++c) {
      const double d =
          col_weight[c] > 0.0 ? weight[r][c] / col_weight[c] : 0.0;
      const auto shade = static_cast<std::size_t>(
          std::min(9.0, d * 25.0));
      std::printf("    %c  ", shades[shade]);
    }
    std::printf("\n");
  }

  // Concurrent strip stats vs all pairs (the paper's 5%+ observation).
  std::vector<double> strip;
  std::vector<double> strip_w;
  for (const auto& p : pairs) {
    if (p.dt <= 1.0) {
      strip.push_back(std::fabs(p.dphi));
      strip_w.push_back(p.weight);
    }
  }
  if (!strip.empty()) {
    const double med = stats::weighted_quantile(strip, strip_w, 0.5);
    std::printf("\nconcurrent (dt<=1s) pairs: %zu, median |dphi| = %.4f "
                "log10 = %.2f%% throughput difference\n",
                strip.size(), med, bench::pct(med));
    std::printf("shape check: simultaneous identical jobs often differ "
                ">=3%% (paper: 5%% or more): %s\n",
                bench::pct(med) >= 3.0 ? "PASS" : "MISS");
  }
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
