// A/B harness for the zero-copy data path: runs the five-step taxonomy
// framework twice on the same simulated Theta-like dataset — once
// through a replica of the materializing copy path (one feature matrix
// per split side and per litmus step, as the pipeline worked before
// MatrixView/DatasetView) and once through the view path — then checks
// the two reports are bit-identical and writes BENCH_pipeline.json
// with wall time, hyperparameter-search time, and peak materialized
// bytes for each path. Dataset size honours IOTAX_SCALE; thread count
// honours IOTAX_THREADS.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/footprint.hpp"
#include "src/data/split.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/search.hpp"
#include "src/taxonomy/litmus.hpp"
#include "src/taxonomy/pipeline.hpp"

namespace iotax {
namespace {

// The seed pipeline, pre-views: every model input is a feature_matrix
// copy, and the litmus steps re-materialize their own. Kept as the
// measured memory/runtime baseline for the view path.
taxonomy::TaxonomyReport run_copy_path(const data::Dataset& ds,
                                       const taxonomy::PipelineConfig& config,
                                       double* search_seconds) {
  taxonomy::TaxonomyReport report;
  report.system = ds.system_name;
  report.n_jobs = ds.size();
  util::Rng split_rng(config.split_seed);
  report.split = data::random_split(ds.size(), config.train_frac,
                                    config.val_frac, split_rng);
  const auto& split = report.split;

  const auto x_train =
      taxonomy::feature_matrix(ds, config.app_features, split.train);
  const auto y_train = taxonomy::targets(ds, split.train);
  const auto x_val =
      taxonomy::feature_matrix(ds, config.app_features, split.val);
  const auto y_val = taxonomy::targets(ds, split.val);
  const auto x_test =
      taxonomy::feature_matrix(ds, config.app_features, split.test);
  const auto y_test = taxonomy::targets(ds, split.test);

  {
    ml::GradientBoostedTrees baseline;
    baseline.fit(x_train, y_train);
    report.baseline_error =
        ml::median_abs_log_error(y_test, baseline.predict(x_test));
  }
  report.app_bound = taxonomy::litmus_application_bound(ds);
  {
    bench::Timer timer;
    const auto search =
        ml::grid_search(config.grid, x_train, y_train, x_val, y_val);
    *search_seconds = timer.seconds();
    report.tuned_params = search.best.params;
    ml::GradientBoostedTrees tuned(report.tuned_params);
    tuned.fit(x_train, y_train);
    report.tuned_error =
        ml::median_abs_log_error(y_test, tuned.predict(x_test));
  }
  report.system_bound = taxonomy::litmus_system_bound(
      ds, split, config.app_features, report.tuned_params);
  if (ds.features.has_column("LMT_OSS_CPU_MEAN")) {
    auto enriched_sets = config.app_features;
    enriched_sets.push_back(taxonomy::FeatureSet::kLmt);
    ml::GbtParams params = report.tuned_params;
    params.n_estimators = std::max<std::size_t>(params.n_estimators * 2, 128);
    ml::GradientBoostedTrees model(params);
    model.fit(taxonomy::feature_matrix(ds, enriched_sets, split.train),
              y_train);
    report.lmt_enriched_error = ml::median_abs_log_error(
        y_test, model.predict(
                    taxonomy::feature_matrix(ds, enriched_sets, split.test)));
  }
  std::vector<bool> exclude(ds.size(), false);
  if (config.run_uq) {
    std::vector<std::size_t> uq_rows = split.train;
    if (uq_rows.size() > config.uq_train_cap) {
      uq_rows.erase(uq_rows.begin(),
                    uq_rows.end() - static_cast<long>(config.uq_train_cap));
    }
    ml::DeepEnsemble ensemble(config.ensemble);
    ensemble.fit(taxonomy::feature_matrix(ds, config.app_features, uq_rows),
                 taxonomy::targets(ds, uq_rows));
    const auto uq = ensemble.predict_uncertainty(x_test);
    std::vector<double> abs_err(y_test.size());
    for (std::size_t i = 0; i < y_test.size(); ++i) {
      abs_err[i] = std::fabs(uq.mean[i] - y_test[i]);
    }
    report.ood = taxonomy::litmus_ood(uq.epistemic, abs_err);
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      if (report.ood->is_ood[i]) exclude[split.test[i]] = true;
    }
  }
  report.noise = taxonomy::litmus_noise_bound(ds, config.dt_window, &exclude);

  const double base = std::max(report.baseline_error, 1e-12);
  const auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };
  report.share_app =
      clamp01((report.baseline_error - report.app_bound.median_abs_error) /
              base);
  report.share_app_realized =
      clamp01((report.baseline_error - report.tuned_error) / base);
  report.share_system =
      clamp01((report.app_bound.median_abs_error -
               report.system_bound.err_with_time) /
              base);
  if (report.lmt_enriched_error.has_value()) {
    report.share_system_realized =
        clamp01((report.tuned_error - *report.lmt_enriched_error) / base);
  }
  if (report.ood.has_value()) {
    report.share_ood = clamp01(report.ood->error_share_ood *
                               report.system_bound.err_with_time / base);
  }
  report.share_aleatory = clamp01(report.noise.median_abs_error / base);
  report.share_unexplained =
      clamp01(1.0 - report.share_app - report.share_system -
              report.share_ood - report.share_aleatory);
  return report;
}

bool reports_identical(const taxonomy::TaxonomyReport& a,
                       const taxonomy::TaxonomyReport& b) {
  return a.baseline_error == b.baseline_error &&
         a.tuned_error == b.tuned_error &&
         a.app_bound.median_abs_error == b.app_bound.median_abs_error &&
         a.system_bound.err_with_time == b.system_bound.err_with_time &&
         a.noise.median_abs_error == b.noise.median_abs_error &&
         a.share_unexplained == b.share_unexplained;
}

}  // namespace
}  // namespace iotax

int main() {
  using namespace iotax;
  bench::banner("Zero-copy data path A/B (taxonomy pipeline)",
                "memory/runtime harness for the MatrixView refactor");

  const auto res = sim::simulate(sim::theta_like());
  const auto& ds = res.dataset;
  taxonomy::PipelineConfig pc;
  pc.uq_train_cap = util::scaled_count(3000, 1200);

  const char* threads_env = std::getenv("IOTAX_THREADS");
  const int threads = threads_env != nullptr ? std::atoi(threads_env) : 0;

  data::footprint::reset_peak();
  double copy_search_s = 0.0;
  bench::Timer copy_timer;
  const auto copy_report = run_copy_path(ds, pc, &copy_search_s);
  const double copy_wall_s = copy_timer.seconds();
  const auto copy_peak = data::footprint::peak_bytes();

  data::footprint::reset_peak();
  bench::Timer view_timer;
  const auto view_report = taxonomy::run_taxonomy(ds, pc);
  const double view_wall_s = view_timer.seconds();
  const auto view_peak = data::footprint::peak_bytes();

  // Search-only A/B on identical candidates: table-backed views vs
  // materialized matrices as the training/validation input.
  double view_search_s = 0.0;
  {
    util::Rng rng(pc.split_seed);
    const auto split =
        data::random_split(ds.size(), pc.train_frac, pc.val_frac, rng);
    std::vector<std::size_t> ct, rt, cv, rv;
    const auto xt =
        taxonomy::feature_view(ds, pc.app_features, &ct, &rt, split.train);
    const auto xv =
        taxonomy::feature_view(ds, pc.app_features, &cv, &rv, split.val);
    const auto y_train = taxonomy::targets(ds, split.train);
    const auto y_val = taxonomy::targets(ds, split.val);
    bench::Timer timer;
    ml::grid_search(pc.grid, xt, y_train, xv, y_val);
    view_search_s = timer.seconds();
  }

  const bool identical = reports_identical(copy_report, view_report);
  const double reduction =
      view_peak > 0 ? static_cast<double>(copy_peak) /
                          static_cast<double>(view_peak)
                    : 0.0;

  std::printf("jobs                  %zu\n", ds.size());
  std::printf("copy path    wall %.2fs  search %.2fs  peak %zu bytes\n",
              copy_wall_s, copy_search_s, copy_peak);
  std::printf("view path    wall %.2fs  search %.2fs  peak %zu bytes\n",
              view_wall_s, view_search_s, view_peak);
  std::printf("peak reduction        %.2fx\n", reduction);
  std::printf("reports bit-identical %s\n", identical ? "PASS" : "FAIL");

  FILE* out = std::fopen("BENCH_pipeline.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"jobs\": %zu,\n"
        "  \"threads\": %d,\n"
        "  \"baseline_error\": %.17g,\n"
        "  \"copy\": {\"wall_ms\": %.1f, \"search_ms\": %.1f, "
        "\"peak_materialized_bytes\": %zu},\n"
        "  \"view\": {\"wall_ms\": %.1f, \"search_ms\": %.1f, "
        "\"peak_materialized_bytes\": %zu},\n"
        "  \"peak_reduction_factor\": %.2f,\n"
        "  \"reports_bit_identical\": %s\n"
        "}\n",
        ds.size(), threads, view_report.baseline_error, copy_wall_s * 1e3,
        copy_search_s * 1e3, copy_peak, view_wall_s * 1e3, view_search_s * 1e3,
        view_peak, reduction, identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_pipeline.json\n");
  }
  return identical ? 0 : 1;
}
