// Fig. 1(c) + §VIII: generalization error after deployment. A model is
// trained on the training period; its median error on held-out
// same-period data (paper: green line) is compared with its error on
// data collected after the training period (red line), bucketed by
// month. Novel applications appear only after the cutoff; their share
// and error are reported separately.
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/split.hpp"
#include "src/ml/gbt.hpp"
#include "src/stats/descriptive.hpp"

int main() {
  using namespace iotax;
  bench::banner("Deployment drift (Theta-like)",
                "Fig. 1(c): error before (green) vs after (red) deployment");
  bench::Timer timer;

  const auto res = sim::simulate(sim::theta_like());
  const auto& ds = res.dataset;
  const double cutoff = res.train_cutoff_time;

  // Train on a random 80% of the pre-cutoff period; the rest of that
  // period is the "before deployment" evaluation set.
  auto in_rows = ds.rows_in_window(0.0, cutoff);
  const auto post_rows = ds.rows_in_window(cutoff, 1e300);
  util::Rng rng(17);
  rng.shuffle(in_rows);
  const std::size_t n_train = in_rows.size() * 8 / 10;
  const std::vector<std::size_t> train(in_rows.begin(),
                                       in_rows.begin() + n_train);
  const std::vector<std::size_t> held(in_rows.begin() + n_train,
                                      in_rows.end());

  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  ml::GbtParams params;
  params.n_estimators = 64;
  params.max_depth = 8;
  ml::GradientBoostedTrees model(params);
  model.fit(taxonomy::feature_matrix(ds, feats, train),
            taxonomy::targets(ds, train));

  const auto eval_rows = [&](const std::vector<std::size_t>& rows) {
    const auto y = taxonomy::targets(ds, rows);
    const auto p = model.predict(taxonomy::feature_matrix(ds, feats, rows));
    return ml::median_abs_log_error(y, p);
  };

  const double err_before = eval_rows(held);
  const double err_after = eval_rows(post_rows);
  std::printf("before deployment (held-out, green): %.2f%%\n",
              bench::pct(err_before));
  std::printf("after  deployment (red):             %.2f%%\n\n",
              bench::pct(err_after));

  // Monthly series across the whole timeline.
  const double month = 86400.0 * 30.0;
  std::printf("%8s %10s %8s %7s  %s\n", "month", "phase", "err(%)",
              "novel%", "");
  const double horizon = res.config.workload.horizon;
  std::vector<bool> is_train(ds.size(), false);
  for (const auto t : train) is_train[t] = true;
  double peak = 0.0;
  std::vector<std::tuple<int, double, double, bool>> series;
  for (int m = 0; m * month < horizon; ++m) {
    auto rows = ds.rows_in_window(m * month, (m + 1) * month);
    // Exclude training rows so pre-cutoff months are held-out too.
    std::vector<std::size_t> eval;
    for (const auto r : rows) {
      if (!is_train[r]) eval.push_back(r);
    }
    if (eval.size() < 20) continue;
    const double err = eval_rows(eval);
    std::size_t novel = 0;
    for (const auto r : eval) novel += ds.meta[r].novel_app ? 1 : 0;
    const double novel_frac =
        static_cast<double>(novel) / static_cast<double>(eval.size());
    peak = std::max(peak, err);
    series.emplace_back(m, err, novel_frac, m * month >= cutoff);
  }
  for (const auto& [m, err, novel_frac, post] : series) {
    std::printf("%8d %10s %8.2f %7.1f  %s\n", m,
                post ? "deployed" : "train-era", bench::pct(err),
                novel_frac * 100.0, bench::bar(err, peak).c_str());
  }

  // Error on ground-truth novel jobs vs the rest of the post period.
  std::vector<std::size_t> novel_rows;
  std::vector<std::size_t> known_rows;
  for (const auto r : post_rows) {
    (ds.meta[r].novel_app ? novel_rows : known_rows).push_back(r);
  }
  if (novel_rows.size() >= 10) {
    std::printf("\npost-period novel-app jobs: %zu (%.1f%%), error %.2f%% "
                "vs %.2f%% on known apps\n",
                novel_rows.size(),
                100.0 * static_cast<double>(novel_rows.size()) /
                    static_cast<double>(post_rows.size()),
                bench::pct(eval_rows(novel_rows)),
                bench::pct(eval_rows(known_rows)));
  }
  std::printf("shape check: post-deployment error above held-out error: %s\n",
              err_after > err_before ? "PASS" : "MISS");
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
