// Fig. 6 + §IX ("T5"): distributions of duplicate errors for different
// periods between duplicate runs, the Student-t fit of the Δt≈0
// distribution, and the system I/O variability bands. Paper numbers:
// Theta +-5.71% (68%) / +-10.56% (95%); Cori +-7.21% / +-14.99%; on
// Theta 70% of same-start duplicate sets have 2 jobs, 96% have <= 6; the
// concurrent distribution is Student-t rather than Normal.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/stats/histogram.hpp"
#include "src/taxonomy/litmus.hpp"

int main() {
  using namespace iotax;
  bench::banner("Duplicate error vs time separation + noise bands",
                "Fig. 6; text §IX: Theta +-5.71%/10.56%, Cori "
                "+-7.21%/14.99% (68%/95%)");
  bench::Timer timer;

  for (const auto& cfg : {sim::theta_like(), sim::cori_like()}) {
    const auto res = sim::simulate(cfg);
    const auto& ds = res.dataset;
    std::printf("--- %s ---\n", cfg.name.c_str());

    // Pair spread by dt bin (log-spaced like the paper's panels).
    std::vector<double> edges = {1.0};
    for (double e = 60.0; e <= 3.17e7; e *= 10.0) edges.push_back(e);
    const auto bins = taxonomy::dt_binned_distributions(ds, edges);
    std::printf("%16s %8s %9s %9s %9s\n", "dt range (s)", "pairs",
                "p25(%)", "p75(%)", "IQR(%)");
    for (const auto& b : bins) {
      if (b.n_pairs < 5) continue;
      std::printf("%7.0f-%-8.0f %8zu %+9.2f %+9.2f %9.2f\n", b.dt_lo,
                  b.dt_hi, b.n_pairs, bench::pct(b.p25), bench::pct(b.p75),
                  bench::pct(b.p75) - bench::pct(b.p25));
    }

    const auto noise = taxonomy::litmus_noise_bound(ds, 1.0);
    std::printf("concurrent duplicate sets: %zu (%zu jobs); sets of two: "
                "%.0f%% (paper 70%%), <=6: %.0f%% (paper 96%%)\n",
                noise.n_sets, noise.n_jobs, noise.frac_sets_of_two * 100.0,
                noise.frac_sets_leq_six * 100.0);
    std::printf("dt=0 distribution: Normal(mu=%.4f, sigma=%.4f) vs "
                "Student-t(df=%.1f, scale=%.4f); t preferred by %.4f "
                "nats/sample\n",
                noise.normal_fit.mean, noise.normal_fit.stddev,
                noise.t_fit.df, noise.t_fit.scale, noise.t_preference);
    std::printf("Bessel-corrected sigma: %.4f log10\n", noise.sigma_log10);
    std::printf("=> jobs on this system can expect throughput within "
                "+-%.2f%% of prediction 68%% of the time, +-%.2f%% 95%% "
                "of the time\n",
                noise.band68_pct, noise.band95_pct);
    const double target68 = cfg.name == "theta-like" ? 5.71 : 7.21;
    std::printf("shape check: 68%% band within 2 points of the paper's "
                "%.2f%%: %s\n",
                target68,
                std::fabs(noise.band68_pct - target68) < 2.0 ? "PASS"
                                                             : "MISS");
    std::printf("shape check: heavier-than-normal tails (t df < 60): %s\n\n",
                noise.t_fit.df < 60.0 ? "PASS" : "MISS");
  }
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
