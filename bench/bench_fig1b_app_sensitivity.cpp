// Fig. 1(b): I/O throughput distributions of duplicate runs for several
// applications — some applications are far more sensitive to contention
// and noise than others, even with identical inputs. We print the spread
// of the largest duplicate sets alongside the simulator's ground-truth
// sensitivity traits, which the paper's authors could never observe.
#include <algorithm>
#include <map>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/stats/descriptive.hpp"
#include "src/taxonomy/duplicates.hpp"

int main() {
  using namespace iotax;
  bench::banner("Per-application duplicate spread (Theta-like)",
                "Fig. 1(b): contention sensitivity differs per application");
  bench::Timer timer;

  const auto res = sim::simulate(sim::theta_like());
  const auto& ds = res.dataset;
  auto sets = taxonomy::find_duplicate_sets(ds);
  std::sort(sets.begin(), sets.end(),
            [](const taxonomy::DuplicateSet& a,
               const taxonomy::DuplicateSet& b) {
              return a.rows.size() > b.rows.size();
            });

  // Ground-truth traits by app id.
  std::map<std::uint64_t, const sim::Application*> apps;
  for (const auto& app : res.catalog) apps[app.app_id] = &app;

  std::printf("%-10s %6s %9s %9s %9s %9s | %9s %9s\n", "set", "n",
              "p05(%)", "median(%)", "p95(%)", "spread(%)", "true_sens",
              "true_nois");
  std::size_t shown = 0;
  std::vector<double> spreads;
  for (const auto& set : sets) {
    if (shown >= 10) break;
    if (set.rows.size() < 8) continue;
    std::vector<double> dev;
    for (const auto r : set.rows) {
      dev.push_back(ds.target[r] - set.mean_target);
    }
    const auto p05 = stats::quantile(dev, 0.05);
    const auto p95 = stats::quantile(dev, 0.95);
    const auto med = stats::median(dev);
    const double spread = bench::pct(p95) - bench::pct(p05);
    spreads.push_back(spread);
    const auto* app = apps.at(set.app_id);
    std::printf("app%-7llu %6zu %9.2f %9.2f %9.2f %9.2f | %9.2f %9.2f\n",
                static_cast<unsigned long long>(set.app_id), set.rows.size(),
                bench::pct(p05), bench::pct(med), bench::pct(p95), spread,
                app->contention_sensitivity, app->noise_sensitivity);
    ++shown;
  }
  if (spreads.size() >= 2) {
    std::printf("\nspread ratio widest/narrowest shown: %.1fx "
                "(paper: some applications are far more sensitive)\n",
                stats::max(spreads) / std::max(stats::min(spreads), 1e-9));
  }
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
