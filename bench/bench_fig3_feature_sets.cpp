// Fig. 3 + §VI.C: error distributions for models trained on POSIX,
// POSIX + MPI-IO, and POSIX + Cobalt features (Theta-like; Cori lacks
// Cobalt). Neither enrichment reduces *test* error — application
// modeling is not the bottleneck — but the Cobalt timing features let
// the model memorise the training set (train error collapses), because
// no two jobs share exact start/end times (§VI.C).
#include <cmath>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/split.hpp"
#include "src/ml/gbt.hpp"
#include "src/stats/descriptive.hpp"
#include "src/taxonomy/litmus.hpp"

int main() {
  using namespace iotax;
  bench::banner("Feature-set enrichment (Theta-like)",
                "Fig. 3: POSIX vs +MPI-IO vs +Cobalt; no test gain, "
                "+Cobalt memorises the training set");
  bench::Timer timer;

  const auto res = sim::simulate(sim::theta_like());
  const auto& ds = res.dataset;
  util::Rng rng(31);
  const auto split = data::random_split(ds.size(), 0.7, 0.0, rng);
  const auto y_train = taxonomy::targets(ds, split.train);
  const auto y_test = taxonomy::targets(ds, split.test);

  struct Variant {
    const char* name;
    std::vector<taxonomy::FeatureSet> feats;
  };
  const std::vector<Variant> variants = {
      {"POSIX", {taxonomy::FeatureSet::kPosix}},
      {"POSIX+MPIIO",
       {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio}},
      {"POSIX+COBALT",
       {taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kCobalt}},
  };

  std::printf("%-14s %10s %10s %9s %9s %9s\n", "features", "train(%)",
              "test(%)", "p25(%)", "p75(%)", "p95(%)");
  std::vector<double> test_errs;
  std::vector<double> train_errs;
  for (const auto& v : variants) {
    ml::GbtParams params;
    params.n_estimators = 96;
    params.max_depth = 10;
    ml::GradientBoostedTrees model(params);
    const auto x_train = taxonomy::feature_matrix(ds, v.feats, split.train);
    model.fit(x_train, y_train);
    const double train_err =
        ml::median_abs_log_error(y_train, model.predict(x_train));
    const auto pred =
        model.predict(taxonomy::feature_matrix(ds, v.feats, split.test));
    auto abs_err = ml::log_errors(y_test, pred);
    for (auto& e : abs_err) e = std::fabs(e);
    std::printf("%-14s %10.2f %10.2f %9.2f %9.2f %9.2f\n", v.name,
                bench::pct(train_err),
                bench::pct(stats::median(abs_err)),
                bench::pct(stats::quantile(abs_err, 0.25)),
                bench::pct(stats::quantile(abs_err, 0.75)),
                bench::pct(stats::quantile(abs_err, 0.95)));
    test_errs.push_back(stats::median(abs_err));
    train_errs.push_back(train_err);
  }

  // Indices: 0 = POSIX, 1 = +MPIIO, 2 = +COBALT.
  const double mpiio_gain =
      (test_errs[0] - test_errs[1]) / test_errs[0];
  std::printf("\nshape check 1: MPI-IO counters do not reduce test error "
              "(paper: none help): %s (gain %.1f%%)\n",
              std::fabs(mpiio_gain) < 0.05 ? "PASS" : "MISS",
              mpiio_gain * 100.0);
  const double cobalt_train_drop =
      (train_errs[0] - train_errs[2]) / train_errs[0];
  const double cobalt_test_drop =
      (test_errs[0] - test_errs[2]) / test_errs[0];
  std::printf("shape check 2: Cobalt timing features cut train error far "
              "more than test error (memorisation signature, §VI.C): %s "
              "(train -%.0f%%, test -%.0f%%)\n",
              cobalt_train_drop > 0.25 &&
                      cobalt_train_drop > 1.5 * cobalt_test_drop
                  ? "PASS"
                  : "MISS",
              cobalt_train_drop * 100.0, cobalt_test_drop * 100.0);
  std::printf("note: unlike the paper's Fig. 3, +Cobalt also buys some "
              "test accuracy here, through the start-time weather signal "
              "(consistent with this data's §VII result); see "
              "EXPERIMENTS.md.\n");
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
