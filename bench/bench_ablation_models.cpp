// Ablation A1: model-family ladder on the Theta-like dataset. The paper
// argues (§VI.B) that once tuned, different model families hit the same
// wall — the duplicate bound — so the gap between a mean predictor,
// ridge regression, an MLP, and a GBT should shrink to near zero at the
// top of the ladder while all stay above the bound.
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/split.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/linear.hpp"
#include "src/ml/nn.hpp"
#include "src/taxonomy/litmus.hpp"

int main() {
  using namespace iotax;
  bench::banner("Model-family ablation (Theta-like)",
                "§VI.B: tuned families converge to the duplicate bound");
  bench::Timer timer;

  const auto res = sim::simulate(sim::theta_like());
  const auto& ds = res.dataset;
  const auto bound = taxonomy::litmus_application_bound(ds);

  util::Rng rng(47);
  auto split = data::random_split(ds.size(), 0.7, 0.0, rng);
  // Cap MLP cost.
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  const auto x_train = taxonomy::feature_matrix(ds, feats, split.train);
  const auto y_train = taxonomy::targets(ds, split.train);
  const auto x_test = taxonomy::feature_matrix(ds, feats, split.test);
  const auto y_test = taxonomy::targets(ds, split.test);

  std::vector<std::unique_ptr<ml::Regressor>> models;
  models.push_back(std::make_unique<ml::MeanRegressor>());
  models.push_back(std::make_unique<ml::LinearRegressor>(1.0));
  {
    ml::MlpParams mp;
    mp.hidden = {64, 64};
    mp.epochs = 40;
    mp.learning_rate = 2e-3;
    models.push_back(std::make_unique<ml::Mlp>(mp));
  }
  {
    ml::GbtParams gp;
    gp.n_estimators = 96;
    gp.max_depth = 8;
    gp.subsample = 0.9;
    gp.colsample = 0.9;
    models.push_back(std::make_unique<ml::GradientBoostedTrees>(gp));
  }

  std::printf("%-28s %10s %12s\n", "model", "err(%)", "x bound");
  std::printf("%-28s %10.2f %12s\n", "duplicate bound (litmus 1)",
              bench::pct(bound.median_abs_error), "1.00");
  std::vector<double> errs;
  for (const auto& model : models) {
    bench::Timer fit_timer;
    model->fit(x_train, y_train);
    const double err =
        ml::median_abs_log_error(y_test, model->predict(x_test));
    errs.push_back(err);
    std::printf("%-28s %10.2f %12.2f  [fit %.1fs]\n", model->name().c_str(),
                bench::pct(err), err / bound.median_abs_error,
                fit_timer.seconds());
  }

  const double mean_err = errs[0];
  const double gbt_err = errs.back();
  const double mlp_err = errs[errs.size() - 2];
  std::printf("\nshape check: GBT and MLP both land within 1.5x of the "
              "bound: %s\n",
              gbt_err < 1.5 * bound.median_abs_error &&
                      mlp_err < 1.6 * bound.median_abs_error
                  ? "PASS"
                  : "MISS");
  std::printf("shape check: learning beats the mean predictor by >2x: %s\n",
              mean_err > 2.0 * gbt_err ? "PASS" : "MISS");
  std::printf("shape check: nobody beats the bound: %s\n",
              gbt_err >= bound.median_abs_error * 0.95 &&
                      mlp_err >= bound.median_abs_error * 0.95
                  ? "PASS"
                  : "MISS");
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
