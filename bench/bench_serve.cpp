// Serving-path harness: stands the iotax serve daemon up in-process on
// a Unix socket, drives it with pipelined client threads, and reports
// request latency (p50/p99) and throughput at IOTAX_THREADS=1 and 4.
// Writes BENCH_serve.json; the CI bench job uploads it next to
// BENCH_pipeline.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/matrix.hpp"
#include "src/ml/gbt.hpp"
#include "src/serve/client.hpp"
#include "src/serve/server.hpp"
#include "src/util/env.hpp"

namespace iotax {
namespace {

constexpr std::size_t kClients = 4;
constexpr std::size_t kPipelineWindow = 16;

struct RunStats {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double requests_per_sec = 0.0;
  std::size_t requests = 0;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// One client: pipeline `n_requests` rows through its own connection,
/// recording client-observed latency per request.
void client_loop(const std::string& socket_path, const data::Matrix& x,
                 std::size_t n_requests, std::vector<double>* latencies_ms) {
  auto client = serve::Client::connect_unix(socket_path);
  latencies_ms->reserve(n_requests);
  std::vector<std::chrono::steady_clock::time_point> sent(n_requests);
  const auto send_row = [&](std::uint64_t id) {
    serve::PredictRequest req;
    req.request_id = id + 1;
    const auto src = x.row(id % x.rows());
    req.features.assign(src.begin(), src.end());
    sent[id] = std::chrono::steady_clock::now();
    client.send_predict(req);
  };
  std::size_t next = 0, done = 0;
  while (done < n_requests) {
    while (next < n_requests && next - done < kPipelineWindow) {
      send_row(next++);
    }
    serve::Client::Reply reply;
    if (!client.read_reply(&reply)) break;
    if (reply.type == util::FrameType::kErrorResponse) {
      // BUSY under this load would skew the latency tail silently.
      std::fprintf(stderr, "bench_serve: daemon replied %s\n",
                   serve::serve_status_name(reply.error.status));
      std::exit(1);
    }
    const auto id = reply.request_id - 1;
    latencies_ms->push_back(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - sent[id])
                                .count());
    ++done;
  }
}

RunStats run_at(const char* threads, const std::string& model_path,
                const data::Matrix& x, std::size_t requests_per_client) {
  ::setenv("IOTAX_THREADS", threads, 1);
  serve::ServeConfig cfg;
  cfg.model_files = {model_path};
  cfg.unix_socket = "/tmp/iotax_bench_serve.sock";
  serve::Server server(cfg);
  server.start();

  std::vector<std::vector<double>> per_client(kClients);
  bench::Timer timer;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back(client_loop, cfg.unix_socket, std::cref(x),
                         requests_per_client, &per_client[c]);
  }
  for (auto& t : clients) t.join();
  const double wall_s = timer.seconds();
  server.stop();

  std::vector<double> all;
  for (const auto& v : per_client) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  RunStats stats;
  stats.requests = all.size();
  stats.p50_ms = percentile(all, 0.50);
  stats.p99_ms = percentile(all, 0.99);
  stats.requests_per_sec =
      wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  const auto served = server.stats();
  if (served.responses != all.size() || served.shed != 0) {
    std::fprintf(stderr, "bench_serve: daemon accounting off "
                         "(%llu responses, %llu shed)\n",
                 static_cast<unsigned long long>(served.responses),
                 static_cast<unsigned long long>(served.shed));
    std::exit(1);
  }
  return stats;
}

}  // namespace
}  // namespace iotax

int main() {
  using namespace iotax;
  bench::banner("Model-serving daemon latency/throughput",
                "micro-batching serve path (iotax serve)");

  const auto res = sim::simulate(sim::tiny_system());
  const auto& ds = res.dataset;
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  const auto x = taxonomy::feature_matrix(ds, feats);
  const auto y = taxonomy::targets(ds);

  ml::GbtParams p;
  p.n_estimators = 30;
  p.max_depth = 5;
  ml::GradientBoostedTrees model(p);
  model.fit(x, y);
  const std::string model_path = "/tmp/iotax_bench_serve_model.gbt";
  {
    std::ofstream out(model_path);
    model.save(out);
  }

  const auto requests_per_client = util::scaled_count(2500, 500);
  const char* old_threads = std::getenv("IOTAX_THREADS");
  const std::string saved = old_threads != nullptr ? old_threads : "";

  const auto t1 = run_at("1", model_path, x, requests_per_client);
  const auto t4 = run_at("4", model_path, x, requests_per_client);

  if (!saved.empty()) {
    ::setenv("IOTAX_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("IOTAX_THREADS");
  }
  std::remove(model_path.c_str());

  std::printf("model                 %s (%zu features)\n",
              model.name().c_str(), x.cols());
  std::printf("clients               %zu x %zu requests, window %zu\n",
              kClients, requests_per_client, kPipelineWindow);
  std::printf("threads=1  p50 %.3f ms  p99 %.3f ms  %.0f req/s\n",
              t1.p50_ms, t1.p99_ms, t1.requests_per_sec);
  std::printf("threads=4  p50 %.3f ms  p99 %.3f ms  %.0f req/s\n",
              t4.p50_ms, t4.p99_ms, t4.requests_per_sec);

  FILE* out = std::fopen("BENCH_serve.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"jobs\": %zu,\n"
        "  \"clients\": %zu,\n"
        "  \"pipeline_window\": %zu,\n"
        "  \"requests_per_client\": %zu,\n"
        "  \"threads_1\": {\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"requests_per_sec\": %.1f},\n"
        "  \"threads_4\": {\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"requests_per_sec\": %.1f}\n"
        "}\n",
        ds.size(), kClients, kPipelineWindow, requests_per_client, t1.p50_ms,
        t1.p99_ms, t1.requests_per_sec, t4.p50_ms, t4.p99_ms,
        t4.requests_per_sec);
    std::fclose(out);
    std::printf("wrote BENCH_serve.json\n");
  }
  return 0;
}
