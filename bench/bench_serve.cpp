// Serving-path harness: stands the iotax serve daemon up in-process on
// a Unix socket, drives it with pipelined client threads, and reports
// request latency (p50/p99) and throughput at IOTAX_THREADS=1 and 4.
// With --fleet it adds a fault-tolerance A/B: the same request stream
// once against a direct in-process daemon and once through the router
// in front of a real 1 group x 2 replicas supervised fleet (shards
// exec'd from the built iotax binary) while a chaos plan kill -9s the
// serving replica mid-run. The routed answers must be bit-identical
// with zero failed requests, and the routed p99 is reported next to
// the direct p99 so check_bench.cmake can hold the failover envelope.
// Writes BENCH_serve.json; the CI bench job uploads it next to
// BENCH_pipeline.json.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/data/matrix.hpp"
#include "src/faults/chaos.hpp"
#include "src/ml/gbt.hpp"
#include "src/serve/client.hpp"
#include "src/serve/fleet.hpp"
#include "src/serve/server.hpp"
#include "src/util/env.hpp"

namespace iotax {
namespace {

constexpr std::size_t kClients = 4;
constexpr std::size_t kPipelineWindow = 16;

struct RunStats {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double requests_per_sec = 0.0;
  std::size_t requests = 0;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// One client: pipeline `n_requests` rows through its own connection,
/// recording client-observed latency per request.
void client_loop(const std::string& socket_path, const data::Matrix& x,
                 std::size_t n_requests, std::vector<double>* latencies_ms) {
  auto client = serve::Client::connect_unix(socket_path);
  latencies_ms->reserve(n_requests);
  std::vector<std::chrono::steady_clock::time_point> sent(n_requests);
  const auto send_row = [&](std::uint64_t id) {
    serve::PredictRequest req;
    req.request_id = id + 1;
    const auto src = x.row(id % x.rows());
    req.features.assign(src.begin(), src.end());
    sent[id] = std::chrono::steady_clock::now();
    client.send_predict(req);
  };
  std::size_t next = 0, done = 0;
  while (done < n_requests) {
    while (next < n_requests && next - done < kPipelineWindow) {
      send_row(next++);
    }
    serve::Client::Reply reply;
    if (!client.read_reply(&reply)) break;
    if (reply.type == util::FrameType::kErrorResponse) {
      // BUSY under this load would skew the latency tail silently.
      std::fprintf(stderr, "bench_serve: daemon replied %s\n",
                   serve::serve_status_name(reply.error.status));
      std::exit(1);
    }
    const auto id = reply.request_id - 1;
    latencies_ms->push_back(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - sent[id])
                                .count());
    ++done;
  }
}

RunStats run_at(const char* threads, const std::string& model_path,
                const data::Matrix& x, std::size_t requests_per_client) {
  ::setenv("IOTAX_THREADS", threads, 1);
  serve::ServeConfig cfg;
  cfg.model_files = {model_path};
  cfg.unix_socket = "/tmp/iotax_bench_serve.sock";
  serve::Server server(cfg);
  server.start();

  std::vector<std::vector<double>> per_client(kClients);
  bench::Timer timer;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back(client_loop, cfg.unix_socket, std::cref(x),
                         requests_per_client, &per_client[c]);
  }
  for (auto& t : clients) t.join();
  const double wall_s = timer.seconds();
  server.stop();

  std::vector<double> all;
  for (const auto& v : per_client) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  RunStats stats;
  stats.requests = all.size();
  stats.p50_ms = percentile(all, 0.50);
  stats.p99_ms = percentile(all, 0.99);
  stats.requests_per_sec =
      wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  const auto served = server.stats();
  if (served.responses != all.size() || served.shed != 0) {
    std::fprintf(stderr, "bench_serve: daemon accounting off "
                         "(%llu responses, %llu shed)\n",
                 static_cast<unsigned long long>(served.responses),
                 static_cast<unsigned long long>(served.shed));
    std::exit(1);
  }
  return stats;
}

// ---- fleet A/B (--fleet) ---------------------------------------------

/// One pipelined client that also records every reply's value bit
/// pattern keyed by request id, so the two legs of the A/B compare
/// bit-for-bit. Error replies are counted, not fatal: the gate wants
/// "failed_requests: 0" as a measured fact, not an assert.
RunStats drive_recording(const std::string& socket_path, const data::Matrix& x,
                         std::size_t n_requests,
                         std::vector<std::uint64_t>* bits,
                         std::size_t* failed) {
  auto client = serve::Client::connect_unix(socket_path);
  std::vector<double> latencies;
  latencies.reserve(n_requests);
  bits->assign(n_requests, 0);
  *failed = 0;
  std::vector<std::chrono::steady_clock::time_point> sent(n_requests);
  std::size_t next = 0, done = 0;
  bench::Timer timer;
  while (done < n_requests) {
    while (next < n_requests && next - done < kPipelineWindow) {
      serve::PredictRequest req;
      req.request_id = next + 1;
      const auto src = x.row(next % x.rows());
      req.features.assign(src.begin(), src.end());
      sent[next] = std::chrono::steady_clock::now();
      client.send_predict(req);
      ++next;
    }
    serve::Client::Reply reply;
    if (!client.read_reply(&reply)) {
      std::fprintf(stderr, "bench_serve: peer closed with %zu of %zu "
                           "replies outstanding\n",
                   n_requests - done, n_requests);
      std::exit(1);
    }
    const auto id = reply.request_id - 1;
    if (reply.type == util::FrameType::kErrorResponse) {
      ++*failed;
    } else {
      std::uint64_t pattern = 0;
      std::memcpy(&pattern, reply.predict.values.data(), sizeof pattern);
      (*bits)[id] = pattern;
    }
    latencies.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - sent[id])
                            .count());
    ++done;
  }
  const double wall_s = timer.seconds();
  std::sort(latencies.begin(), latencies.end());
  RunStats stats;
  stats.requests = latencies.size();
  stats.p50_ms = percentile(latencies, 0.50);
  stats.p99_ms = percentile(latencies, 0.99);
  stats.requests_per_sec =
      wall_s > 0.0 ? static_cast<double>(latencies.size()) / wall_s : 0.0;
  return stats;
}

/// The shards are real processes, so the routed leg needs the built CLI
/// binary: $IOTAX_BIN when set, else ../tools/iotax (the bench runs
/// from build/bench in CI). Missing binary fails loudly — a skipped
/// fleet leg must not look like a passed one.
std::string resolve_iotax_bin() {
  const char* env = std::getenv("IOTAX_BIN");
  const std::string path = env != nullptr ? env : "../tools/iotax";
  if (::access(path.c_str(), X_OK) != 0) {
    std::fprintf(stderr,
                 "bench_serve: --fleet needs the iotax binary but '%s' is "
                 "not executable; set IOTAX_BIN or run from build/bench\n",
                 path.c_str());
    std::exit(1);
  }
  return path;
}

struct FleetResult {
  std::size_t n_groups = 1;
  std::size_t n_replicas = 2;
  std::size_t requests = 0;
  std::size_t kill_at = 0;
  bool bit_identical = false;
  std::size_t failed_requests = 0;
  std::uint64_t restarts = 0;
  RunStats direct;
  RunStats routed;
};

FleetResult run_fleet(const std::string& model_path, const data::Matrix& x) {
  FleetResult result;
  result.requests = util::scaled_count(4000, 800);
  result.kill_at = result.requests / 2;

  const std::string dir =
      "/tmp/iotax_bench_fleet." + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  ::setenv("IOTAX_THREADS", "1", 1);

  // Leg A: direct in-process daemon, the no-failure reference.
  std::vector<std::uint64_t> direct_bits;
  {
    serve::ServeConfig cfg;
    cfg.model_files = {model_path};
    cfg.unix_socket = dir + "/direct.sock";
    serve::Server server(cfg);
    server.start();
    result.direct = drive_recording(cfg.unix_socket, x, result.requests,
                                    &direct_bits, &result.failed_requests);
    server.stop();
    if (result.failed_requests != 0) {
      std::fprintf(stderr, "bench_serve: direct leg saw %zu error replies\n",
                   result.failed_requests);
      std::exit(1);
    }
  }

  // Leg B: the same stream through the router while the chaos plan
  // kill -9s the serving replica at the halfway request.
  serve::SupervisorConfig sup;
  sup.iotax_bin = resolve_iotax_bin();
  sup.model_files = {model_path};
  sup.shard_dir = dir;
  sup.n_groups = result.n_groups;
  sup.n_replicas = result.n_replicas;
  serve::Supervisor supervisor(sup);
  supervisor.start();

  faults::ChaosEvent kill;
  kill.at_request = result.kill_at;
  kill.action = faults::ChaosAction::kKill;
  kill.group = 0;
  kill.replica = 0;

  serve::RouterConfig rc;
  rc.unix_socket = dir + "/router.sock";
  rc.deadline_ms = 10000;
  rc.try_timeout_ms = 500;
  rc.chaos.events = {kill};
  rc.supervisor = &supervisor;
  serve::Router router(rc);
  router.start();

  std::vector<std::uint64_t> routed_bits;
  result.routed = drive_recording(rc.unix_socket, x, result.requests,
                                  &routed_bits, &result.failed_requests);
  if (router.stats().chaos_kills != 1) {
    std::fprintf(stderr, "bench_serve: chaos kill never fired — the "
                         "failover A/B is vacuous\n");
    std::exit(1);
  }
  // The drive usually outruns the health loop; give the supervisor its
  // detection interval + backoff to bring the killed shard back so the
  // reported restart count is the recovered state, not a race.
  const auto recover_by =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (supervisor.stats().restarts < 1 &&
         std::chrono::steady_clock::now() < recover_by) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  router.stop();
  result.restarts = supervisor.stats().restarts;
  supervisor.stop();

  result.bit_identical = direct_bits == routed_bits;
  return result;
}

}  // namespace
}  // namespace iotax

int main(int argc, char** argv) {
  bool with_fleet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fleet") == 0) {
      with_fleet = true;
    } else {
      std::fprintf(stderr, "usage: bench_serve [--fleet]\n");
      return 1;
    }
  }
  using namespace iotax;
  bench::banner("Model-serving daemon latency/throughput",
                "micro-batching serve path (iotax serve)");

  const auto res = sim::simulate(sim::tiny_system());
  const auto& ds = res.dataset;
  const std::vector<taxonomy::FeatureSet> feats = {
      taxonomy::FeatureSet::kPosix, taxonomy::FeatureSet::kMpiio};
  const auto x = taxonomy::feature_matrix(ds, feats);
  const auto y = taxonomy::targets(ds);

  ml::GbtParams p;
  p.n_estimators = 30;
  p.max_depth = 5;
  ml::GradientBoostedTrees model(p);
  model.fit(x, y);
  const std::string model_path = "/tmp/iotax_bench_serve_model.gbt";
  {
    std::ofstream out(model_path);
    model.save(out);
  }

  const auto requests_per_client = util::scaled_count(2500, 500);
  const char* old_threads = std::getenv("IOTAX_THREADS");
  const std::string saved = old_threads != nullptr ? old_threads : "";

  const auto t1 = run_at("1", model_path, x, requests_per_client);
  const auto t4 = run_at("4", model_path, x, requests_per_client);

  FleetResult fleet;
  if (with_fleet) {
    fleet = run_fleet(model_path, x);
  }

  if (!saved.empty()) {
    ::setenv("IOTAX_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("IOTAX_THREADS");
  }
  std::remove(model_path.c_str());

  std::printf("model                 %s (%zu features)\n",
              model.name().c_str(), x.cols());
  std::printf("clients               %zu x %zu requests, window %zu\n",
              kClients, requests_per_client, kPipelineWindow);
  std::printf("threads=1  p50 %.3f ms  p99 %.3f ms  %.0f req/s\n",
              t1.p50_ms, t1.p99_ms, t1.requests_per_sec);
  std::printf("threads=4  p50 %.3f ms  p99 %.3f ms  %.0f req/s\n",
              t4.p50_ms, t4.p99_ms, t4.requests_per_sec);
  if (with_fleet) {
    std::printf("fleet %zux%zu, %zu requests, kill -9 g0r0 at request %zu\n",
                fleet.n_groups, fleet.n_replicas, fleet.requests,
                fleet.kill_at);
    std::printf("  direct  p50 %.3f ms  p99 %.3f ms  %.0f req/s\n",
                fleet.direct.p50_ms, fleet.direct.p99_ms,
                fleet.direct.requests_per_sec);
    std::printf("  routed  p50 %.3f ms  p99 %.3f ms  %.0f req/s\n",
                fleet.routed.p50_ms, fleet.routed.p99_ms,
                fleet.routed.requests_per_sec);
    std::printf("  bit_identical %s, %zu failed, %llu restart(s)\n",
                fleet.bit_identical ? "true" : "false", fleet.failed_requests,
                static_cast<unsigned long long>(fleet.restarts));
  }

  FILE* out = std::fopen("BENCH_serve.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"jobs\": %zu,\n"
        "  \"clients\": %zu,\n"
        "  \"pipeline_window\": %zu,\n"
        "  \"requests_per_client\": %zu,\n"
        "  \"threads_1\": {\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"requests_per_sec\": %.1f},\n"
        "  \"threads_4\": {\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"requests_per_sec\": %.1f}%s",
        ds.size(), kClients, kPipelineWindow, requests_per_client, t1.p50_ms,
        t1.p99_ms, t1.requests_per_sec, t4.p50_ms, t4.p99_ms,
        t4.requests_per_sec, with_fleet ? ",\n" : "\n");
    if (with_fleet) {
      std::fprintf(
          out,
          "  \"fleet\": {\n"
          "    \"groups\": %zu,\n"
          "    \"replicas\": %zu,\n"
          "    \"requests\": %zu,\n"
          "    \"kill_at\": %zu,\n"
          "    \"bit_identical\": %s,\n"
          "    \"failed_requests\": %zu,\n"
          "    \"restarts\": %llu,\n"
          "    \"direct\": {\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
          "\"requests_per_sec\": %.1f},\n"
          "    \"routed\": {\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
          "\"requests_per_sec\": %.1f}\n"
          "  }\n",
          fleet.n_groups, fleet.n_replicas, fleet.requests, fleet.kill_at,
          fleet.bit_identical ? "true" : "false", fleet.failed_requests,
          static_cast<unsigned long long>(fleet.restarts),
          fleet.direct.p50_ms, fleet.direct.p99_ms,
          fleet.direct.requests_per_sec, fleet.routed.p50_ms,
          fleet.routed.p99_ms, fleet.routed.requests_per_sec);
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_serve.json\n");
  }
  return 0;
}
