// Ablation A2: the small-duplicate-set bias of §IX.A, isolated. We draw
// duplicate sets of known size k from an exact Normal noise model, then
// estimate the spread with and without Bessel's correction. Without the
// correction the estimate shrinks by sqrt((k-1)/k) — 29% low at k=2 —
// which is exactly why the paper's Δt=0 distribution looked Student-t
// rather than Normal. With the correction the estimate is unbiased for
// every k, and the fitted t-df rises with k (t -> Normal as k grows).
#include <cmath>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/stats/descriptive.hpp"
#include "src/stats/fitting.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace iotax;
  bench::banner("Small-set bias of the duplicate spread estimator",
                "§IX.A: why dt=0 errors follow Student-t; Bessel fixes "
                "the variance");
  bench::Timer timer;

  constexpr double kTrueSigma = 0.024;  // Theta-like noise, log10 units
  util::Rng rng(51);
  std::printf("true per-job sigma: %.4f\n\n", kTrueSigma);
  std::printf("%6s %8s %12s %12s %10s\n", "k", "sets", "raw sigma",
              "bessel sigma", "t-df(raw)");

  bool bessel_unbiased = true;
  bool raw_biased_at_2 = false;
  double prev_df = 0.0;
  bool df_grows = true;
  for (const std::size_t k : {2, 3, 5, 10, 30, 100}) {
    const std::size_t n_sets = 60000 / k;
    std::vector<double> raw_errors;
    std::vector<double> corrected_errors;
    std::vector<double> draws(k);
    for (std::size_t s = 0; s < n_sets; ++s) {
      for (auto& d : draws) d = rng.normal(0.0, kTrueSigma);
      const double mean = stats::mean(draws);
      const double bessel =
          std::sqrt(static_cast<double>(k) / (static_cast<double>(k) - 1.0));
      for (const auto d : draws) {
        raw_errors.push_back(d - mean);
        corrected_errors.push_back((d - mean) * bessel);
      }
    }
    const double raw_sigma = std::sqrt(stats::variance_population(raw_errors));
    const double fixed_sigma =
        std::sqrt(stats::variance_population(corrected_errors));
    const auto t_fit = stats::fit_student_t(raw_errors);
    std::printf("%6zu %8zu %12.4f %12.4f %10.1f\n", k, n_sets, raw_sigma,
                fixed_sigma, t_fit.df);
    if (std::fabs(fixed_sigma - kTrueSigma) > 0.0015) bessel_unbiased = false;
    if (k == 2 && raw_sigma < 0.75 * kTrueSigma) raw_biased_at_2 = true;
    if (prev_df > 0.0 && t_fit.df < prev_df * 0.5) df_grows = false;
    prev_df = t_fit.df;
  }

  std::printf("\nexpected raw shrinkage at k=2: sqrt(1/2) = %.3f of true "
              "sigma\n",
              std::sqrt(0.5));
  std::printf("shape check: raw estimate ~29%% low at k=2: %s\n",
              raw_biased_at_2 ? "PASS" : "MISS");
  std::printf("shape check: Bessel-corrected sigma unbiased at every k: "
              "%s\n",
              bessel_unbiased ? "PASS" : "MISS");
  std::printf("shape check: fitted t-df grows toward Normal with k: %s\n",
              df_grows ? "PASS" : "MISS");
  std::printf("[%.1fs]\n", timer.seconds());
  return 0;
}
